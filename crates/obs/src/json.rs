//! Minimal self-contained JSON: a value tree, a writer, and a parser.
//!
//! Exists because the build environment has no crate-registry access, so
//! serde cannot be used. Covers exactly what the telemetry needs: finite
//! numbers (non-finite serialize as `null`), strings with full escaping,
//! arrays, and objects with insertion-ordered keys.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (stored as f64; integers round-trip to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object constructor from key/value pairs.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Numeric value of an object member (missing or non-numeric → None).
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(JsonValue::as_f64)
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => {
                if x.is_finite() {
                    // Rust's shortest-roundtrip float formatting; integers
                    // print without a fraction, which JSON accepts.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must consume the whole input apart from
    /// trailing whitespace).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { b: bytes, at: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.at));
        }
        Ok(v)
    }
}

/// Compact JSON serialization (`value.to_string()` comes via `Display`).
impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.at < self.b.len() && matches!(self.b[self.at], b' ' | b'\t' | b'\n' | b'\r') {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.at).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.at))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.b[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => {
                self.at += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.at += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b']') => {
                            self.at += 1;
                            return Ok(JsonValue::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
                    }
                }
            }
            Some(b'{') => {
                self.at += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.at += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    pairs.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b'}') => {
                            self.at += 1;
                            return Ok(JsonValue::Obj(pairs));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.at)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.at += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.at += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.at + 4 > self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.at..self.at + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.at += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                }
                _ => {
                    // Re-decode UTF-8: back up and take the whole char.
                    self.at -= 1;
                    let rest = std::str::from_utf8(&self.b[self.at..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.at += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.at]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_everything() {
        let v = JsonValue::obj(vec![
            ("name", JsonValue::Str("β-β \"phase\"\n".into())),
            ("n", JsonValue::Num(432.0)),
            ("t", JsonValue::Num(1.25e-3)),
            ("neg", JsonValue::Num(-0.5)),
            ("ok", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "arr",
                JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(2.5)]),
            ),
        ]);
        let text = v.to_string();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn shortest_float_roundtrip() {
        for &x in &[0.1, 1.0 / 3.0, 6.02214076e23, 1e-300, -2.5] {
            let t = JsonValue::Num(x).to_string();
            let back = JsonValue::parse(&t).unwrap().as_f64().unwrap();
            assert_eq!(x, back, "{t}");
        }
    }

    #[test]
    fn non_finite_serializes_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parse_errors() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let v = JsonValue::parse(r#"{"a": 3, "b": "x", "c": [1]}"#).unwrap();
        assert_eq!(v.get_f64("a"), Some(3.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get_f64("missing"), None);
    }
}
