//! Run-level observability configuration.

use std::path::PathBuf;
use std::sync::Arc;

use crate::metrics::MetricsRegistry;
use crate::sink::JsonlSink;
use crate::tracer::Tracer;

/// How the metrics plane attaches to the tracer a config builds.
#[derive(Clone, Debug, Default)]
pub enum MetricsMode {
    /// A fresh registry whenever tracing is enabled (the default).
    #[default]
    Auto,
    /// No metrics plane even when tracing is on.
    Off,
    /// Record into a caller-owned registry. With tracing disabled this
    /// still yields a live metrics-only tracer ([`Tracer::metrics_only`]),
    /// so a server can aggregate metrics across solves without paying for
    /// event emission.
    Shared(MetricsRegistry),
}

impl PartialEq for MetricsMode {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (MetricsMode::Auto, MetricsMode::Auto) => true,
            (MetricsMode::Off, MetricsMode::Off) => true,
            (MetricsMode::Shared(a), MetricsMode::Shared(b)) => a.same_store(b),
            _ => false,
        }
    }
}

impl Eq for MetricsMode {}

/// Observability options, carried on `FciOptions`.
///
/// The default is fully disabled: `tracer()` then returns
/// [`Tracer::disabled`], whose emission methods are a single branch —
/// instrumented hot paths cost nothing when tracing is off.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch for event tracing.
    pub enabled: bool,
    /// Where to write the JSONL trace. `None` with `enabled` collects
    /// events in memory (retrievable via [`Tracer::events`]).
    pub trace_path: Option<PathBuf>,
    /// Metrics-plane attachment (see [`MetricsMode`]).
    pub metrics: MetricsMode,
}

impl ObsConfig {
    /// Tracing disabled (same as `Default`).
    pub fn off() -> ObsConfig {
        ObsConfig::default()
    }

    /// Collect events in memory.
    pub fn in_memory() -> ObsConfig {
        ObsConfig {
            enabled: true,
            ..ObsConfig::default()
        }
    }

    /// Write a JSONL trace to `path`.
    pub fn to_file(path: impl Into<PathBuf>) -> ObsConfig {
        ObsConfig {
            enabled: true,
            trace_path: Some(path.into()),
            ..ObsConfig::default()
        }
    }

    /// Record metrics into `registry` (no event tracing unless also
    /// enabled) — the metrics plane without the trace firehose.
    pub fn metrics_into(registry: MetricsRegistry) -> ObsConfig {
        ObsConfig {
            enabled: false,
            trace_path: None,
            metrics: MetricsMode::Shared(registry),
        }
    }

    /// Use a caller-owned registry for the metrics plane.
    pub fn with_metrics(mut self, registry: MetricsRegistry) -> ObsConfig {
        self.metrics = MetricsMode::Shared(registry);
        self
    }

    /// Disable the metrics plane (events only).
    pub fn without_metrics(mut self) -> ObsConfig {
        self.metrics = MetricsMode::Off;
        self
    }

    /// Build the tracer this configuration describes.
    pub fn tracer(&self) -> std::io::Result<Tracer> {
        let metrics = match &self.metrics {
            MetricsMode::Off => None,
            MetricsMode::Auto => self.enabled.then(MetricsRegistry::new),
            MetricsMode::Shared(r) => Some(r.clone()),
        };
        if !self.enabled {
            return Ok(match metrics {
                Some(m) => Tracer::metrics_only(m),
                None => Tracer::disabled(),
            });
        }
        match &self.trace_path {
            Some(path) => Ok(Tracer::with_sink(
                Arc::new(JsonlSink::create(path)?),
                metrics,
            )),
            None => Ok(Tracer::in_memory_with(metrics)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let t = ObsConfig::default().tracer().unwrap();
        assert!(!t.enabled());
        assert!(t.metrics().is_none());
    }

    #[test]
    fn in_memory_collects() {
        let t = ObsConfig::in_memory().tracer().unwrap();
        assert!(t.enabled());
        assert_eq!(t.events().unwrap().len(), 0);
        // Auto mode: a metrics plane rides along.
        assert!(t.metrics().is_some());
    }

    #[test]
    fn shared_metrics_survive_the_tracer() {
        let reg = MetricsRegistry::new();
        let t = ObsConfig::metrics_into(reg.clone()).tracer().unwrap();
        assert!(!t.enabled());
        t.metrics().unwrap().counter_incr("solves", &[]);
        drop(t);
        assert_eq!(reg.value("solves", &[]), Some(1.0));
        // Shared + enabled: events and the caller's registry.
        let t = ObsConfig::in_memory()
            .with_metrics(reg.clone())
            .tracer()
            .unwrap();
        assert!(t.enabled());
        t.metrics().unwrap().counter_incr("solves", &[]);
        assert_eq!(reg.value("solves", &[]), Some(2.0));
    }

    #[test]
    fn metrics_can_be_disabled() {
        let t = ObsConfig::in_memory().without_metrics().tracer().unwrap();
        assert!(t.enabled());
        assert!(t.metrics().is_none());
    }
}
