//! Run-level observability configuration.

use std::path::PathBuf;
use std::sync::Arc;

use crate::sink::JsonlSink;
use crate::tracer::Tracer;

/// Observability options, carried on `FciOptions`.
///
/// The default is fully disabled: `tracer()` then returns
/// [`Tracer::disabled`], whose emission methods are a single branch —
/// instrumented hot paths cost nothing when tracing is off.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch.
    pub enabled: bool,
    /// Where to write the JSONL trace. `None` with `enabled` collects
    /// events in memory (retrievable via [`Tracer::events`]).
    pub trace_path: Option<PathBuf>,
}

impl ObsConfig {
    /// Tracing disabled (same as `Default`).
    pub fn off() -> ObsConfig {
        ObsConfig::default()
    }

    /// Collect events in memory.
    pub fn in_memory() -> ObsConfig {
        ObsConfig {
            enabled: true,
            trace_path: None,
        }
    }

    /// Write a JSONL trace to `path`.
    pub fn to_file(path: impl Into<PathBuf>) -> ObsConfig {
        ObsConfig {
            enabled: true,
            trace_path: Some(path.into()),
        }
    }

    /// Build the tracer this configuration describes.
    pub fn tracer(&self) -> std::io::Result<Tracer> {
        if !self.enabled {
            return Ok(Tracer::disabled());
        }
        match &self.trace_path {
            Some(path) => Ok(Tracer::new(Arc::new(JsonlSink::create(path)?))),
            None => Ok(Tracer::in_memory()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let t = ObsConfig::default().tracer().unwrap();
        assert!(!t.enabled());
    }

    #[test]
    fn in_memory_collects() {
        let t = ObsConfig::in_memory().tracer().unwrap();
        assert!(t.enabled());
        assert_eq!(t.events().unwrap().len(), 0);
    }
}
