//! Dynamic lock-order witness: named `Mutex`/`Condvar` wrappers that
//! record the runtime lock-acquisition graph.
//!
//! [`TrackedMutex`] and [`TrackedCondvar`] are drop-in replacements for
//! `std::sync::Mutex`/`Condvar` carrying a static *lock name* (the
//! `Struct.field` id the static analysis in `fci-check` uses, e.g.
//! `"Server.state"`). When the global witness is enabled, every
//! acquisition records an ordered edge `held → acquired` for each lock
//! the acquiring thread already holds, into a process-global edge set.
//!
//! This is the dynamic half of an Eraser-style lockset check: the static
//! lock-order graph (`fcix-check locks`) *predicts* which edges can
//! occur; the witness *observes* which edges do occur under a real
//! workload. Observed ⊆ predicted is the cross-check; an observed edge
//! the static graph missed means the analysis (or its resolution
//! heuristics) has a hole.
//!
//! Cost when disabled: one relaxed atomic load per lock/wait — the
//! wrappers are free enough to leave in production paths (the serve
//! layer; never the σ/GEMM hot loops, which hold no locks at all).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, LockResult, Mutex, MutexGuard, OnceLock, PoisonError};

/// Process-global witness switch. Off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Observed `(held, acquired)` lock-name pairs, plus per-lock
/// acquisition counts.
struct WitnessState {
    edges: Vec<(&'static str, &'static str)>,
    acquisitions: Vec<(&'static str, u64)>,
}

fn witness() -> &'static Mutex<WitnessState> {
    static W: OnceLock<Mutex<WitnessState>> = OnceLock::new();
    W.get_or_init(|| {
        Mutex::new(WitnessState {
            edges: Vec::new(),
            acquisitions: Vec::new(),
        })
    })
}

thread_local! {
    /// Names of tracked locks this thread currently holds, in
    /// acquisition order.
    static HELD: std::cell::RefCell<Vec<&'static str>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Turn the witness on or off. Enabling does not clear previous
/// observations; call [`reset_witness`] for a fresh run.
pub fn set_witness_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the witness is recording.
pub fn witness_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear all recorded edges and counts.
pub fn reset_witness() {
    let mut w = witness().lock().unwrap_or_else(PoisonError::into_inner);
    w.edges.clear();
    w.acquisitions.clear();
}

/// Observed lock-order edges `(held, acquired)`, deduplicated, in
/// first-observation order.
pub fn witness_edges() -> Vec<(String, String)> {
    let w = witness().lock().unwrap_or_else(PoisonError::into_inner);
    w.edges
        .iter()
        .map(|&(a, b)| (a.to_string(), b.to_string()))
        .collect()
}

/// Acquisition counts per lock name, in first-acquisition order.
pub fn witness_acquisitions() -> Vec<(String, u64)> {
    let w = witness().lock().unwrap_or_else(PoisonError::into_inner);
    w.acquisitions
        .iter()
        .map(|&(n, c)| (n.to_string(), c))
        .collect()
}

fn record_acquire(name: &'static str) {
    HELD.with(|held| {
        let held = held.borrow();
        if !held.is_empty() {
            let mut w = witness().lock().unwrap_or_else(PoisonError::into_inner);
            for &h in held.iter() {
                if !w.edges.contains(&(h, name)) {
                    w.edges.push((h, name));
                }
            }
        }
    });
    let mut w = witness().lock().unwrap_or_else(PoisonError::into_inner);
    match w.acquisitions.iter_mut().find(|(n, _)| *n == name) {
        Some((_, c)) => *c += 1,
        None => w.acquisitions.push((name, 1)),
    }
}

fn push_held(name: &'static str) {
    HELD.with(|held| held.borrow_mut().push(name));
}

fn pop_held(name: &'static str) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&h| h == name) {
            held.remove(pos);
        }
    });
}

/// A named mutex that reports acquisitions to the global witness.
pub struct TrackedMutex<T> {
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Wrap `value` under the static lock id `name` (`"Struct.field"`).
    pub fn new(name: &'static str, value: T) -> TrackedMutex<T> {
        TrackedMutex {
            name,
            inner: Mutex::new(value),
        }
    }

    /// The static lock id.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire, recovering from poisoning (the protected state is only
    /// ever mutated atomically under the lock, so a panicking sibling
    /// leaves it well-formed). Records the acquisition when the witness
    /// is on.
    pub fn lock(&self) -> TrackedGuard<'_, T> {
        let tracked = witness_enabled();
        if tracked {
            record_acquire(self.name);
        }
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if tracked {
            push_held(self.name);
        }
        TrackedGuard {
            name: self.name,
            tracked,
            guard: Some(guard),
        }
    }

    /// Consume the mutex, returning the inner value (poison-recovering).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedMutex")
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard for a [`TrackedMutex`]; pops the witness held-stack on drop.
pub struct TrackedGuard<'a, T> {
    name: &'static str,
    tracked: bool,
    /// `Some` except transiently inside [`TrackedCondvar::wait`].
    guard: Option<MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for TrackedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().unwrap_or_else(|| unreachable!())
    }
}

impl<T> std::ops::DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().unwrap_or_else(|| unreachable!())
    }
}

impl<T> Drop for TrackedGuard<'_, T> {
    fn drop(&mut self) {
        if self.tracked {
            pop_held(self.name);
        }
    }
}

/// A named condvar whose `wait` keeps the witness held-stack honest:
/// the associated mutex is popped for the duration of the wait and
/// re-pushed (with a fresh acquisition record) on wakeup.
pub struct TrackedCondvar {
    name: &'static str,
    inner: Condvar,
}

impl TrackedCondvar {
    /// A condvar under the static id `name`.
    pub fn new(name: &'static str) -> TrackedCondvar {
        TrackedCondvar {
            name,
            inner: Condvar::new(),
        }
    }

    /// The static condvar id.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Block on the condvar, releasing `guard`'s mutex (poison-
    /// recovering, like [`TrackedMutex::lock`]).
    pub fn wait<'a, T>(&self, mut guard: TrackedGuard<'a, T>) -> TrackedGuard<'a, T> {
        let inner = guard.guard.take().unwrap_or_else(|| unreachable!());
        let name = guard.name;
        let tracked = guard.tracked;
        if tracked {
            pop_held(name);
        }
        let woken = unwrap_wait(self.inner.wait(inner));
        if witness_enabled() {
            record_acquire(name);
            push_held(name);
            guard.tracked = true;
        } else {
            guard.tracked = false;
        }
        guard.guard = Some(woken);
        guard
    }

    /// Block on the condvar for at most `dur`, releasing `guard`'s mutex
    /// (poison-recovering). Returns the re-acquired guard and whether the
    /// wait timed out. Bookkeeping mirrors [`TrackedCondvar::wait`]: the
    /// released mutex leaves the witness held-stack for the duration and
    /// re-registers on wakeup.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: TrackedGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (TrackedGuard<'a, T>, bool) {
        let inner = guard.guard.take().unwrap_or_else(|| unreachable!());
        let name = guard.name;
        let tracked = guard.tracked;
        if tracked {
            pop_held(name);
        }
        let (woken, timeout) = match self.inner.wait_timeout(inner, dur) {
            Ok((g, t)) => (g, t.timed_out()),
            Err(poison) => {
                let (g, t) = poison.into_inner();
                (g, t.timed_out())
            }
        };
        if witness_enabled() {
            record_acquire(name);
            push_held(name);
            guard.tracked = true;
        } else {
            guard.tracked = false;
        }
        guard.guard = Some(woken);
        (guard, timeout)
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

fn unwrap_wait<T>(r: LockResult<MutexGuard<'_, T>>) -> MutexGuard<'_, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The witness is process-global, so the tests share one mutable
    // plane; serialize them behind a test-local lock.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn nested_acquisition_records_an_edge() {
        let _g = test_lock();
        reset_witness();
        set_witness_enabled(true);
        let a = TrackedMutex::new("T.a", 0u32);
        let b = TrackedMutex::new("T.b", 0u32);
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        set_witness_enabled(false);
        let edges = witness_edges();
        assert!(edges.contains(&("T.a".to_string(), "T.b".to_string())));
        assert!(!edges.contains(&("T.b".to_string(), "T.a".to_string())));
    }

    #[test]
    fn sequential_acquisition_records_no_edge() {
        let _g = test_lock();
        reset_witness();
        set_witness_enabled(true);
        let a = TrackedMutex::new("S.a", 0u32);
        let b = TrackedMutex::new("S.b", 0u32);
        drop(a.lock());
        drop(b.lock());
        set_witness_enabled(false);
        assert!(witness_edges().is_empty());
        let counts = witness_acquisitions();
        assert!(counts.contains(&("S.a".to_string(), 1)));
        assert!(counts.contains(&("S.b".to_string(), 1)));
    }

    #[test]
    fn condvar_wait_releases_the_held_entry() {
        let _g = test_lock();
        reset_witness();
        set_witness_enabled(true);
        let m = std::sync::Arc::new(TrackedMutex::new("C.m", false));
        let other = std::sync::Arc::new(TrackedMutex::new("C.other", 0u32));
        let cv = std::sync::Arc::new(TrackedCondvar::new("C.cv"));
        std::thread::scope(|s| {
            let m2 = std::sync::Arc::clone(&m);
            let cv2 = std::sync::Arc::clone(&cv);
            let other2 = std::sync::Arc::clone(&other);
            s.spawn(move || {
                let mut st = m2.lock();
                while !*st {
                    st = cv2.wait(st);
                }
                // Still holding C.m after wakeup: this must record
                // C.m → C.other.
                let _o = other2.lock();
            });
            // Let the waiter park, then flip the flag.
            std::thread::sleep(std::time::Duration::from_millis(20));
            *m.lock() = true;
            cv.notify_all();
        });
        set_witness_enabled(false);
        let edges = witness_edges();
        assert!(
            edges.contains(&("C.m".to_string(), "C.other".to_string())),
            "wakeup must re-push the mutex: {edges:?}"
        );
    }

    #[test]
    fn timed_wait_times_out_and_restores_the_guard() {
        let _g = test_lock();
        reset_witness();
        set_witness_enabled(true);
        let m = TrackedMutex::new("TW.m", 7u32);
        let cv = TrackedCondvar::new("TW.cv");
        let guard = m.lock();
        let (guard, timed_out) = cv.wait_timeout(guard, std::time::Duration::from_millis(5));
        assert!(timed_out);
        assert_eq!(*guard, 7);
        drop(guard);
        set_witness_enabled(false);
        // The re-acquisition after the timed wait is recorded.
        let counts = witness_acquisitions();
        assert!(
            counts.iter().any(|(n, c)| n == "TW.m" && *c >= 2),
            "{counts:?}"
        );
    }

    #[test]
    fn disabled_witness_records_nothing() {
        let _g = test_lock();
        reset_witness();
        set_witness_enabled(false);
        let a = TrackedMutex::new("D.a", 0u32);
        let b = TrackedMutex::new("D.b", 0u32);
        let _ga = a.lock();
        let _gb = b.lock();
        assert!(witness_edges().is_empty());
        assert!(witness_acquisitions().is_empty());
    }
}
