//! Chrome Trace Event Format export.
//!
//! Converts a trace into the JSON array format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one process
//! (`pid` 0, named "fcix (simulated Cray-X1)"), one thread lane per
//! virtual MSP (`tid` = rank), spans as complete (`"ph":"X"`) events and
//! instants as `"ph":"i"`. Timestamps are **simulated** microseconds, so
//! the rendered timeline is the modelled X1 run, with the host timestamps
//! preserved in each event's `args`.

use crate::event::{Event, EventKind};
use crate::json::JsonValue;

fn args_json(e: &Event) -> JsonValue {
    let mut pairs: Vec<(String, JsonValue)> = e
        .args
        .iter()
        .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
        .collect();
    pairs.push(("host_us".to_string(), JsonValue::Num(e.host_us)));
    if e.kind == EventKind::Span {
        pairs.push(("host_dur_us".to_string(), JsonValue::Num(e.host_dur_us)));
    }
    JsonValue::Obj(pairs)
}

/// Convert events to a Trace Event Format JSON document.
pub fn to_chrome(events: &[Event]) -> String {
    let mut records: Vec<JsonValue> = Vec::new();
    records.push(JsonValue::obj(vec![
        ("name", JsonValue::Str("process_name".into())),
        ("ph", JsonValue::Str("M".into())),
        ("pid", JsonValue::Num(0.0)),
        (
            "args",
            JsonValue::obj(vec![(
                "name",
                JsonValue::Str("fcix (simulated Cray-X1)".into()),
            )]),
        ),
    ]));

    let mut ranks: Vec<usize> = events.iter().filter_map(|e| e.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();
    for r in &ranks {
        records.push(JsonValue::obj(vec![
            ("name", JsonValue::Str("thread_name".into())),
            ("ph", JsonValue::Str("M".into())),
            ("pid", JsonValue::Num(0.0)),
            ("tid", JsonValue::Num(*r as f64)),
            (
                "args",
                JsonValue::obj(vec![("name", JsonValue::Str(format!("MSP {r}")))]),
            ),
        ]));
    }

    for e in events {
        let tid = e.rank.unwrap_or(0) as f64;
        let name = format!("{} [{}]", e.name, e.cat.as_str());
        match e.kind {
            EventKind::Span => records.push(JsonValue::obj(vec![
                ("name", JsonValue::Str(name)),
                ("cat", JsonValue::Str(e.cat.as_str().into())),
                ("ph", JsonValue::Str("X".into())),
                ("pid", JsonValue::Num(0.0)),
                ("tid", JsonValue::Num(tid)),
                ("ts", JsonValue::Num(e.sim_s * 1e6)),
                ("dur", JsonValue::Num(e.sim_dur_s * 1e6)),
                ("args", args_json(e)),
            ])),
            EventKind::Instant => records.push(JsonValue::obj(vec![
                ("name", JsonValue::Str(name)),
                ("cat", JsonValue::Str(e.cat.as_str().into())),
                ("ph", JsonValue::Str("i".into())),
                // Thread-scoped instant marker.
                ("s", JsonValue::Str("t".into())),
                ("pid", JsonValue::Num(0.0)),
                ("tid", JsonValue::Num(tid)),
                ("ts", JsonValue::Num(e.sim_s * 1e6)),
                ("args", args_json(e)),
            ])),
            EventKind::Counter => records.push(JsonValue::obj(vec![
                ("name", JsonValue::Str(e.name.clone())),
                ("ph", JsonValue::Str("C".into())),
                ("pid", JsonValue::Num(0.0)),
                ("tid", JsonValue::Num(tid)),
                ("ts", JsonValue::Num(e.sim_s * 1e6)),
                ("args", args_json(e)),
            ])),
        }
    }

    JsonValue::Arr(records).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Category;
    use crate::tracer::{Segment, Tracer};

    #[test]
    fn chrome_export_is_valid_json_with_lanes() {
        let t = Tracer::in_memory();
        t.record_phase(
            0,
            "sigma",
            &[Segment::new(Category::Dgemm, 1.0, vec![])],
            0.0,
            0.0,
        );
        t.record_phase(
            1,
            "sigma",
            &[Segment::new(Category::Net, 0.5, vec![])],
            0.0,
            0.0,
        );
        t.instant(Some(1), "task_grab", Category::Other, &[("task", 3.0)]);
        let text = to_chrome(&t.events().unwrap());

        let doc = JsonValue::parse(&text).unwrap();
        let arr = doc.as_arr().unwrap();
        // Metadata: process_name + 2 thread_name; payload: 2 spans + 1 instant.
        assert_eq!(arr.len(), 6);
        let spans: Vec<_> = arr
            .iter()
            .filter(|r| r.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get_f64("ts"), Some(0.0));
        assert_eq!(spans[0].get_f64("dur"), Some(1e6));
        // One lane per MSP.
        let tids: Vec<f64> = arr.iter().filter_map(|r| r.get_f64("tid")).collect();
        assert!(tids.contains(&0.0) && tids.contains(&1.0));
        // Instants carry the required scope field.
        let inst = arr
            .iter()
            .find(|r| r.get("ph").and_then(JsonValue::as_str) == Some("i"))
            .unwrap();
        assert_eq!(inst.get("s").and_then(JsonValue::as_str), Some("t"));
    }
}
