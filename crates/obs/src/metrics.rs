//! A small registry of named counters and gauges.

use std::sync::Mutex;

use crate::json::JsonValue;

#[derive(Clone, Copy, PartialEq)]
enum MetricKind {
    Counter,
    Gauge,
}

struct Metric {
    name: String,
    kind: MetricKind,
    value: f64,
}

/// Named monotonic counters and last-value gauges.
///
/// Counters only ever grow (`add`); gauges record the most recent value
/// (`set`). Both are keyed by name on first use. All operations take
/// `&self`; the registry is internally locked and safe to share across
/// worker threads.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<Vec<Metric>>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn upsert(&self, name: &str, kind: MetricKind, f: impl FnOnce(&mut f64)) {
        let mut metrics = self.metrics.lock().unwrap();
        if let Some(m) = metrics.iter_mut().find(|m| m.name == name) {
            debug_assert!(
                m.kind == kind,
                "metric '{name}' reused with a different kind"
            );
            f(&mut m.value);
        } else {
            let mut value = 0.0;
            f(&mut value);
            metrics.push(Metric {
                name: name.to_string(),
                kind,
                value,
            });
        }
    }

    /// Add to a monotonic counter (creates it at 0 on first use).
    pub fn add(&self, name: &str, delta: f64) {
        self.upsert(name, MetricKind::Counter, |v| *v += delta);
    }

    /// Increment a counter by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1.0);
    }

    /// Set a gauge to its latest value.
    pub fn set(&self, name: &str, value: f64) {
        self.upsert(name, MetricKind::Gauge, |v| *v = value);
    }

    /// Current value of a metric, if it exists.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics
            .lock()
            .unwrap()
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }

    /// All metrics as `(name, value)`, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = self
            .metrics
            .lock()
            .unwrap()
            .iter()
            .map(|m| (m.name.clone(), m.value))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Metrics as a JSON object, keys sorted.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(
            self.snapshot()
                .into_iter()
                .map(|(k, v)| (k, JsonValue::Num(v)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.incr("ddi.nxtval");
        m.incr("ddi.nxtval");
        m.add("ddi.acc_bytes", 4096.0);
        assert_eq!(m.get("ddi.nxtval"), Some(2.0));
        assert_eq!(m.get("ddi.acc_bytes"), Some(4096.0));
        assert_eq!(m.get("missing"), None);
    }

    #[test]
    fn gauges_take_last_value() {
        let m = MetricsRegistry::new();
        m.set("residual", 1.0);
        m.set("residual", 1e-6);
        assert_eq!(m.get("residual"), Some(1e-6));
    }

    #[test]
    fn snapshot_sorted_and_json() {
        let m = MetricsRegistry::new();
        m.set("b", 2.0);
        m.set("a", 1.0);
        let snap = m.snapshot();
        assert_eq!(snap[0].0, "a");
        assert_eq!(m.to_json().get_f64("b"), Some(2.0));
    }
}
