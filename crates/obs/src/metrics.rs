//! The metrics plane: a sharded, hash-indexed registry of counters,
//! gauges, and log-linear histograms with label dimensions.
//!
//! # Design
//!
//! The registry is split into [`NSHARDS`] shards, each behind its own
//! mutex. A metric is addressed by `(name, labels)`; an FNV-1a hash of
//! that key picks the shard **and** indexes an open-addressed table
//! inside it, so hot-path recording is: hash (no allocation), lock one
//! shard, one probe, bump a slot. The previous implementation kept every
//! metric in one `Mutex<Vec<_>>` and linearly scanned names under the
//! global lock; that API ([`MetricsRegistry::add`], `incr`, `set`, `get`,
//! `snapshot`, `to_json`) survives as a thin shim over the sharded store
//! (a label-less metric is just `(name, [])`).
//!
//! Label order is significant: pass labels in a fixed order per call
//! site (they are hashed and compared as given).
//!
//! Cloning a registry is cheap and shares the store — the solver, the
//! serving layer, and exporters can all hold handles to one plane.

use std::sync::{Arc, Mutex};

use crate::event::{Event, EventKind};
use crate::hist::{HistStats, Histogram};

/// Number of independently locked shards.
pub const NSHARDS: usize = 16;

const EMPTY: usize = usize::MAX;

#[inline]
fn fnv1a(name: &str, labels: &[(&str, &str)]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x100000001b3);
    };
    eat(name.as_bytes());
    for (k, v) in labels {
        eat(k.as_bytes());
        eat(v.as_bytes());
    }
    h
}

enum Value {
    Counter(f64),
    Gauge(f64),
    Hist(Histogram),
}

struct Entry {
    hash: u64,
    name: String,
    labels: Vec<(String, String)>,
    value: Value,
}

impl Entry {
    fn matches(&self, hash: u64, name: &str, labels: &[(&str, &str)]) -> bool {
        self.hash == hash
            && self.name == name
            && self.labels.len() == labels.len()
            && self
                .labels
                .iter()
                .zip(labels)
                .all(|(a, b)| a.0 == b.0 && a.1 == b.1)
    }
}

#[derive(Default)]
struct Shard {
    entries: Vec<Entry>,
    /// Open-addressed hash table of indices into `entries`.
    table: Vec<usize>,
}

impl Shard {
    fn find(&self, hash: u64, name: &str, labels: &[(&str, &str)]) -> Option<usize> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            match self.table[slot] {
                EMPTY => return None,
                i if self.entries[i].matches(hash, name, labels) => return Some(i),
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    fn insert(&mut self, hash: u64, name: &str, labels: &[(&str, &str)], value: Value) -> usize {
        let idx = self.entries.len();
        self.entries.push(Entry {
            hash,
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
        if self.entries.len() * 2 >= self.table.len() {
            self.rehash();
        } else {
            self.place(idx);
        }
        idx
    }

    fn place(&mut self, idx: usize) {
        let mask = self.table.len() - 1;
        let mut slot = (self.entries[idx].hash as usize) & mask;
        while self.table[slot] != EMPTY {
            slot = (slot + 1) & mask;
        }
        self.table[slot] = idx;
    }

    fn rehash(&mut self) {
        let cap = (self.entries.len() * 4).next_power_of_two().max(16);
        self.table = vec![EMPTY; cap];
        for i in 0..self.entries.len() {
            self.place(i);
        }
    }
}

struct Store {
    shards: Vec<Mutex<Shard>>,
}

/// Sharded registry of named counters, gauges, and histograms.
///
/// Counters only ever grow ([`MetricsRegistry::counter_add`]); gauges
/// record the most recent value ([`MetricsRegistry::gauge_set`]);
/// histograms accumulate samples ([`MetricsRegistry::observe`]) and
/// answer bucket-bounded percentile queries. All operations take
/// `&self`; clones share the underlying store.
#[derive(Clone)]
pub struct MetricsRegistry {
    store: Arc<Store>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            store: Arc::new(Store {
                shards: (0..NSHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            }),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n: usize = self
            .store
            .shards
            .iter()
            .map(|s| s.lock().unwrap().entries.len())
            .sum();
        f.debug_struct("MetricsRegistry")
            .field("metrics", &n)
            .finish()
    }
}

/// One metric sample: `(name, sorted labels, value)`.
pub type LabeledValue = (String, Vec<(String, String)>, f64);
/// One histogram: `(name, sorted labels, histogram)`.
pub type LabeledHist = (String, Vec<(String, String)>, Histogram);

/// A point-in-time copy of every metric, sorted by `(name, labels)`.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: Vec<LabeledValue>,
    /// Last-value gauges.
    pub gauges: Vec<LabeledValue>,
    /// Histograms.
    pub hists: Vec<LabeledHist>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Whether two handles share the same underlying store.
    pub fn same_store(&self, other: &MetricsRegistry) -> bool {
        Arc::ptr_eq(&self.store, &other.store)
    }

    fn with_entry(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        mk: impl FnOnce() -> Value,
        f: impl FnOnce(&mut Value),
    ) {
        let hash = fnv1a(name, labels);
        let shard = &self.store.shards[(hash >> 56) as usize & (NSHARDS - 1)];
        let mut shard = shard.lock().unwrap();
        let idx = match shard.find(hash, name, labels) {
            Some(i) => i,
            None => shard.insert(hash, name, labels, mk()),
        };
        f(&mut shard.entries[idx].value);
    }

    fn read_entry<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        f: impl FnOnce(&Value) -> Option<T>,
    ) -> Option<T> {
        let hash = fnv1a(name, labels);
        let shard = &self.store.shards[(hash >> 56) as usize & (NSHARDS - 1)];
        let shard = shard.lock().unwrap();
        let idx = shard.find(hash, name, labels)?;
        f(&shard.entries[idx].value)
    }

    /// Add to a labelled monotonic counter (created at 0 on first use).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: f64) {
        self.with_entry(
            name,
            labels,
            || Value::Counter(0.0),
            |v| {
                if let Value::Counter(c) = v {
                    *c += delta;
                }
            },
        );
    }

    /// Increment a labelled counter by one.
    pub fn counter_incr(&self, name: &str, labels: &[(&str, &str)]) {
        self.counter_add(name, labels, 1.0);
    }

    /// Set a labelled gauge to its latest value.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.with_entry(
            name,
            labels,
            || Value::Gauge(0.0),
            |v| {
                if let Value::Gauge(g) = v {
                    *g = value;
                }
            },
        );
    }

    /// Record a sample into a labelled histogram.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], sample: f64) {
        self.with_entry(
            name,
            labels,
            || Value::Hist(Histogram::new()),
            |v| {
                if let Value::Hist(h) = v {
                    h.record(sample);
                }
            },
        );
    }

    /// Current value of a labelled counter or gauge.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.read_entry(name, labels, |v| match v {
            Value::Counter(c) => Some(*c),
            Value::Gauge(g) => Some(*g),
            Value::Hist(_) => None,
        })
    }

    /// Copy of a labelled histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        self.read_entry(name, labels, |v| match v {
            Value::Hist(h) => Some(h.clone()),
            _ => None,
        })
    }

    /// Summary statistics of a labelled histogram.
    pub fn hist_stats(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistStats> {
        self.read_entry(name, labels, |v| match v {
            Value::Hist(h) => Some(h.stats()),
            _ => None,
        })
    }

    /// Bucket-bounded percentile of a labelled histogram.
    pub fn percentile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        self.read_entry(name, labels, |v| match v {
            Value::Hist(h) => h.percentile(q),
            _ => None,
        })
    }

    /// Fold another registry into this one: counters add, gauges take the
    /// other side's value, histograms merge (order-stable; see
    /// [`Histogram::merge`]).
    pub fn merge(&self, other: &MetricsRegistry) {
        let snap = other.snapshot_all();
        fn own(labels: &[(String, String)]) -> Vec<(&str, &str)> {
            labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect()
        }
        for (name, labels, v) in &snap.counters {
            self.counter_add(name, &own(labels), *v);
        }
        for (name, labels, v) in &snap.gauges {
            self.gauge_set(name, &own(labels), *v);
        }
        for (name, labels, h) in &snap.hists {
            self.with_entry(
                name,
                &own(labels),
                || Value::Hist(Histogram::new()),
                |v| {
                    if let Value::Hist(mine) = v {
                        mine.merge(h);
                    }
                },
            );
        }
    }

    /// Every metric, sorted by `(name, labels)` for deterministic output.
    pub fn snapshot_all(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in &self.store.shards {
            let shard = shard.lock().unwrap();
            for e in &shard.entries {
                let key = (e.name.clone(), e.labels.clone());
                match &e.value {
                    Value::Counter(c) => snap.counters.push((key.0, key.1, *c)),
                    Value::Gauge(g) => snap.gauges.push((key.0, key.1, *g)),
                    Value::Hist(h) => snap.hists.push((key.0, key.1, h.clone())),
                }
            }
        }
        snap.counters
            .sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        snap.gauges
            .sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        snap.hists
            .sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        snap
    }

    /// Render the text exposition format — Prometheus-shaped
    /// (`# TYPE` headers, `name{label="v"} value` samples, histograms as
    /// summaries with `quantile` labels), with internal dotted names
    /// mapped to `fcix_<underscored>`. This is the byte stream a future
    /// TCP `/metrics` endpoint will serve, and what
    /// `fcix-serve --metrics-out` snapshots to disk.
    pub fn render_text(&self) -> String {
        let snap = self.snapshot_all();
        let mut out = String::new();
        let wire = |name: &str| format!("fcix_{}", name.replace('.', "_"));
        let labelset = |labels: &[(String, String)], extra: Option<(&str, &str)>| {
            let mut parts: Vec<String> = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", v.replace('"', "'")))
                .collect();
            if let Some((k, v)) = extra {
                parts.push(format!("{k}=\"{v}\""));
            }
            if parts.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", parts.join(","))
            }
        };
        let mut last_type: Option<(String, &str)> = None;
        let mut type_line = |out: &mut String, name: &str, ty: &'static str| {
            if last_type.as_ref().map(|(n, t)| (n.as_str(), *t)) != Some((name, ty)) {
                out.push_str(&format!("# TYPE {name} {ty}\n"));
                last_type = Some((name.to_string(), ty));
            }
        };
        for (name, labels, v) in &snap.counters {
            let w = wire(name);
            type_line(&mut out, &w, "counter");
            out.push_str(&format!("{w}{} {v}\n", labelset(labels, None)));
        }
        for (name, labels, v) in &snap.gauges {
            let w = wire(name);
            type_line(&mut out, &w, "gauge");
            out.push_str(&format!("{w}{} {v}\n", labelset(labels, None)));
        }
        for (name, labels, h) in &snap.hists {
            let w = wire(name);
            type_line(&mut out, &w, "summary");
            let s = h.stats();
            for (q, qv) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
                out.push_str(&format!(
                    "{w}{} {qv}\n",
                    labelset(labels, Some(("quantile", q)))
                ));
            }
            out.push_str(&format!("{w}_max{} {}\n", labelset(labels, None), s.max));
            out.push_str(&format!("{w}_sum{} {}\n", labelset(labels, None), s.sum));
            out.push_str(&format!(
                "{w}_count{} {}\n",
                labelset(labels, None),
                s.count
            ));
        }
        out
    }

    /// Rebuild a metrics plane from a recorded trace, so `fcix-trace
    /// metrics` can expose any JSONL trace without the producing process.
    ///
    /// The mapping mirrors what the live instrumentation records:
    /// span durations → `trace.span_s{phase,cat}` histograms; DDI
    /// transfer instants → `ddi.{get,acc,put}_bytes`; fault instants →
    /// `fault.injected` counters and `ddi.retry_backoff_s`; rank-death
    /// recoveries → `fault.rank_death_recovery_s`; Davidson iteration
    /// instants → `davidson.iter_s` (simulated-time deltas); serve job
    /// instants → per-outcome counters and `serve.{queue_wait,exec}_us`.
    pub fn from_events(events: &[Event]) -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        let mut last_iter_s: Option<f64> = None;
        for e in events {
            match e.kind {
                EventKind::Span => {
                    reg.observe(
                        "trace.span_s",
                        &[("phase", &e.name), ("cat", e.cat.as_str())],
                        e.sim_dur_s,
                    );
                    if let Some(flops) = e.arg("flops") {
                        reg.counter_add("trace.flops", &[("cat", e.cat.as_str())], flops);
                    }
                }
                EventKind::Instant => match e.name.as_str() {
                    "ddi_get" | "ddi_get_cols" => {
                        if let Some(b) = e.arg("bytes") {
                            reg.observe("ddi.get_bytes", &[], b);
                        }
                    }
                    "ddi_acc" => {
                        if let Some(b) = e.arg("bytes") {
                            reg.observe("ddi.acc_bytes", &[], b);
                        }
                    }
                    "ddi_put" => {
                        if let Some(b) = e.arg("bytes") {
                            reg.observe("ddi.put_bytes", &[], b);
                        }
                    }
                    "fault_injected" => {
                        let kind = match e.arg("kind").map(|k| k as i64) {
                            Some(0) => "transient",
                            Some(1) => "duplicate",
                            Some(2) => "fence_delay",
                            _ => "other",
                        };
                        reg.counter_incr("fault.injected", &[("kind", kind)]);
                        if let Some(b) = e.arg("backoff_s") {
                            if b > 0.0 {
                                reg.observe("ddi.retry_backoff_s", &[], b);
                            }
                        }
                    }
                    "rank_death_recovery" => {
                        reg.counter_incr("fault.rank_deaths", &[]);
                        if let Some(lost) = e.arg("lost_s") {
                            reg.observe("fault.rank_death_recovery_s", &[], lost);
                        }
                    }
                    "diag_iter" => {
                        let now = e.sim_s;
                        if let Some(prev) = last_iter_s {
                            if now > prev {
                                reg.observe("davidson.iter_s", &[], now - prev);
                            }
                        } else if now > 0.0 {
                            reg.observe("davidson.iter_s", &[], now);
                        }
                        last_iter_s = Some(now);
                    }
                    "job_done" => {
                        reg.counter_incr("serve.jobs_done", &[]);
                        if let Some(q) = e.arg("queue_us") {
                            reg.observe("serve.queue_wait_us", &[], q);
                        }
                        if let Some(x) = e.arg("exec_us") {
                            reg.observe("serve.exec_us", &[], x);
                        }
                    }
                    "job_failed" => reg.counter_incr("serve.jobs_failed", &[]),
                    "cache_hit" => reg.counter_incr("serve.cache_hits", &[]),
                    "cache_miss" => reg.counter_incr("serve.cache_misses", &[]),
                    _ => {}
                },
                EventKind::Counter => {}
            }
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.counter_incr("ddi.nxtval", &[]);
        m.counter_incr("ddi.nxtval", &[]);
        m.counter_add("ddi.acc_bytes", &[], 4096.0);
        assert_eq!(m.value("ddi.nxtval", &[]), Some(2.0));
        assert_eq!(m.value("ddi.acc_bytes", &[]), Some(4096.0));
        assert_eq!(m.value("missing", &[]), None);
    }

    #[test]
    fn gauges_take_last_value() {
        let m = MetricsRegistry::new();
        m.gauge_set("residual", &[], 1.0);
        m.gauge_set("residual", &[], 1e-6);
        assert_eq!(m.value("residual", &[]), Some(1e-6));
    }

    #[test]
    fn snapshot_is_sorted() {
        let m = MetricsRegistry::new();
        m.gauge_set("b", &[], 2.0);
        m.gauge_set("a", &[], 1.0);
        let snap = m.snapshot_all();
        assert_eq!(snap.gauges[0].0, "a");
        assert_eq!(snap.gauges[1].0, "b");
    }

    #[test]
    fn labels_address_distinct_series() {
        let m = MetricsRegistry::new();
        m.counter_incr("serve.jobs_done", &[("tenant", "a")]);
        m.counter_incr("serve.jobs_done", &[("tenant", "a")]);
        m.counter_incr("serve.jobs_done", &[("tenant", "b")]);
        assert_eq!(m.value("serve.jobs_done", &[("tenant", "a")]), Some(2.0));
        assert_eq!(m.value("serve.jobs_done", &[("tenant", "b")]), Some(1.0));
        assert_eq!(m.value("serve.jobs_done", &[]), None);
    }

    #[test]
    fn histogram_percentiles_queryable() {
        let m = MetricsRegistry::new();
        for i in 1..=1000 {
            m.observe("serve.queue_wait_us", &[("tenant", "t0")], i as f64);
        }
        let p50 = m
            .percentile("serve.queue_wait_us", &[("tenant", "t0")], 50.0)
            .unwrap();
        assert!((500.0..=500.0 * 1.04).contains(&p50), "p50 = {p50}");
        let s = m
            .hist_stats("serve.queue_wait_us", &[("tenant", "t0")])
            .unwrap();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000.0);
    }

    #[test]
    fn many_metrics_stay_addressable() {
        // Exercise shard rehashing: hundreds of distinct keys.
        let m = MetricsRegistry::new();
        for i in 0..500 {
            m.counter_add(&format!("m{i}"), &[], i as f64);
        }
        for i in 0..500 {
            assert_eq!(m.value(&format!("m{i}"), &[]), Some(i as f64));
        }
        assert_eq!(m.snapshot_all().counters.len(), 500);
    }

    #[test]
    fn merge_is_order_stable() {
        let mk = |seed: u64| {
            let m = MetricsRegistry::new();
            for i in 0..200 {
                let v = ((seed * 131 + i * 17) % 10_000) as f64 * 1e-3;
                m.observe("lat", &[], v);
                m.counter_add("n", &[], 1.0);
            }
            m
        };
        let (a, b, c) = (mk(1), mk(2), mk(3));
        let m1 = MetricsRegistry::new();
        m1.merge(&a);
        m1.merge(&b);
        m1.merge(&c);
        let m2 = MetricsRegistry::new();
        m2.merge(&c);
        m2.merge(&a);
        m2.merge(&b);
        assert_eq!(m1.render_text(), m2.render_text());
        assert_eq!(m1.value("n", &[]), Some(600.0));
    }

    #[test]
    fn render_text_is_exposition_shaped() {
        let m = MetricsRegistry::new();
        m.counter_add("serve.jobs_done", &[("tenant", "a")], 3.0);
        m.gauge_set("serve.queue_depth", &[], 2.0);
        m.observe("serve.exec_us", &[("tenant", "a")], 1500.0);
        let text = m.render_text();
        assert!(text.contains("# TYPE fcix_serve_jobs_done counter"));
        assert!(text.contains("fcix_serve_jobs_done{tenant=\"a\"} 3"));
        assert!(text.contains("# TYPE fcix_serve_queue_depth gauge"));
        assert!(text.contains("# TYPE fcix_serve_exec_us summary"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("fcix_serve_exec_us_count{tenant=\"a\"} 1"));
    }

    #[test]
    fn shared_store_across_clones() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m2.counter_incr("x", &[]);
        assert_eq!(m.value("x", &[]), Some(1.0));
        assert!(m.same_store(&m2));
        assert!(!m.same_store(&MetricsRegistry::new()));
    }
}
