//! Event sinks: where trace records go.

use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;

/// A destination for trace events.
///
/// Implementations must be `Send + Sync`; the tracer is shared across the
/// virtual-MSP worker threads.
pub trait Sink: Send + Sync {
    /// Whether this sink wants events at all. `false` lets hot paths skip
    /// event construction entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn record(&self, event: &Event);

    /// Flush any buffered output.
    fn flush(&self) {}
}

/// Discards everything. Used when tracing is disabled.
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &Event) {}
}

/// Writes one JSON object per line to any `Write` target.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Create (truncate) a JSONL trace file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(std::io::BufWriter::new(file)))
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, event: &Event) {
        let line = event.to_json().to_string();
        let mut w = self.writer.lock().unwrap();
        // Trace output is best-effort; a full disk should not kill the run.
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

/// Collects events in memory — for tests and for in-process summarization.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// New empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Snapshot of all recorded events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, EventKind};

    fn ev(name: &str) -> Event {
        Event {
            kind: EventKind::Instant,
            name: name.into(),
            cat: Category::Other,
            rank: Some(0),
            host_us: 0.0,
            host_dur_us: 0.0,
            sim_s: 0.0,
            sim_dur_s: 0.0,
            args: vec![],
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn memory_sink_collects() {
        let sink = MemorySink::new();
        sink.record(&ev("a"));
        sink.record(&ev("b"));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events()[1].name, "b");
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(&ev("a"));
        sink.record(&ev("b"));
        let buf = sink.writer.into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = crate::event::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "a");
    }
}
