//! Microbench: one full diagonalization per method on a fixed random
//! Hamiltonian — end-to-end eigensolver cost (host wall-clock).

use fci_bench::harness::{BenchmarkId, Criterion};
use fci_bench::{criterion_group, criterion_main};
use fci_core::{
    diagonalize, random_hamiltonian, DetSpace, DiagMethod, DiagOptions, PoolParams, SigmaCtx,
    SigmaMethod,
};
use fci_ddi::{Backend, Ddi};
use fci_xsim::MachineModel;

fn bench_diag(c: &mut Criterion) {
    let ham = random_hamiltonian(6, 13);
    let space = DetSpace::c1(6, 3, 3);
    let ddi = Ddi::new(2, Backend::Serial);
    let model = MachineModel::cray_x1();
    let ctx = SigmaCtx {
        space: &space,
        ham: &ham,
        ddi: &ddi,
        model: &model,
        pool: PoolParams::default(),
    };
    let opts = DiagOptions {
        tol: 1e-8,
        ..Default::default()
    };
    let mut g = c.benchmark_group("diagonalize_6o_3a3b");
    g.sample_size(10);
    for method in [
        DiagMethod::Davidson,
        DiagMethod::AutoAdjust,
        DiagMethod::OlsenDamped,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{method:?}")),
            &method,
            |b, &m| {
                b.iter(|| diagonalize(&ctx, SigmaMethod::Dgemm, m, &opts));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_diag);
criterion_main!(benches);
