//! Microbench: string-space construction and coupling-table generation —
//! the replicated setup cost every processor pays once per calculation.

use fci_bench::harness::{BenchmarkId, Criterion};
use fci_bench::{criterion_group, criterion_main};
use fci_strings::{Nm1Families, Nm2Families, SinglesTable, SpinStrings};

fn bench_spaces(c: &mut Criterion) {
    let mut g = c.benchmark_group("strings");
    for &(n, ne) in &[(12usize, 4usize), (14, 5), (16, 4)] {
        g.bench_with_input(
            BenchmarkId::new("space", format!("{n}o{ne}e")),
            &(n, ne),
            |b, &(n, ne)| {
                b.iter(|| SpinStrings::c1(n, ne));
            },
        );
    }
    let space = SpinStrings::c1(12, 4);
    g.bench_function("singles_table_12o4e", |b| {
        b.iter(|| SinglesTable::new(&space))
    });
    g.bench_function("nm1_families_12o4e", |b| {
        b.iter(|| Nm1Families::new(&space))
    });
    g.bench_function("nm2_families_12o4e", |b| {
        b.iter(|| Nm2Families::new(&space))
    });
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let space = SpinStrings::c1(16, 5);
    let masks: Vec<u64> = (0..space.len()).map(|i| space.mask(i)).collect();
    c.bench_function("index_of_16o5e_all", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &m in &masks {
                acc += space.index_of(m).unwrap();
            }
            acc
        })
    });
}

criterion_group!(benches, bench_spaces, bench_lookup);
criterion_main!(benches);
