//! Microbench: full σ evaluations — DGEMM algorithm vs MOC vs the dense
//! Slater–Condon reference (real wall-clock on the host).

use fci_bench::harness::Criterion;
use fci_bench::{criterion_group, criterion_main};
use fci_core::{apply_sigma, random_hamiltonian, DetSpace, PoolParams, SigmaCtx, SigmaMethod};
use fci_ddi::{Backend, Ddi};
use fci_xsim::MachineModel;

fn bench_sigma(c: &mut Criterion) {
    let ham = random_hamiltonian(8, 7);
    let space = DetSpace::c1(8, 3, 3); // 56² = 3136 determinants
    let ddi = Ddi::new(4, Backend::Serial);
    let model = MachineModel::cray_x1();
    let ctx = SigmaCtx {
        space: &space,
        ham: &ham,
        ddi: &ddi,
        model: &model,
        pool: PoolParams::default(),
    };
    let cvec = space.guess(&ham, 4);

    let mut g = c.benchmark_group("sigma_8o_3a3b");
    g.sample_size(20);
    g.bench_function("dgemm", |b| {
        b.iter(|| apply_sigma(&ctx, &cvec, SigmaMethod::Dgemm));
    });
    g.bench_function("moc", |b| {
        b.iter(|| apply_sigma(&ctx, &cvec, SigmaMethod::Moc));
    });
    g.bench_function("dense_slater_condon", |b| {
        let dense = cvec.to_dense();
        b.iter(|| fci_core::slater::sigma_dense(&space, &ham, &dense));
    });
    g.finish();
}

fn bench_sigma_larger(c: &mut Criterion) {
    // A Table-3-class space: 12 orbitals, 4+4 electrons (245k dets).
    let ham = random_hamiltonian(12, 3);
    let space = DetSpace::c1(12, 4, 4);
    let ddi = Ddi::new(8, Backend::Serial);
    let model = MachineModel::cray_x1();
    let ctx = SigmaCtx {
        space: &space,
        ham: &ham,
        ddi: &ddi,
        model: &model,
        pool: PoolParams::default(),
    };
    let cvec = space.guess(&ham, 8);
    let mut g = c.benchmark_group("sigma_12o_4a4b");
    g.sample_size(10);
    g.bench_function("dgemm", |b| {
        b.iter(|| apply_sigma(&ctx, &cvec, SigmaMethod::Dgemm));
    });
    g.finish();
}

criterion_group!(benches, bench_sigma, bench_sigma_larger);
criterion_main!(benches);
