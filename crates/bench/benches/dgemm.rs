//! Microbench: the owned DGEMM kernel vs the naive triple loop, across the
//! matrix sizes the σ routines actually produce. (Real wall-clock, not the
//! xsim model — this is the one place we measure the host.)

use fci_bench::harness::{BenchmarkId, Criterion, Throughput};
use fci_bench::{criterion_group, criterion_main};
use fci_linalg::{dgemm, dgemm_naive, Matrix, Trans};

fn rand_mat(nr: usize, nc: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    Matrix::from_fn(nr, nc, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    })
}

fn bench_dgemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("dgemm");
    for &n in &[32usize, 96, 192] {
        let a = rand_mat(n, n, 1);
        let b = rand_mat(n, n, 2);
        let mut out = Matrix::zeros(n, n);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| dgemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut out));
        });
        if n <= 96 {
            g.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
                bench.iter(|| dgemm_naive(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut out));
            });
        }
    }
    // The σ-shaped case: tall-skinny E = G · D (npair × nloc).
    let npair = 66;
    let nloc = 8;
    let gmat = rand_mat(npair, npair, 3);
    let d = rand_mat(npair, nloc, 4);
    let mut e = Matrix::zeros(npair, nloc);
    g.bench_function("sigma_shape_66x66x8", |bench| {
        bench.iter(|| dgemm(Trans::No, Trans::No, 1.0, &gmat, &d, 0.0, &mut e));
    });
    g.finish();
}

criterion_group!(benches, bench_dgemm);
criterion_main!(benches);
