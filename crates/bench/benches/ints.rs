//! Microbench: the integral engine — Boys function, ERI shell quartets,
//! full small-molecule tensors, and the AO→MO transformation.

use fci_bench::harness::Criterion;
use fci_bench::{criterion_group, criterion_main};
use fci_ints::{eri_tensor, overlap, BasisSet, Molecule};

fn bench_boys(c: &mut Criterion) {
    c.bench_function("boys_m8_sweep", |b| {
        let mut out = [0.0; 9];
        b.iter(|| {
            let mut acc = 0.0;
            let mut t = 0.01;
            while t < 60.0 {
                fci_ints::boys::boys(8, t, &mut out);
                acc += out[0];
                t *= 1.5;
            }
            acc
        })
    });
}

fn bench_eri(c: &mut Criterion) {
    let water = Molecule::from_symbols_bohr(
        &[
            ("O", [0.0, 0.0, 0.0]),
            ("H", [0.0, 1.43, 1.11]),
            ("H", [0.0, -1.43, 1.11]),
        ],
        0,
    );
    let b_sto = BasisSet::build(&water, "sto-3g");
    let mut g = c.benchmark_group("integrals");
    g.sample_size(10);
    g.bench_function("eri_water_sto3g", |b| b.iter(|| eri_tensor(&b_sto)));
    g.bench_function("overlap_water_sto3g", |b| b.iter(|| overlap(&b_sto)));
    let carbon = Molecule::from_symbols_bohr(&[("C", [0.0; 3])], 0);
    let b_svp = BasisSet::build(&carbon, "svp");
    g.bench_function("eri_c_svp_with_d", |b| b.iter(|| eri_tensor(&b_svp)));
    g.finish();
}

fn bench_scf(c: &mut Criterion) {
    let water = Molecule::from_symbols_bohr(
        &[
            ("O", [0.0, 0.0, 0.0]),
            ("H", [0.0, 1.43, 1.11]),
            ("H", [0.0, -1.43, 1.11]),
        ],
        0,
    );
    let basis = BasisSet::build(&water, "sto-3g");
    let mut g = c.benchmark_group("scf");
    g.sample_size(10);
    g.bench_function("rhf_water_sto3g", |b| {
        b.iter(|| fci_scf::rhf(&water, &basis, &fci_scf::RhfOptions::default()))
    });
    let r = fci_scf::rhf(&water, &basis, &fci_scf::RhfOptions::default());
    g.bench_function("motran_water_sto3g", |b| {
        b.iter(|| {
            fci_scf::transform_integrals(
                &r.h_ao,
                &r.eri_ao,
                &r.mo_coeffs,
                water.nuclear_repulsion(),
                1,
                6,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_boys, bench_eri, bench_scf);
criterion_main!(benches);
