//! Microbench: one-sided DDI primitives (get / acc / nxtval) on both
//! backends — the communication substrate's own overhead.

use fci_bench::harness::{BenchmarkId, Criterion};
use fci_bench::{criterion_group, criterion_main};
use fci_ddi::{Backend, CommStats, Ddi, DistMatrix};

fn bench_ops(c: &mut Criterion) {
    let m = DistMatrix::zeros(4096, 16, 4);
    let mut g = c.benchmark_group("ddi_ops");
    for &(name, col) in &[("local", 0usize), ("remote", 15usize)] {
        g.bench_with_input(BenchmarkId::new("get_col", name), &col, |b, &col| {
            let mut buf = vec![0.0; 4096];
            let mut st = CommStats::default();
            b.iter(|| m.get_col(0, col, &mut buf, &mut st));
        });
        g.bench_with_input(BenchmarkId::new("acc_col", name), &col, |b, &col| {
            let buf = vec![1.0; 4096];
            let mut st = CommStats::default();
            b.iter(|| m.acc_col(0, col, &buf, &mut st));
        });
    }
    g.finish();
}

fn bench_nxtval(c: &mut Criterion) {
    let ddi = Ddi::new(8, Backend::Serial);
    c.bench_function("nxtval", |b| {
        let mut st = CommStats::default();
        b.iter(|| ddi.nxtval(&mut st));
    });
}

fn bench_run_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("ddi_run");
    g.sample_size(10);
    for backend in [Backend::Serial, Backend::Threads] {
        g.bench_with_input(
            BenchmarkId::new("acc_storm", format!("{backend:?}")),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    let ddi = Ddi::new(4, backend);
                    let m = DistMatrix::zeros(512, 16, 4);
                    ddi.run(|rank, st| {
                        let buf = vec![rank as f64; 512];
                        for col in 0..16 {
                            m.acc_col(rank, col, &buf, st);
                        }
                    });
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_ops, bench_nxtval, bench_run_backends);
criterion_main!(benches);
