//! End-to-end tests of the `fcix-bench-diff` CI gate: the committed
//! baseline shape passes, a synthetically degraded run fails non-zero,
//! and `--update` re-pins baselines from fresh artifacts.

use std::path::{Path, PathBuf};
use std::process::Command;

struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let root =
            std::env::temp_dir().join(format!("fcix-bench-diff-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("baselines")).unwrap();
        std::fs::create_dir_all(root.join("results")).unwrap();
        Fixture { root }
    }

    fn write(&self, rel: &str, text: &str) {
        std::fs::write(self.root.join(rel), text).unwrap();
    }

    fn read(&self, rel: &str) -> String {
        std::fs::read_to_string(self.root.join(rel)).unwrap()
    }

    fn run(&self, extra: &[&str]) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_fcix-bench-diff"))
            .arg("--baselines")
            .arg(self.root.join("baselines"))
            .arg("--results")
            .arg(self.root.join("results"))
            .args(extra)
            .output()
            .expect("fcix-bench-diff must spawn")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const ARTIFACT: &str = r#"{"speedup": 3.0, "warm": {"jobs_per_sec": 100.0}}"#;

fn baseline(speedup: f64) -> String {
    format!(
        r#"{{"bench": "t", "source": "BENCH_t.json", "metrics": [
            {{"path": "speedup", "value": {speedup}, "direction": "higher", "rel_tol": 0.1}},
            {{"path": "warm.jobs_per_sec", "value": 100.0, "direction": "higher", "rel_tol": 0.5}}
        ]}}"#
    )
}

#[test]
fn healthy_run_passes() {
    let fx = Fixture::new("pass");
    fx.write("results/BENCH_t.json", ARTIFACT);
    fx.write("baselines/t.json", &baseline(3.0));
    let out = fx.run(&[]);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(out.status.success(), "expected pass:\n{stdout}");
    assert!(stdout.contains("all within tolerance"), "{stdout}");
}

#[test]
fn degraded_run_fails_nonzero() {
    let fx = Fixture::new("degraded");
    // The fresh artifact's speedup (3.0) sits far below a baseline pin
    // of 6.0 — the shape of a real perf regression.
    fx.write("results/BENCH_t.json", ARTIFACT);
    fx.write("baselines/t.json", &baseline(6.0));
    let out = fx.run(&[]);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(out.status.code(), Some(1), "expected exit 1:\n{stdout}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("REGRESSION detected"), "{stdout}");
}

#[test]
fn missing_metric_and_missing_artifact_fail() {
    let fx = Fixture::new("missing");
    fx.write(
        "results/BENCH_t.json",
        r#"{"renamed_key": 3.0, "warm": {"jobs_per_sec": 100.0}}"#,
    );
    fx.write("baselines/t.json", &baseline(3.0));
    let out = fx.run(&[]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("MISSING"));

    // Artifact file absent entirely (bench never ran): also a failure.
    std::fs::remove_file(fx.root.join("results/BENCH_t.json")).unwrap();
    let out = fx.run(&[]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("ERROR"));
}

#[test]
fn update_repins_baseline_values() {
    let fx = Fixture::new("update");
    fx.write("results/BENCH_t.json", ARTIFACT);
    fx.write("baselines/t.json", &baseline(6.0));
    // Gate fails against the stale pin, --update adopts the fresh
    // reading, and the gate passes afterwards.
    assert_eq!(fx.run(&[]).status.code(), Some(1));
    assert!(fx.run(&["--update"]).status.success());
    assert!(fx.read("baselines/t.json").contains("\"value\": 3"));
    assert!(fx.run(&[]).status.success());
}

#[test]
fn committed_baselines_parse() {
    // The baselines shipped in results/baselines/ must stay loadable —
    // schema drift here would silently disable the CI gate.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/baselines");
    let mut n = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|x| x == "json") {
            fci_bench::regress::load_baseline(&path)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            n += 1;
        }
    }
    assert!(n >= 3, "expected >= 3 committed baselines, found {n}");
}
