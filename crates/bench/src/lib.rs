#![forbid(unsafe_code)]

//! Shared infrastructure for the experiment harnesses.
//!
//! One binary per table/figure of the paper lives in `src/bin/`; the
//! Criterion microbenches live in `benches/`. This library prepares the
//! benchmark *systems* — molecule → integrals → orbitals → active-space
//! MO integrals with symmetry labels — and provides small table-printing
//! helpers so every harness reports in the same format.
//!
//! Scaled-down analogues of the paper's systems (see DESIGN.md §2 for the
//! substitution rationale):
//!
//! | paper | here |
//! |---|---|
//! | H3COH / cc-pVDZ-class | H2O / svp (frozen core) |
//! | H2O2 | HOOH / sto-3g (frozen cores) |
//! | CN⁺ (strong multireference) | CN⁺ / sto-3g (frozen cores) |
//! | O ³P / aug-cc-pVQZ | O ³P / svp window |
//! | O⁻ / aug-cc-pVQZ (Fig. 5) | O⁻ / svp window |
//! | C2 X¹Σg⁺ / cc-pVTZ(+) 65e9 dets | C2 / svp window, D2h blocked |

pub mod harness;
pub mod regress;

use fci_core::{DetSpace, Hamiltonian};
use fci_ints::{
    detect_point_group, eri_tensor, kinetic, nuclear_attraction, overlap, BasisSet, Molecule,
};
use fci_scf::{
    core_orbitals, rhf, symmetry_adapt, transform_integrals, uhf, MoIntegrals, RhfOptions,
};

/// A fully prepared benchmark system.
pub struct System {
    pub name: String,
    /// Point-group name ("D2h", "C2v", …).
    pub group: String,
    /// Active-space MO integrals with orbital irreps.
    pub mo: MoIntegrals,
    /// Active-space α/β electron counts.
    pub na: usize,
    pub nb: usize,
    /// Spatial irrep of the target state.
    pub state_irrep: u8,
    /// RHF total energy if an SCF was converged.
    pub e_scf: Option<f64>,
}

impl System {
    /// Determinant space of the system over `1` processor (for sizing).
    pub fn space(&self) -> DetSpace {
        let ham = Hamiltonian::new(&self.mo);
        DetSpace::for_hamiltonian(&ham, self.na, self.nb, self.state_irrep)
    }
}

/// Orbital source for [`prepare`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orbitals {
    /// Converged RHF orbitals (closed shell); falls back to core orbitals
    /// if the SCF fails to converge (FCI is orbital-invariant).
    Rhf,
    /// Core-Hamiltonian orbitals (open-shell systems).
    Core,
    /// Unrestricted HF α orbitals for `(n_alpha, n_beta)` occupation —
    /// the better open-shell reference (relaxed in the majority-spin
    /// field); FCI remains exact in any case, only convergence changes.
    Uhf(usize, usize),
}

/// Build a benchmark system.
///
/// * `n_frozen` — doubly occupied orbitals folded into the core;
/// * `n_active` — active orbital count (`None` = all remaining);
/// * `na`/`nb` — active-space electron counts (after freezing);
/// * `use_symmetry` — detect the point group and label orbitals.
#[allow(clippy::too_many_arguments)]
pub fn prepare(
    name: &str,
    molecule: &Molecule,
    basis_name: &str,
    orbitals: Orbitals,
    n_frozen: usize,
    n_active: Option<usize>,
    na: usize,
    nb: usize,
    use_symmetry: bool,
) -> System {
    let basis = BasisSet::build(molecule, basis_name);
    let nao = basis.n_basis();
    let s = overlap(&basis);

    let (c, e_scf, h_ao, eri_ao) = match orbitals {
        Orbitals::Rhf if molecule.n_electrons().is_multiple_of(2) => {
            let r = rhf(molecule, &basis, &RhfOptions::default());
            if r.converged {
                (r.mo_coeffs, Some(r.energy), r.h_ao, r.eri_ao)
            } else {
                // Multireference cases (CN⁺, stretched C2) may defeat RHF;
                // core orbitals are exact for FCI, only convergence-rate
                // relevant.
                let (c, _) = core_orbitals(&basis, molecule);
                (c, None, r.h_ao, r.eri_ao)
            }
        }
        Orbitals::Uhf(tot_a, tot_b) => {
            let u = uhf(
                molecule,
                &basis,
                tot_a,
                tot_b,
                &RhfOptions {
                    max_iter: 300,
                    ..Default::default()
                },
            );
            if u.converged {
                (u.c_alpha, Some(u.energy), u.h_ao, u.eri_ao)
            } else {
                let (c, _) = core_orbitals(&basis, molecule);
                (c, None, u.h_ao, u.eri_ao)
            }
        }
        _ => {
            let (c, _) = core_orbitals(&basis, molecule);
            let h = {
                let mut t = kinetic(&basis);
                t.axpy(1.0, &nuclear_attraction(&basis, molecule));
                t
            };
            (c, None, h, eri_tensor(&basis))
        }
    };

    // Symmetry-adapt and label orbitals.
    let (c, irreps, group, n_irrep) = if use_symmetry {
        let pg = detect_point_group(molecule);
        let (cad, irr) = symmetry_adapt(&pg, &basis, &s, &c);
        (cad, irr, pg.name().to_string(), pg.n_irrep())
    } else {
        (c, vec![0u8; nao], "C1".to_string(), 1)
    };

    let n_act = n_active.unwrap_or(nao - n_frozen);
    assert!(
        na + nb + 2 * n_frozen == molecule.n_electrons(),
        "electron bookkeeping: {na}α + {nb}β active + {n_frozen} frozen pairs ≠ {} electrons",
        molecule.n_electrons()
    );
    let mo = transform_integrals(
        &h_ao,
        &eri_ao,
        &c,
        molecule.nuclear_repulsion(),
        n_frozen,
        n_act,
    );
    let mo = mo.with_symmetry(irreps[n_frozen..n_frozen + n_act].to_vec(), n_irrep);

    // Target state irrep: that of the lowest-diagonal determinant.
    let ham = Hamiltonian::new(&mo);
    let state_irrep = lowest_det_irrep(&ham, na, nb);

    System {
        name: name.to_string(),
        group,
        mo,
        na,
        nb,
        state_irrep,
        e_scf,
    }
}

/// Combined spatial irrep of the lowest-diagonal determinant.
pub fn lowest_det_irrep(ham: &Hamiltonian, na: usize, nb: usize) -> u8 {
    let space = DetSpace::new(ham.n, na, nb, &ham.orb_sym, ham.n_irrep, 0);
    let mut best = (f64::INFINITY, 0u8);
    for ia in 0..space.alpha.len() {
        for ib in 0..space.beta.len() {
            let d = ham.diagonal_element(space.alpha.mask(ia), space.beta.mask(ib));
            if d < best.0 {
                best = (
                    d,
                    space.alpha.irrep_of_index(ia) ^ space.beta.irrep_of_index(ib),
                );
            }
        }
    }
    best.1
}

// ---------------- benchmark system catalogue ----------------

/// H2O in its equilibrium-ish geometry.
pub fn water() -> Molecule {
    Molecule::from_symbols_bohr(
        &[
            ("O", [0.0, 0.0, 0.0]),
            ("H", [0.0, 1.4305, 1.1092]),
            ("H", [0.0, -1.4305, 1.1092]),
        ],
        0,
    )
}

/// Hydrogen peroxide, HOOH (planar-trans model geometry, Cs→C2h-ish but
/// deliberately aligned to keep a C2 axis).
pub fn hooh() -> Molecule {
    Molecule::from_symbols_bohr(
        &[
            ("O", [0.0, 1.37, 0.0]),
            ("O", [0.0, -1.37, 0.0]),
            ("H", [1.6, 1.9, 0.0]),
            ("H", [-1.6, -1.9, 0.0]),
        ],
        0,
    )
}

/// CN⁺ — the strongly multi-reference cation from Table 2.
pub fn cn_plus() -> Molecule {
    Molecule::from_symbols_bohr(&[("C", [0.0, 0.0, -1.1]), ("N", [0.0, 0.0, 1.1])], 1)
}

/// Atomic oxygen.
pub fn o_atom(charge: i32) -> Molecule {
    Molecule::from_symbols_bohr(&[("O", [0.0, 0.0, 0.0])], charge)
}

/// C2 at its ~1.24 Å bond length.
pub fn c2() -> Molecule {
    Molecule::from_symbols_bohr(&[("C", [0.0, 0.0, -1.17]), ("C", [0.0, 0.0, 1.17])], 0)
}

/// The four Table 2 convergence-study systems (scaled-down analogues).
pub fn table2_systems() -> Vec<System> {
    vec![
        prepare(
            "H2O/svp fc",
            &water(),
            "svp",
            Orbitals::Rhf,
            1,
            Some(8),
            4,
            4,
            true,
        ),
        prepare(
            "HOOH/sto-3g fc",
            &hooh(),
            "sto-3g",
            Orbitals::Rhf,
            2,
            None,
            7,
            7,
            true,
        ),
        prepare(
            "CN+/sto-3g fc",
            &cn_plus(),
            "sto-3g",
            Orbitals::Rhf,
            2,
            None,
            4,
            4,
            true,
        ),
        prepare(
            "O 3P/svp",
            &o_atom(0),
            "svp",
            Orbitals::Core,
            1,
            Some(12),
            4,
            2,
            true,
        ),
    ]
}

/// O-atom analogue used for the Fig. 4 strong-scaling comparison.
pub fn fig4_system() -> System {
    prepare(
        "O 3P/svp(12)",
        &o_atom(0),
        "svp",
        Orbitals::Core,
        1,
        Some(12),
        4,
        2,
        false,
    )
}

/// O⁻ analogue used for the Fig. 5 speedup study (larger space: 9
/// electrons in 14 orbitals, 2 004 002 determinants).
pub fn fig5_system() -> System {
    prepare(
        "O-/svp(14)",
        &o_atom(-1),
        "svp",
        Orbitals::Core,
        0,
        Some(14),
        5,
        4,
        false,
    )
}

/// C2 X¹Σg⁺ analogue for the Table 3 capability run (D2h blocked,
/// FCI(8,16): 3.3 million determinants — large enough that the 432
/// virtual MSPs all hold work, with C(16,3) = 560 mixed-spin task units).
pub fn c2_system() -> System {
    prepare(
        "C2 X1Sg+/svp(16)",
        &c2(),
        "svp",
        Orbitals::Rhf,
        2,
        Some(16),
        4,
        4,
        true,
    )
}

// ---------------- reporting helpers ----------------

/// Print a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Format seconds with engineering sanity.
pub fn fmt_s(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0} s")
    } else if t >= 1.0 {
        format!("{t:.1} s")
    } else if t >= 1e-3 {
        format!("{:.1} ms", t * 1e3)
    } else {
        format!("{:.1} µs", t * 1e6)
    }
}

/// Format bytes.
pub fn fmt_bytes(b: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = b;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.2} {}", UNITS[u])
}

/// Write a machine-readable benchmark record to
/// `results/BENCH_<name>.json` (directory created on demand) and return
/// the path. The harness binaries call this with a telemetry object built
/// around [`fci_obs::RunSummary::to_json`].
pub fn write_bench_json(
    name: &str,
    value: &fci_obs::JsonValue,
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, value.to_string() + "\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_molecules_sane() {
        assert_eq!(water().n_electrons(), 10);
        assert_eq!(hooh().n_electrons(), 18);
        assert_eq!(cn_plus().n_electrons(), 12);
        assert_eq!(o_atom(-1).n_electrons(), 9);
        assert_eq!(c2().n_electrons(), 12);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(2048.0), "2.00 KB");
        assert_eq!(fmt_s(0.5), "500.0 ms");
        assert_eq!(fmt_s(2.0), "2.0 s");
    }

    #[test]
    fn prepare_with_uhf_orbitals() {
        let sys = prepare(
            "o-uhf",
            &o_atom(0),
            "sto-3g",
            Orbitals::Uhf(5, 3),
            1,
            None,
            4,
            2,
            true,
        );
        assert_eq!(sys.mo.n_orb, 4);
        assert!(sys.e_scf.is_some(), "UHF should converge for O/sto-3g");
        assert_eq!(sys.group, "D2h");
    }

    #[test]
    fn prepare_small_system() {
        // The cheapest catalogue entry end-to-end.
        let sys = prepare(
            "h2",
            &Molecule::from_symbols_bohr(&[("H", [0.0, 0.0, -0.7]), ("H", [0.0, 0.0, 0.7])], 0),
            "sto-3g",
            Orbitals::Rhf,
            0,
            None,
            1,
            1,
            true,
        );
        assert_eq!(sys.mo.n_orb, 2);
        assert!(sys.e_scf.is_some());
        assert_eq!(sys.group, "D2h");
        // σg ⊗ σg ground state is totally symmetric.
        assert_eq!(sys.state_irrep, 0);
        assert_eq!(sys.space().sector_dim(), 2);
    }
}
