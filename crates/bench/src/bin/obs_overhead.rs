//! Metrics-plane overhead: the same work measured with recording on and
//! off, emitting `results/BENCH_obs_overhead.json`.
//!
//! Two arms, mirroring where the sharded registry sits in the hot path:
//!
//! * **gemm** — 512³ `dgemm` through the packed path with the
//!   `fci_linalg::probe` observer disabled vs enabled and recording
//!   per-shape GF/s histograms into a live [`MetricsRegistry`];
//! * **serve** — the `serve_throughput` cache-warm workload with the
//!   server's `ObsConfig` carrying no registry vs a shared registry
//!   (per-tenant queue-wait/exec histograms, cache counters, davidson
//!   and σ-phase metrics all recording).
//!
//! Each arm samples off/on *pairs* back-to-back and reports the median
//! per-pair `on/off` ratio: pairing cancels slow drift (frequency
//! scaling, co-tenants), the median rejects the odd pair split by a
//! stall. The acceptance budget is ≤ 5 % —
//! `results/baselines/obs_overhead.json` pins both ratios for
//! `fcix-bench-diff`, and `--quick` self-gates at 10 % to absorb
//! shared-runner noise without masking a real regression.

use std::sync::Arc;

use fci_linalg::{dgemm_path, probe, GemmPath, Matrix, Trans};
use fci_obs::{JsonValue, MetricsRegistry, ObsConfig};
use fci_serve::{serve, JobSpec, ProblemSpec, ServeConfig};
use std::hint::black_box;
use std::time::Instant;

/// One timed run.
fn time_once(mut f: impl FnMut()) -> f64 {
    // lint: allow(wallclock) — this bench measures real host time
    let t0 = Instant::now();
    black_box(&mut f)();
    t0.elapsed().as_secs_f64()
}

/// Paired A/B sampling: each round times the off arm and the on arm
/// back-to-back (after one warm-up each), so slow drift — frequency
/// scaling, a co-tenant waking up — hits both sides of a pair equally.
fn ab_pairs(reps: usize, mut off: impl FnMut(), mut on: impl FnMut()) -> Vec<(f64, f64)> {
    black_box(&mut off)();
    black_box(&mut on)();
    (0..reps)
        .map(|_| (time_once(&mut off), time_once(&mut on)))
        .collect()
}

/// Overhead estimate from paired samples: the median of per-pair
/// `on/off` ratios. The median rejects the odd pair where a stall split
/// the two runs; within-pair pairing rejects drift.
fn overhead(pairs: &[(f64, f64)]) -> f64 {
    let mut ratios: Vec<f64> = pairs.iter().map(|(off, on)| on / off).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ratios[ratios.len() / 2]
}

/// Best (minimum) time per arm, for the artifact's absolute columns.
fn best(pairs: &[(f64, f64)]) -> (f64, f64) {
    pairs.iter().fold((f64::INFINITY, f64::INFINITY), |acc, p| {
        (acc.0.min(p.0), acc.1.min(p.1))
    })
}

fn rand_mat(nr: usize, nc: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    Matrix::from_fn(nr, nc, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    })
}

/// Back-to-back kernel calls per timed sample: one 512³ `dgemm` is only
/// ~10 ms, too short against scheduler/timer jitter for a ≤5 % verdict.
const GEMM_CALLS_PER_SAMPLE: usize = 8;

/// GEMM arm: probe off vs probe on, recording into `reg`.
fn gemm_arm(reg: &MetricsRegistry, n: usize, reps: usize) -> Vec<(f64, f64)> {
    let a = rand_mat(n, n, 1);
    let b = rand_mat(n, n, 2);
    let mut c_off = Matrix::zeros(n, n);
    let mut c_on = Matrix::zeros(n, n);
    let greg = reg.clone();
    probe::install(Arc::new(move |m, n, k, secs| {
        let gf = 2.0 * (m as f64) * (n as f64) * (k as f64) / secs.max(1e-12) / 1e9;
        let shape = format!("{m}x{n}x{k}");
        greg.observe("linalg.gemm_gflops", &[("shape", &shape)], gf);
        greg.observe("linalg.gemm_s", &[("shape", &shape)], secs);
    }));
    let run = |c: &mut Matrix| {
        for _ in 0..GEMM_CALLS_PER_SAMPLE {
            dgemm_path(
                GemmPath::Packed,
                1,
                Trans::No,
                Trans::No,
                1.0,
                &a,
                &b,
                0.0,
                c,
            );
        }
    };
    let pairs = ab_pairs(
        reps,
        || {
            probe::set_enabled(false);
            run(&mut c_off);
        },
        || {
            probe::set_enabled(true);
            run(&mut c_on);
        },
    );
    probe::set_enabled(false);
    pairs
}

/// Serve arm: the cache-warm workload with and without a registry.
fn serve_arm(
    reg: &MetricsRegistry,
    n_jobs: usize,
    n_orb: usize,
    n_elec: usize,
    reps: usize,
) -> Vec<(f64, f64)> {
    let workload = || -> Vec<JobSpec> {
        (0..n_jobs)
            .map(|i| {
                let mut j = JobSpec::new(
                    format!("job-{i}"),
                    ProblemSpec::Hubbard {
                        sites: n_orb,
                        t: 1.0,
                        u: 4.0,
                        periodic: false,
                    },
                    n_elec,
                    0,
                );
                j.tenant = format!("tenant-{}", i % 4);
                j.max_iter = 2;
                j.tol = 1e-6;
                j
            })
            .collect()
    };
    let run = |obs: ObsConfig| {
        let cfg = ServeConfig {
            workers: 1,
            cache_budget: 256 << 20,
            batching: false,
            obs,
            ..ServeConfig::default()
        };
        let report = serve(cfg, workload());
        assert_eq!(report.summary.jobs_done, n_jobs, "workload must complete");
    };
    ab_pairs(
        reps,
        || run(ObsConfig::default()),
        || run(ObsConfig::default().with_metrics(reg.clone())),
    )
}

fn arm_json(pairs: &[(f64, f64)]) -> JsonValue {
    let (t_off, t_on) = best(pairs);
    let oh = overhead(pairs);
    JsonValue::obj(vec![
        ("off_s", JsonValue::Num(t_off)),
        ("on_s", JsonValue::Num(t_on)),
        ("overhead", JsonValue::Num(oh)),
        ("overhead_pct", JsonValue::Num(100.0 * (oh - 1.0))),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let (n, gemm_reps, serve_reps) = if quick { (384, 3, 3) } else { (512, 7, 7) };

    let reg = MetricsRegistry::new();
    let gemm_pairs = gemm_arm(&reg, n, gemm_reps);
    let (g_oh, (g_off, g_on)) = (overhead(&gemm_pairs), best(&gemm_pairs));
    println!(
        "gemm  {n}³   : off {g_off:.4} s, on {g_on:.4} s  (median pair ratio {:+.2}%)",
        100.0 * (g_oh - 1.0)
    );
    let serve_pairs = serve_arm(&reg, 8, 14, 5, serve_reps);
    let (s_oh, (s_off, s_on)) = (overhead(&serve_pairs), best(&serve_pairs));
    println!(
        "serve 8 jobs: off {s_off:.4} s, on {s_on:.4} s  (median pair ratio {:+.2}%)",
        100.0 * (s_oh - 1.0)
    );

    // The on-arms really recorded: the registry must hold observations.
    let exposition = reg.render_text();
    assert!(
        exposition.contains("linalg_gemm_gflops"),
        "gemm probe recorded nothing"
    );
    assert!(
        exposition.contains("serve_exec_us"),
        "serve metrics recorded nothing"
    );

    let doc = JsonValue::obj(vec![
        (
            "mode",
            JsonValue::Str(if quick { "quick" } else { "full" }.into()),
        ),
        ("gemm_n", JsonValue::Num(n as f64)),
        ("gemm", arm_json(&gemm_pairs)),
        ("serve", arm_json(&serve_pairs)),
    ]);
    match fci_bench::write_bench_json("obs_overhead", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            println!("FAIL: cannot write artifact: {e}");
            std::process::exit(1);
        }
    }

    let budget = if quick { 1.10 } else { 1.05 };
    let worst = g_oh.max(s_oh);
    if worst > budget {
        println!(
            "FAIL: metrics overhead {:.1}% exceeds {:.0}% budget",
            100.0 * (worst - 1.0),
            100.0 * (budget - 1.0)
        );
        std::process::exit(1);
    }
    println!(
        "OK: metrics overhead {:.1}% within {:.0}% budget",
        100.0 * (worst - 1.0).max(0.0),
        100.0 * (budget - 1.0)
    );
}
