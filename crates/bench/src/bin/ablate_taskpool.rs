//! **Ablation** — task aggregation in the dynamic load balancer (Fig. 3).
//!
//! Compares three pool shapes for the mixed-spin routine at fixed MSP
//! count: coarse static-like chunks (1 task/proc), the paper's aggregated
//! decreasing-size pool, and a flat fine-grained pool. Reports the load
//! imbalance and the counter (SHMEM_SWAP) traffic — the trade-off the
//! aggregation scheme is designed to balance.

use fci_bench::{fig5_system, row};
use fci_core::{run_phase, DetSpace, Hamiltonian, PoolParams, SigmaCtx};
use fci_ddi::{Backend, Ddi};
use fci_xsim::MachineModel;

fn main() {
    let sys = fig5_system();
    let ham = Hamiltonian::new(&sys.mo);
    let space = DetSpace::for_hamiltonian(&ham, sys.na, sys.nb, sys.state_irrep);
    let model = MachineModel::cray_x1();
    let p = 96usize;
    println!(
        "Ablation — task pool shape for the α-β routine ({} on {p} MSPs)\n",
        sys.name
    );
    let w = [26usize, 10, 14, 14, 14];
    println!(
        "{}",
        row(
            &[
                "pool".into(),
                "tasks".into(),
                "elapsed [s]".into(),
                "imbalance [s]".into(),
                "nxtval msgs".into()
            ],
            &w
        )
    );

    let shapes: [(&str, PoolParams); 4] = [
        (
            "coarse (1/proc)",
            PoolParams {
                fine_per_proc: 1,
                large_per_proc: 1,
                small_per_proc: 0,
            },
        ),
        ("aggregated (paper)", PoolParams::default()),
        (
            "flat fine (64/proc)",
            PoolParams {
                fine_per_proc: 64,
                large_per_proc: 64,
                small_per_proc: 0,
            },
        ),
        (
            "flat fine (256/proc)",
            PoolParams {
                fine_per_proc: 256,
                large_per_proc: 256,
                small_per_proc: 0,
            },
        ),
    ];
    for (name, pool) in shapes {
        let ddi = Ddi::new(p, Backend::Serial);
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool,
        };
        let c = space.guess(&ham, p);
        let sigma = space.zeros_ci(p);
        let rep = fci_core::sigma::mixed::mixed_spin_dgemm(&ctx, &c, &sigma);
        // Count nxtval messages with a dedicated probe phase (they are
        // folded into total_msgs; re-derive from the pool size instead).
        let npool = fci_core::TaskPool::aggregated(space.alpha_nm1.len(), p, pool).len();
        let nxtval = npool + p; // every task claim + one terminating probe per rank
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    format!("{npool}"),
                    format!("{:.4}", rep.elapsed()),
                    format!("{:.4}", rep.load_imbalance()),
                    format!("{nxtval}"),
                ],
                &w
            )
        );
        let _ = run_phase(&ddi, &model, "taskpool_probe", |_r, _s, _c| {}); // keep API exercised
    }
    println!("\nexpected: coarse pools show the worst imbalance; very fine pools pay");
    println!("counter latency; the aggregated decreasing-size pool sits at the knee.");
}
