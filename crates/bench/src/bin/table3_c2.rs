//! **Table 3** — the C2 X¹Σg⁺ capability benchmark on 432 MSPs.
//!
//! Paper: FCI(8,66), 64.9 billion determinants, D2h; per iteration:
//! β-β 62 s @ 8.5 GF/MSP, α-β 167 s @ 8.8 GF/MSP, load imbalance 9 s,
//! total 249 s @ ~8 GF/MSP; 6.2 TB network traffic per iteration; 25
//! iterations of the auto-adjusted method to residual 1e-5; aggregate
//! 3.4 TFlop/s (62 % of peak).
//!
//! Here: the C2/svp analogue (FCI(8,12) window, D2h blocked) run to
//! convergence with the same solver on 432 *virtual* MSPs, printing the
//! same row set from the simulated clocks.

use fci_bench::{c2_system, fmt_bytes, write_bench_json};
use fci_core::{solve, DiagMethod, DiagOptions, FciOptions, SigmaMethod};
use fci_obs::JsonValue;
use fci_xsim::MachineModel;

fn main() {
    let sys = c2_system();
    let msps = 432usize;
    let model = MachineModel::cray_x1();
    let opts = FciOptions {
        nproc: msps,
        sigma: SigmaMethod::Dgemm,
        method: DiagMethod::AutoAdjust,
        diag: DiagOptions {
            max_iter: 80,
            tol: 1e-5,
            ..Default::default()
        },
        machine: model,
        ..Default::default()
    };
    eprintln!("running C2 analogue FCI on {msps} virtual MSPs ...");
    let r = solve(&sys.mo, sys.na, sys.nb, sys.state_irrep, &opts);
    let its = r.iterations.max(1) as f64;

    let bb = r.sigma_cost.beta_beta.elapsed() / its;
    let aa = (r.sigma_cost.alpha_alpha.elapsed() + r.sigma_cost.transpose.elapsed()) / its;
    let ab = r.sigma_cost.alpha_beta.elapsed() / its;
    let imb = r.sigma_cost.alpha_beta.load_imbalance() / its;
    let total_rep = r.sigma_cost.total();
    let total = total_rep.elapsed() / its;
    let comm = total_rep.total_net_bytes() / its;
    // Checkpoint I/O of one CI vector per iteration at the X1 disk rates.
    let ci_bytes = (r.dim * 8) as f64;
    let io_s = ci_bytes / model.disk_read + ci_bytes / model.disk_write;

    println!("Table 3 — FCI benchmark (C2 analogue) on {msps} virtual MSPs");
    println!("{:<22} C2", "Molecule");
    println!("{:<22} X 1Sg+ (irrep 0 sector)", "State");
    println!("{:<22} svp window (16 active orbitals)", "Basis");
    println!(
        "{:<22} FCI({},{})  [{}]",
        "CI space",
        sys.na + sys.nb,
        sys.mo.n_orb,
        sys.group
    );
    println!(
        "{:<22} {}  (sector {})",
        "CI dimension", r.dim, r.sector_dim
    );
    println!("{:<22} {}", "MSPs", msps);
    println!(
        "{:<22} {:.3} s / {:.2} GF/MSP",
        "Beta-beta",
        bb,
        r.sigma_cost.beta_beta.gflops_per_msp()
    );
    println!(
        "{:<22} {:.3} s / {:.2} GF/MSP",
        "Alpha-alpha(+transp)",
        aa,
        r.sigma_cost.alpha_alpha.gflops_per_msp()
    );
    println!(
        "{:<22} {:.3} s / {:.2} GF/MSP",
        "Alpha-beta",
        ab,
        r.sigma_cost.alpha_beta.gflops_per_msp()
    );
    println!("{:<22} {:.3} s", "Load imbalance (ab)", imb);
    println!(
        "{:<22} {:.3} s / {:.2} GF/MSP",
        "Total per iteration",
        total,
        total_rep.gflops_per_msp()
    );
    println!(
        "{:<22} {:.2} TFlop/s aggregate ({:.0}% of peak)",
        "Sustained",
        total_rep.tflops(),
        100.0 * total_rep.gflops_per_msp() * 1e9 / model.peak_flops
    );
    println!(
        "{:<22} {} per iteration",
        "Network traffic",
        fmt_bytes(comm)
    );
    println!(
        "{:<22} {:.3} s per iteration (checkpoint at 293 MB/s R / 246 MB/s W)",
        "Disk IO", io_s
    );
    println!(
        "{:<22} {} ({}) to residual 1e-5",
        "Iterations",
        r.iterations,
        if r.converged {
            "converged"
        } else {
            "NOT converged"
        }
    );
    println!("{:<22} {:.8} Eh", "E(FCI)", r.energy);
    if let Some(e) = sys.e_scf {
        println!("{:<22} {:.8} Eh (corr {:.6})", "E(RHF)", e, r.energy - e);
    }

    let record = JsonValue::obj(vec![
        ("bench", JsonValue::Str("table3_c2".into())),
        ("system", JsonValue::Str(sys.name.clone())),
        ("group", JsonValue::Str(sys.group.clone())),
        ("msps", JsonValue::Num(msps as f64)),
        ("dim", JsonValue::Num(r.dim as f64)),
        ("sector_dim", JsonValue::Num(r.sector_dim as f64)),
        ("iterations", JsonValue::Num(r.iterations as f64)),
        ("converged", JsonValue::Bool(r.converged)),
        ("energy", JsonValue::Num(r.energy)),
        (
            "per_iteration_s",
            JsonValue::obj(vec![
                ("beta_beta", JsonValue::Num(bb)),
                ("alpha_alpha", JsonValue::Num(aa)),
                ("alpha_beta", JsonValue::Num(ab)),
                ("load_imbalance", JsonValue::Num(imb)),
                ("total", JsonValue::Num(total)),
                ("disk_io", JsonValue::Num(io_s)),
            ]),
        ),
        ("summary", total_rep.summary().to_json()),
    ]);
    match write_bench_json("table3_c2", &record) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("warning: could not write bench json: {e}"),
    }
}
