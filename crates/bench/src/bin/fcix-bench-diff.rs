//! `fcix-bench-diff` — CI perf-regression gate.
//!
//! ```text
//! fcix-bench-diff [options]
//!
//!   --baselines DIR   committed baselines (default results/baselines)
//!   --results DIR     fresh artifacts     (default results)
//!   --update          rewrite each baseline's pinned values from the
//!                     fresh artifacts instead of gating
//! ```
//!
//! Compares every `results/baselines/*.json` against the matching fresh
//! `results/BENCH_*.json` (see `fci_bench::regress` for the baseline
//! schema and tolerance semantics). Exit status: 0 all metrics within
//! tolerance, 1 any regression / missing metric / unreadable artifact,
//! 2 bad usage. Run the `--quick` benches first so the fresh artifacts
//! exist:
//!
//! ```text
//! cargo run --release -p fci-bench --bin gemm_sweep -- --quick
//! cargo run --release -p fci-bench --bin serve_throughput -- --quick
//! cargo run --release -p fci-bench --bin obs_overhead -- --quick
//! cargo run --release -p fci-bench --bin fcix-bench-diff
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use fci_bench::regress::{compare_dirs, load_baseline, pretty, JsonValue};

fn usage() -> ExitCode {
    eprintln!(
        "usage: fcix-bench-diff [--baselines DIR] [--results DIR] [--update]\n\
         gate fresh results/BENCH_*.json against committed baselines"
    );
    ExitCode::from(2)
}

struct Cli {
    baselines: PathBuf,
    results: PathBuf,
    update: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        baselines: PathBuf::from("results/baselines"),
        results: PathBuf::from("results"),
        update: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--baselines" => cli.baselines = value(arg)?.into(),
            "--results" => cli.results = value(arg)?.into(),
            "--update" => cli.update = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(cli)
}

/// Rewrite each baseline's pinned values from the fresh artifacts.
fn update(cli: &Cli) -> Result<(), String> {
    let mut files: Vec<_> = std::fs::read_dir(&cli.baselines)
        .map_err(|e| format!("cannot read {}: {e}", cli.baselines.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    for f in files {
        let base = load_baseline(&f)?;
        let fresh_path = cli.results.join(&base.source);
        let text = std::fs::read_to_string(&fresh_path)
            .map_err(|e| format!("cannot read {}: {e}", fresh_path.display()))?;
        let fresh =
            JsonValue::parse(&text).map_err(|e| format!("{}: {e}", fresh_path.display()))?;
        let refreshed = base.refreshed(&fresh);
        let mut doc = pretty(&refreshed.to_json());
        doc.push('\n');
        std::fs::write(&f, doc).map_err(|e| format!("cannot write {}: {e}", f.display()))?;
        eprintln!("updated {}", f.display());
    }
    Ok(())
}

fn run(cli: &Cli) -> Result<bool, String> {
    if cli.update {
        update(cli)?;
        return Ok(true);
    }
    let reports = compare_dirs(&cli.baselines, &cli.results)?;
    let mut ok = true;
    for r in &reports {
        print!("{}", r.render());
        ok &= r.ok();
    }
    let n_metrics: usize = reports.iter().map(|r| r.outcomes.len()).sum();
    if ok {
        println!(
            "bench-diff: {} benches, {n_metrics} metrics, all within tolerance",
            reports.len()
        );
    } else {
        println!("bench-diff: REGRESSION detected (see above)");
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        return usage();
    }
    match parse_args(&args).and_then(|cli| run(&cli)) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("fcix-bench-diff: {e}");
            usage()
        }
    }
}
