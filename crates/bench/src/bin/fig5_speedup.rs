//! **Figure 5** — parallel speedup of the DGEMM implementation, 128→256
//! MSPs, O⁻ anion ground state (paper: ~perfect speedup, same-spin at
//! 9.6 GF/MSP, mixed-spin 8.5→8.1 GF/MSP).
//!
//! Here: the O⁻ analogue; one σ evaluation per MSP count on the simulated
//! machine; speedup is reported relative to 128 MSPs along with sustained
//! GFlop/s per MSP per routine.

use fci_bench::{fig5_system, row, write_bench_json};
use fci_core::{apply_sigma, DetSpace, Hamiltonian, PoolParams, SigmaCtx, SigmaMethod};
use fci_ddi::{Backend, Ddi};
use fci_obs::JsonValue;
use fci_xsim::MachineModel;

fn main() {
    let sys = fig5_system();
    let ham = Hamiltonian::new(&sys.mo);
    let space = DetSpace::for_hamiltonian(&ham, sys.na, sys.nb, sys.state_irrep);
    let model = MachineModel::cray_x1();
    println!("Figure 5 — DGEMM σ speedup, 128→256 MSPs");
    println!(
        "system: {} (n={}, Nα={}, Nβ={}, dim={})\n",
        sys.name,
        sys.mo.n_orb,
        sys.na,
        sys.nb,
        space.dim()
    );
    let widths = [6usize, 12, 10, 10, 14, 14, 12];
    println!(
        "{}",
        row(
            &[
                "MSPs".into(),
                "t(σ) [s]".into(),
                "speedup".into(),
                "ideal".into(),
                "ss GF/MSP".into(),
                "ab GF/MSP".into(),
                "imbalance".into(),
            ],
            &widths
        )
    );

    let mut t128 = None;
    let mut points = Vec::new();
    for &p in &[128usize, 160, 192, 224, 256] {
        let ddi = Ddi::new(p, Backend::Serial);
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let c = space.guess(&ham, p);
        let (_s, bd) = apply_sigma(&ctx, &c, SigmaMethod::Dgemm);
        let total = bd.total().elapsed();
        let t0 = *t128.get_or_insert(total);
        let mut ss = bd.beta_beta.clone();
        ss.merge(&bd.alpha_alpha);
        println!(
            "{}",
            row(
                &[
                    format!("{p}"),
                    format!("{total:.4}"),
                    format!("{:.2}", t0 / total * 128.0),
                    format!("{p}"),
                    format!("{:.2}", ss.gflops_per_msp()),
                    format!("{:.2}", bd.alpha_beta.gflops_per_msp()),
                    format!("{:.4} s", bd.alpha_beta.load_imbalance()),
                ],
                &widths
            )
        );
        points.push(JsonValue::obj(vec![
            ("msps", JsonValue::Num(p as f64)),
            ("sigma_s", JsonValue::Num(total)),
            ("speedup", JsonValue::Num(t0 / total * 128.0)),
            (
                "same_spin_gflops_per_msp",
                JsonValue::Num(ss.gflops_per_msp()),
            ),
            (
                "alpha_beta_gflops_per_msp",
                JsonValue::Num(bd.alpha_beta.gflops_per_msp()),
            ),
            (
                "load_imbalance_s",
                JsonValue::Num(bd.alpha_beta.load_imbalance()),
            ),
            ("summary", bd.total().summary().to_json()),
        ]));
    }
    println!("\nexpected shape (paper): speedup tracks the ideal line closely;");
    println!("per-MSP GFlop/s roughly flat (slight decline in the mixed-spin routine).");

    let record = JsonValue::obj(vec![
        ("bench", JsonValue::Str("fig5_speedup".into())),
        ("system", JsonValue::Str(sys.name.clone())),
        ("dim", JsonValue::Num(space.dim() as f64)),
        ("points", JsonValue::Arr(points)),
    ]);
    match write_bench_json("fig5_speedup", &record) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("warning: could not write bench json: {e}"),
    }
}
