//! Durable-serving overhead: what the write-ahead log costs on the
//! serving hot path, emitting `results/BENCH_served_durability.json`.
//!
//! Three arms run the same unbatched workload through `fci-serve`:
//!
//! * **plain** — no WAL: the pre-durability scheduler;
//! * **wal** — WAL on, buffered appends (the `fcix-served` default):
//!   every submit and completion is framed, CRC'd, and written before
//!   it is acknowledged, but the OS flushes at its leisure — this is
//!   the crash-exactly-once configuration the durability suite tests;
//! * **wal+sync** — `fdatasync` per append (power-loss durability),
//!   reported for context but not gated: its cost is the disk's, not
//!   the code's.
//!
//! The gated metric is `wal_over_plain` — buffered-WAL wall time over
//! plain wall time, both measured on this host in the same process, so
//! the ratio is machine-tolerant. The acceptance bar is <= 1.10: a
//! durable accept must cost no more than 10% of serving throughput.
//!
//! After the `wal` arm the log is reopened and replayed, asserting the
//! artifact a crash would actually recover from: every job has exactly
//! one completion record and nothing is left pending.
//!
//! `--quick` shrinks the workload for CI and exits 1 when the gate
//! fails; either mode writes the same artifact consumed by
//! `fcix-bench-diff` against `results/baselines/served_durability.json`.

use fci_obs::JsonValue;
use fci_serve::{serve, JobSpec, ProblemSpec, ServeConfig, ServeSummary, Wal};
use std::path::PathBuf;

/// `n_jobs` distinct-space ground-state jobs (sites varies the space so
/// the artifact cache cannot collapse the arm into one build — the WAL
/// cost must be measured against real per-job work, not cache hits).
fn workload(n_jobs: usize, n_orb: usize, n_elec: usize, max_iter: usize) -> Vec<JobSpec> {
    (0..n_jobs)
        .map(|i| {
            let mut j = JobSpec::new(
                format!("job-{i}"),
                ProblemSpec::Hubbard {
                    sites: n_orb,
                    t: 1.0,
                    u: 2.0 + (i % 5) as f64,
                    periodic: false,
                },
                n_elec,
                0,
            );
            j.tenant = format!("tenant-{}", i % 4);
            j.max_iter = max_iter;
            j.tol = 1e-6;
            j.batchable = false;
            j
        })
        .collect()
}

fn run_arm(jobs: Vec<JobSpec>, wal_path: Option<PathBuf>, wal_sync: bool) -> ServeSummary {
    if let Some(p) = &wal_path {
        let _ = std::fs::remove_file(p);
    }
    let cfg = ServeConfig {
        workers: 1,
        cache_budget: 0,
        batching: false,
        wal_path,
        wal_sync,
        ..ServeConfig::default()
    };
    let report = serve(cfg, jobs);
    assert_eq!(
        report.summary.jobs_done,
        report.results.len(),
        "bench workload must complete"
    );
    report.summary
}

/// Best throughput over `reps` repetitions (first rep warms the page
/// cache and code paths; jitter on shared runners only ever slows runs).
fn best_of(reps: usize, mut arm: impl FnMut() -> ServeSummary) -> ServeSummary {
    let mut best: Option<ServeSummary> = None;
    for _ in 0..reps {
        let s = arm();
        if best
            .as_ref()
            .map(|b| s.jobs_per_sec > b.jobs_per_sec)
            .unwrap_or(true)
        {
            best = Some(s);
        }
    }
    best.unwrap_or_default()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut params = if quick {
        [12, 12, 4, 3, 3]
    } else {
        [32, 14, 5, 4, 3]
    };
    for (slot, v) in args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .zip(&mut params)
    {
        *v = slot.parse().unwrap_or(*v);
    }
    let [n_jobs, n_orb, n_elec, max_iter, reps] = params;

    let dir = std::env::temp_dir().join(format!("fcix-bench-durab-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let wal_path = dir.join("bench.wal");

    println!(
        "served_durability: {n_jobs} jobs, {n_orb} orbitals ({n_elec}a0b), \
         max_iter {max_iter}"
    );
    let plain = best_of(reps, || {
        run_arm(workload(n_jobs, n_orb, n_elec, max_iter), None, false)
    });
    println!("  plain    : {:7.2} jobs/s", plain.jobs_per_sec);
    let wal = best_of(reps, || {
        run_arm(
            workload(n_jobs, n_orb, n_elec, max_iter),
            Some(wal_path.clone()),
            false,
        )
    });
    println!("  wal      : {:7.2} jobs/s", wal.jobs_per_sec);
    let synced = best_of(reps, || {
        run_arm(
            workload(n_jobs, n_orb, n_elec, max_iter),
            Some(dir.join("bench-sync.wal")),
            true,
        )
    });
    println!("  wal+sync : {:7.2} jobs/s", synced.jobs_per_sec);

    // The log the last wal arm left behind is the recovery artifact:
    // replay it and check the exactly-once bookkeeping a crash relies on.
    let (reopened, replay) = Wal::open(&wal_path).expect("reopen bench WAL");
    let wal_bytes = reopened.len();
    drop(reopened);
    assert!(
        replay.is_clean(),
        "bench WAL must replay clean: {:?}",
        replay.warnings
    );
    assert!(replay.pending.is_empty(), "drained run left pending jobs");
    assert_eq!(
        replay.completed.len(),
        n_jobs,
        "one completion record per job"
    );

    let wal_over_plain = plain.jobs_per_sec / wal.jobs_per_sec;
    let sync_over_plain = plain.jobs_per_sec / synced.jobs_per_sec;
    println!("  wal/plain      = {wal_over_plain:.3}x  (gate <= 1.10)");
    println!("  wal+sync/plain = {sync_over_plain:.3}x  (informational)");
    println!(
        "  wal size       = {wal_bytes} B ({:.0} B/job)",
        wal_bytes as f64 / n_jobs as f64
    );

    let doc = JsonValue::obj(vec![
        (
            "workload",
            JsonValue::obj(vec![
                ("n_jobs", JsonValue::Num(n_jobs as f64)),
                ("n_orb", JsonValue::Num(n_orb as f64)),
                ("n_alpha", JsonValue::Num(n_elec as f64)),
                ("n_beta", JsonValue::Num(0.0)),
                ("max_iter", JsonValue::Num(max_iter as f64)),
                ("workers", JsonValue::Num(1.0)),
                ("reps", JsonValue::Num(reps as f64)),
            ]),
        ),
        ("plain", plain.to_json()),
        ("wal", wal.to_json()),
        ("wal_sync", synced.to_json()),
        ("wal_over_plain", JsonValue::Num(wal_over_plain)),
        ("sync_over_plain", JsonValue::Num(sync_over_plain)),
        ("wal_bytes", JsonValue::Num(wal_bytes as f64)),
        (
            "wal_bytes_per_job",
            JsonValue::Num(wal_bytes as f64 / n_jobs as f64),
        ),
        (
            "replay_completed",
            JsonValue::Num(replay.completed.len() as f64),
        ),
    ]);
    let _ = std::fs::remove_dir_all(&dir);
    match fci_bench::write_bench_json("served_durability", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            println!("FAIL: cannot write artifact: {e}");
            std::process::exit(1);
        }
    }
    if quick {
        if wal_over_plain > 1.10 {
            println!("FAIL: WAL costs {wal_over_plain:.3}x plain serving, need <= 1.10x");
            std::process::exit(1);
        }
        println!("OK: buffered WAL overhead within 10%");
    }
}
