//! **Supplementary figure** — residual-norm convergence traces of every
//! diagonalizer on one system, as CSV for plotting.
//!
//! The paper reports only final iteration counts (Table 2); this harness
//! emits the full residual histories that sit behind such a table, which
//! is how the per-method behaviour (Olsen oscillation, damped-Olsen
//! crawl, auto-adjusted tracking of the exact 2×2) is actually diagnosed.
//!
//! Usage: `cargo run -p fci-bench --release --bin fig_convergence [index]`
//! where `index` picks the Table 2 system (0 = H2O … 3 = O atom; default 2
//! = the multireference CN⁺ analogue).

use fci_bench::table2_systems;
use fci_core::{solve, DiagMethod, DiagOptions, FciOptions};

fn main() {
    let idx: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let systems = table2_systems();
    let sys = &systems[idx.min(systems.len() - 1)];
    eprintln!(
        "# system: {} ({} sector determinants)",
        sys.name,
        sys.space().sector_dim()
    );

    let methods = [
        ("davidson", DiagMethod::Davidson),
        ("two_vector", DiagMethod::TwoVector),
        ("olsen", DiagMethod::Olsen),
        ("olsen_0.7", DiagMethod::OlsenDamped),
        ("auto", DiagMethod::AutoAdjust),
    ];
    let mut traces: Vec<Vec<f64>> = Vec::new();
    for (_, m) in &methods {
        let opts = FciOptions {
            method: *m,
            diag: DiagOptions {
                max_iter: 60,
                tol: 1e-9,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = solve(&sys.mo, sys.na, sys.nb, sys.state_irrep, &opts);
        traces.push(r.residual_history);
    }

    // CSV: iteration, one column per method (empty once a method stopped).
    println!(
        "iteration,{}",
        methods
            .iter()
            .map(|(n, _)| n.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let maxlen = traces.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..maxlen {
        let mut line = format!("{i}");
        for t in &traces {
            line.push(',');
            if let Some(v) = t.get(i) {
                line.push_str(&format!("{v:.6e}"));
            }
        }
        println!("{line}");
    }
}
