//! **Table 1** — performance model of the α-β routine: operation counts
//! and communication counts of the MOC and DGEMM algorithms, analytic
//! model next to *measured* instrumented counters.

use fci_bench::{fig4_system, row};
use fci_core::{apply_sigma, DetSpace, Hamiltonian, PerfModel, PoolParams, SigmaCtx, SigmaMethod};
use fci_ddi::{Backend, Ddi};
use fci_xsim::MachineModel;

fn main() {
    let sys = fig4_system();
    let ham = Hamiltonian::new(&sys.mo);
    let space = DetSpace::for_hamiltonian(&ham, sys.na, sys.nb, sys.state_irrep);
    let (n, na, nb) = (sys.mo.n_orb, sys.na, sys.nb);
    let nci = space.dim() as f64;
    let pm = PerfModel::new(nci, n, na, nb);

    // Measured: run one σ of each algorithm with every column remote-ish
    // (many ranks) and read the instrumented counters for the α-β phase.
    let p = 64usize;
    let ddi = Ddi::new(p, Backend::Serial);
    let model = MachineModel::cray_x1();
    let ctx = SigmaCtx {
        space: &space,
        ham: &ham,
        ddi: &ddi,
        model: &model,
        pool: PoolParams::default(),
    };
    let c = space.guess(&ham, p);
    let (_x, bd_dg) = apply_sigma(&ctx, &c, SigmaMethod::Dgemm);
    let (_y, bd_moc) = apply_sigma(&ctx, &c, SigmaMethod::Moc);

    let meas_ops_dg: f64 = bd_dg.alpha_beta.clocks.iter().map(|k| k.flops()).sum();
    let meas_ops_moc: f64 = bd_moc.alpha_beta.clocks.iter().map(|k| k.flops()).sum();
    // Communication scaled to "all remote": measured bytes × P/(P−1) / 8.
    let scale = p as f64 / (p as f64 - 1.0);
    let meas_comm_dg = bd_dg.alpha_beta.total_net_bytes() / 8.0 * scale;
    let meas_comm_moc = bd_moc.alpha_beta.total_net_bytes() / 8.0 * scale;
    // DDI_ACC moves 2× the payload; the model's words count payloads, so
    // fold that in when comparing get+acc mixes? The Table 1 DGEMM count
    // (3 Nci Nα) already includes the 2× for the accumulate — our byte
    // counters do too, so the numbers are directly comparable.

    println!("Table 1 — α-β routine performance model (model vs measured)");
    println!(
        "system: {} (Nci={nci:.3e}, n={n}, Nα={na}, Nβ={nb}), measured at P={p}\n",
        sys.name
    );
    let w = [26usize, 16, 16, 10];
    println!(
        "{}",
        row(
            &[
                "quantity".into(),
                "model".into(),
                "measured".into(),
                "meas/mod".into()
            ],
            &w
        )
    );
    for (name, m, meas) in [
        ("MOC ops (flops)", pm.moc_ops(), meas_ops_moc),
        ("DGEMM ops (flops)", pm.dgemm_ops(), meas_ops_dg),
        ("MOC comm (words)", 2.0 * pm.moc_comm_words(), meas_comm_moc),
        ("DGEMM comm (words)", pm.dgemm_comm_words(), meas_comm_dg),
    ] {
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    format!("{m:.3e}"),
                    format!("{meas:.3e}"),
                    format!("{:.2}", meas / m)
                ],
                &w
            )
        );
    }
    println!(
        "\ncommunication ratio MOC/DGEMM: model {:.1}×, measured {:.1}×",
        2.0 * pm.moc_comm_words() / pm.dgemm_comm_words(),
        meas_comm_moc / meas_comm_dg
    );
    println!("(MOC comm is modelled at 2× Nci·Nα·(n−Nα) words because our MOC");
    println!(" mixed-spin routine pushes updates with DDI_ACC, which moves 2× the");
    println!(" payload — the paper's collective-gather variant moves 1×.)");
    println!("\nkernels: MOC = indexed multiply-add (DAXPY class, ~2 GF/s/MSP)");
    println!("         DGEMM = dense multiply (~10-11 GF/s/MSP beyond 300x300)");
}
