//! Serving-layer throughput: cold vs cache-warm vs batched execution of
//! a same-space workload, emitting `results/BENCH_serve_throughput.json`.
//!
//! Three arms run the same job set through `fci-serve`:
//!
//! * **cold** — artifact cache disabled, batching off: every job pays
//!   the integral build, the G/V assembly, and the string-table
//!   generation from scratch (the one-job-per-process baseline);
//! * **warm** — cache on, batching off: the first job builds, the rest
//!   reuse the shared `Arc`s and pay only the solve;
//! * **batched** — cache on, batching on: same-space jobs coalesce into
//!   block solves on top of the warm cache.
//!
//! All arms use one worker so the comparison isolates shared-state reuse
//! from thread-level parallelism. Host times come from the server's
//! tracer clock (`ServeSummary`), not from wall-clock reads here.
//!
//! `--quick` shrinks the workload for CI, writes the same document to
//! `results/BENCH_serve_throughput_quick.json` (consumed by
//! `fcix-bench-diff`), and exits 1 if the warm arm is not at least 2×
//! the cold arm — the serving layer's reason to exist.

use fci_obs::JsonValue;
use fci_serve::{serve, JobSpec, ProblemSpec, ServeConfig, ServeSummary};

/// `n_jobs` ground-state jobs over one shared determinant space. The
/// sector is spin-polarized (`n_elec` alpha, 0 beta): the string-table
/// count then equals the sector dimension, so the space build — the
/// shared artifact the cache amortizes — dominates each short solve.
fn workload(
    n_jobs: usize,
    n_orb: usize,
    n_elec: usize,
    max_iter: usize,
    batchable: bool,
) -> Vec<JobSpec> {
    (0..n_jobs)
        .map(|i| {
            let mut j = JobSpec::new(
                format!("job-{i}"),
                ProblemSpec::Hubbard {
                    sites: n_orb,
                    t: 1.0,
                    u: 4.0,
                    periodic: false,
                },
                n_elec,
                0,
            );
            j.tenant = format!("tenant-{}", i % 4);
            j.max_iter = max_iter;
            j.tol = 1e-6;
            j.batchable = batchable;
            j
        })
        .collect()
}

fn run_arm(jobs: Vec<JobSpec>, cache_budget: usize, batching: bool) -> ServeSummary {
    let cfg = ServeConfig {
        workers: 1,
        cache_budget,
        batching,
        ..ServeConfig::default()
    };
    let report = serve(cfg, jobs);
    assert_eq!(
        report.summary.jobs_done,
        report.results.len(),
        "bench workload must complete"
    );
    report.summary
}

/// Best throughput over `reps` repetitions (first rep warms the page
/// cache and code paths; jitter on shared runners only ever slows runs).
fn best_of(reps: usize, mut arm: impl FnMut() -> ServeSummary) -> ServeSummary {
    let mut best: Option<ServeSummary> = None;
    for _ in 0..reps {
        let s = arm();
        if best
            .as_ref()
            .map(|b| s.jobs_per_sec > b.jobs_per_sec)
            .unwrap_or(true)
        {
            best = Some(s);
        }
    }
    best.unwrap_or_default()
}

fn summary_json(s: &ServeSummary) -> JsonValue {
    s.to_json()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut params = if quick {
        [8, 14, 5, 2, 2]
    } else {
        [16, 16, 6, 2, 3]
    };
    for (slot, v) in args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .zip(&mut params)
    {
        *v = slot.parse().unwrap_or(*v);
    }
    let [n_jobs, n_orb, n_elec, max_iter, reps] = params;

    println!(
        "serve_throughput: {n_jobs} jobs, {n_orb} orbitals ({n_elec}a0b), \
         max_iter {max_iter}"
    );
    let cold = best_of(reps, || {
        run_arm(workload(n_jobs, n_orb, n_elec, max_iter, false), 0, false)
    });
    println!("  cold    : {:7.2} jobs/s", cold.jobs_per_sec);
    let warm = best_of(reps, || {
        run_arm(
            workload(n_jobs, n_orb, n_elec, max_iter, false),
            256 << 20,
            false,
        )
    });
    println!(
        "  warm    : {:7.2} jobs/s  (cache hit rate {:.0}%)",
        warm.jobs_per_sec,
        100.0 * warm.cache.hit_rate()
    );
    let batched = best_of(reps, || {
        run_arm(
            workload(n_jobs, n_orb, n_elec, max_iter, true),
            256 << 20,
            true,
        )
    });
    println!(
        "  batched : {:7.2} jobs/s  ({} block solves)",
        batched.jobs_per_sec, batched.batches
    );

    let speedup_warm = warm.jobs_per_sec / cold.jobs_per_sec;
    let speedup_batched = batched.jobs_per_sec / cold.jobs_per_sec;
    println!("  warm/cold    = {speedup_warm:.2}x");
    println!("  batched/cold = {speedup_batched:.2}x");

    let doc = JsonValue::obj(vec![
        (
            "workload",
            JsonValue::obj(vec![
                ("n_jobs", JsonValue::Num(n_jobs as f64)),
                ("n_orb", JsonValue::Num(n_orb as f64)),
                ("n_alpha", JsonValue::Num(n_elec as f64)),
                ("n_beta", JsonValue::Num(0.0)),
                ("max_iter", JsonValue::Num(max_iter as f64)),
                ("workers", JsonValue::Num(1.0)),
                ("reps", JsonValue::Num(reps as f64)),
            ]),
        ),
        ("cold", summary_json(&cold)),
        ("warm", summary_json(&warm)),
        ("batched", summary_json(&batched)),
        ("speedup_warm_vs_cold", JsonValue::Num(speedup_warm)),
        ("speedup_batched_vs_cold", JsonValue::Num(speedup_batched)),
    ]);
    if quick {
        // Same doc shape as the full artifact, under a `_quick` name, so
        // `fcix-bench-diff` can gate the cache/batching speedup ratios —
        // both sides of each ratio come from this host, so the gate is
        // machine-tolerant.
        match fci_bench::write_bench_json("serve_throughput_quick", &doc) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                println!("FAIL: cannot write quick artifact: {e}");
                std::process::exit(1);
            }
        }
        if speedup_warm < 2.0 {
            println!("FAIL: cache-warm throughput {speedup_warm:.2}x cold, need >= 2x");
            std::process::exit(1);
        }
        println!("OK: cache-warm >= 2x cold");
        return;
    }
    match fci_bench::write_bench_json("serve_throughput", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => println!("WARNING: could not write artifact: {e}"),
    }
}
