//! **Ablation** — the I/O bottleneck that motivates the single-vector
//! diagonalizer (paper §2.2).
//!
//! "On most supercomputers, the I/O bandwidth is so limited that storing
//! the subspace vectors on disk implies a huge waste of computing
//! resources." This harness quantifies that trade on the simulated X1:
//! a Davidson run whose subspace is disk-resident pays, per iteration,
//! one write of the new expansion/σ pair plus a read of the whole stored
//! subspace (for the Ritz/residual assembly), at the measured X1 disk
//! rates (293 MB/s read, 246 MB/s write, Table 3). The auto-adjusted
//! single-vector method keeps O(1) vectors in memory and pays nothing.

use fci_bench::{fmt_s, row, table2_systems};
use fci_core::{solve, DiagMethod, FciOptions};
use fci_xsim::MachineModel;

fn main() {
    let sys = &table2_systems()[0]; // H2O analogue
    let model = MachineModel::cray_x1();
    println!("Ablation — disk-resident Davidson subspace vs single-vector method");
    println!("system: {}\n", sys.name);

    let w = [22usize, 8, 14, 16, 16, 14];
    println!(
        "{}",
        row(
            &[
                "method".into(),
                "iters".into(),
                "σ time [s]".into(),
                "disk I/O [s]".into(),
                "total [s]".into(),
                "mem vectors".into(),
            ],
            &w
        )
    );

    let vec_bytes = |dim: usize| (dim * 8) as f64;

    for (name, method, disk_subspace) in [
        ("Davidson (in-core)", DiagMethod::Davidson, false),
        ("Davidson (disk)", DiagMethod::Davidson, true),
        ("AutoAdjust", DiagMethod::AutoAdjust, false),
    ] {
        let opts = FciOptions {
            method,
            ..Default::default()
        };
        let r = solve(&sys.mo, sys.na, sys.nb, sys.state_irrep, &opts);
        let sigma_t = r.sigma_cost.total().elapsed();
        // Disk model: iteration k stores basis+σ vectors (2 per iter,
        // within the subspace cap) and re-reads the whole current
        // subspace each iteration.
        let mut io_t = 0.0;
        let mem_vectors;
        if disk_subspace {
            let cap = opts.diag.max_subspace;
            for k in 1..=r.iterations {
                let stored = 2 * k.min(cap);
                io_t += 2.0 * vec_bytes(r.dim) / model.disk_write; // write b_k, σ_k
                io_t += stored as f64 * vec_bytes(r.dim) / model.disk_read;
            }
            mem_vectors = "2 (+disk)".to_string();
        } else if method == DiagMethod::Davidson {
            mem_vectors = format!("{}", 2 * opts.diag.max_subspace);
        } else {
            mem_vectors = "4".to_string();
        }
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    format!("{}", r.iterations),
                    fmt_s(sigma_t),
                    fmt_s(io_t),
                    fmt_s(sigma_t + io_t),
                    mem_vectors,
                ],
                &w
            )
        );
    }
    println!("\nreading: the disk-resident subspace multiplies wall-clock while the");
    println!("single-vector method gets subspace-free memory *without* the I/O tax —");
    println!("the §2.2 argument, quantified. (At the paper's 65e9-determinant scale");
    println!("one vector is 520 GB; a 12-vector subspace would be 6.2 TB on disk,");
    println!("~7 hours of I/O per iteration at the X1's measured 250 MB/s.)");
}
