//! Sparse-engine sweep: accuracy against the dense DGEMM engine on a
//! shared space, selection-space growth curves, and a bounded-memory
//! solve whose *formal* dimension exceeds 10⁸ — the regime the dense
//! vector representation cannot enter at all. Emits
//! `results/BENCH_sparse_sweep.json`.
//!
//! Modes:
//!
//! * (default) full sweep —
//!   1. **accuracy**: 10-site half-filled Hubbard chain (63,504
//!      determinants): dense Davidson vs CDFCI vs selected CI, recording
//!      each engine's error in mHa (gate: ≤ 1.6 mHa) plus support and
//!      wall time;
//!   2. **growth**: 12-site chain (853,776 determinants): selected CI at
//!      a ladder of thresholds ε, recording the per-round selected-space
//!      growth and energy convergence;
//!   3. **scale**: 16-site half-filled chain — formal dimension
//!      C(16,8)² = 165,636,900 ≥ 10⁸ — solved by CDFCI under a hard
//!      500k-determinant store bound, with the support growth curve and
//!      peak store bytes as the bounded-memory evidence.
//! * `--quick` — CI smoke: the 8-site chain (4,900 determinants), both
//!   sparse engines vs the dense reference, writes
//!   `results/BENCH_sparse_sweep_quick.json` for `fcix-bench-diff`, and
//!   **exits 1** if either engine misses the dense energy by more than
//!   1.6 mHa.

use fci_core::{DetSpace, DiagMethod, FciOptions, Hamiltonian};
use fci_obs::JsonValue;
use fci_serve::ProblemSpec;
use fci_sparse::{solve_cdfci, solve_selected, SparseOptions, SparseResult};
use std::time::Instant;

/// The accuracy gate: both sparse engines must land within 1.6 mHa of
/// the dense FCI energy on a shared space.
const GATE_MHA: f64 = 1.6;

/// Open half-filled Hubbard chain (t = 1, U = 4) as (space, Hamiltonian).
fn hubbard_chain(sites: usize) -> (DetSpace, Hamiltonian) {
    let mo = ProblemSpec::Hubbard {
        sites,
        t: 1.0,
        u: 4.0,
        periodic: false,
    }
    .build();
    let ham = Hamiltonian::new(&mo);
    let space = DetSpace::for_hamiltonian(&ham, sites / 2, sites / 2, 0);
    (space, ham)
}

/// Dense-engine reference energy (Davidson — lattice diagonals are
/// degenerate) and its wall time.
fn dense_reference(sites: usize) -> (f64, f64) {
    let mo = ProblemSpec::Hubbard {
        sites,
        t: 1.0,
        u: 4.0,
        periodic: false,
    }
    .build();
    let opts = FciOptions {
        method: DiagMethod::Davidson,
        ..FciOptions::default()
    };
    // lint: allow(wallclock) — the sweep measures real host time
    let t0 = Instant::now();
    let res = fci_core::solve(&mo, sites / 2, sites / 2, 0, &opts);
    (res.energy, t0.elapsed().as_secs_f64())
}

fn timed(f: impl FnOnce() -> SparseResult) -> (SparseResult, f64) {
    // lint: allow(wallclock) — the sweep measures real host time
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

fn history_json(r: &SparseResult) -> JsonValue {
    JsonValue::Arr(
        r.history
            .iter()
            .map(|s| {
                JsonValue::obj(vec![
                    ("sweep", JsonValue::Num(s.sweep as f64)),
                    ("support", JsonValue::Num(s.support as f64)),
                    ("energy", JsonValue::Num(s.energy)),
                ])
            })
            .collect(),
    )
}

fn quick_smoke() -> i32 {
    let sites = 8;
    let (space, ham) = hubbard_chain(sites);
    let (e_dense, t_dense) = dense_reference(sites);
    let (cd, t_cd) = timed(|| {
        solve_cdfci(
            &space,
            &ham,
            &SparseOptions {
                tol: 1e-10,
                ..SparseOptions::default()
            },
        )
    });
    let (sel, t_sel) = timed(|| {
        solve_selected(
            &space,
            &ham,
            &SparseOptions {
                eps: 1e-4,
                tol: 1e-9,
                ..SparseOptions::default()
            },
        )
    });
    let cd_mha = (cd.energy() - e_dense).abs() * 1e3;
    let sel_mha = (sel.energy() - e_dense).abs() * 1e3;
    let support_fraction = sel.support as f64 / space.sector_dim() as f64;
    println!(
        "quick {sites}-site chain ({} dets): dense {e_dense:.8} ({t_dense:.2}s)",
        space.sector_dim()
    );
    println!(
        "  cdfci    {:.8}  err {cd_mha:.4} mHa  support {}  ({t_cd:.2}s)",
        cd.energy(),
        cd.support
    );
    println!(
        "  selected {:.8}  err {sel_mha:.4} mHa  support {} ({:.0}% of sector)  ({t_sel:.2}s)",
        sel.energy(),
        sel.support,
        100.0 * support_fraction
    );
    let doc = JsonValue::obj(vec![
        ("mode", JsonValue::Str("quick".into())),
        ("sites", JsonValue::Num(sites as f64)),
        ("sector_dim", JsonValue::Num(space.sector_dim() as f64)),
        ("dense_energy", JsonValue::Num(e_dense)),
        ("cdfci_err_mha", JsonValue::Num(cd_mha)),
        ("selected_err_mha", JsonValue::Num(sel_mha)),
        (
            "selected_support_fraction",
            JsonValue::Num(support_fraction),
        ),
    ]);
    match fci_bench::write_bench_json("sparse_sweep_quick", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            println!("FAIL: cannot write quick artifact: {e}");
            return 1;
        }
    }
    if cd_mha > GATE_MHA || sel_mha > GATE_MHA {
        println!("FAIL: sparse engine misses dense FCI by more than {GATE_MHA} mHa");
        return 1;
    }
    println!("OK: both sparse engines within {GATE_MHA} mHa of dense FCI");
    0
}

fn full_sweep() {
    // ── 1. Accuracy on a shared space ────────────────────────────────
    let sites = 10;
    let (space, ham) = hubbard_chain(sites);
    let (e_dense, t_dense) = dense_reference(sites);
    println!(
        "accuracy: {sites}-site chain, {} determinants, dense E = {e_dense:.9} ({t_dense:.2}s)",
        space.sector_dim()
    );
    let (cd, t_cd) = timed(|| {
        solve_cdfci(
            &space,
            &ham,
            &SparseOptions {
                threads: 4,
                tol: 1e-11,
                max_updates: 4_000_000,
                ..SparseOptions::default()
            },
        )
    });
    let (sel, t_sel) = timed(|| {
        solve_selected(
            &space,
            &ham,
            &SparseOptions {
                eps: 1e-5,
                tol: 1e-10,
                ..SparseOptions::default()
            },
        )
    });
    let cd_mha = (cd.energy() - e_dense).abs() * 1e3;
    let sel_mha = (sel.energy() - e_dense).abs() * 1e3;
    println!(
        "  cdfci    err {cd_mha:.5} mHa  support {:>6}  {t_cd:.2}s",
        cd.support
    );
    println!(
        "  selected err {sel_mha:.5} mHa  support {:>6}  {t_sel:.2}s",
        sel.support
    );
    let gate_ok = cd_mha <= GATE_MHA && sel_mha <= GATE_MHA;
    let accuracy = JsonValue::obj(vec![
        ("sites", JsonValue::Num(sites as f64)),
        ("sector_dim", JsonValue::Num(space.sector_dim() as f64)),
        ("dense_energy", JsonValue::Num(e_dense)),
        ("dense_secs", JsonValue::Num(t_dense)),
        ("cdfci_energy", JsonValue::Num(cd.energy())),
        ("cdfci_err_mha", JsonValue::Num(cd_mha)),
        ("cdfci_support", JsonValue::Num(cd.support as f64)),
        ("cdfci_secs", JsonValue::Num(t_cd)),
        ("selected_energy", JsonValue::Num(sel.energy())),
        ("selected_err_mha", JsonValue::Num(sel_mha)),
        ("selected_support", JsonValue::Num(sel.support as f64)),
        ("selected_secs", JsonValue::Num(t_sel)),
        ("gate_mha", JsonValue::Num(GATE_MHA)),
        ("gate_ok", JsonValue::Bool(gate_ok)),
    ]);

    // ── 2. Selection-space growth vs ε ───────────────────────────────
    let sites = 12;
    let (space, ham) = hubbard_chain(sites);
    println!(
        "\ngrowth: {sites}-site chain, {} determinants, selected CI vs ε:",
        space.sector_dim()
    );
    let mut growth_rows = Vec::new();
    for eps in [3e-3, 1e-3, 3e-4] {
        let (r, secs) = timed(|| {
            solve_selected(
                &space,
                &ham,
                &SparseOptions {
                    threads: 4,
                    eps,
                    tol: 1e-9,
                    max_outer: 12,
                    ..SparseOptions::default()
                },
            )
        });
        println!(
            "  eps {eps:>7.0e}: E {:.9}  support {:>7} ({:.2}% of sector)  rounds {}  {secs:.2}s",
            r.energy(),
            r.support,
            100.0 * r.support as f64 / space.sector_dim() as f64,
            r.history.len()
        );
        growth_rows.push(JsonValue::obj(vec![
            ("eps", JsonValue::Num(eps)),
            ("energy", JsonValue::Num(r.energy())),
            ("support", JsonValue::Num(r.support as f64)),
            ("secs", JsonValue::Num(secs)),
            ("rounds", history_json(&r)),
        ]));
    }

    // ── 3. Bounded-memory solve beyond 10⁸ formal determinants ──────
    let sites = 16;
    let (space, ham) = hubbard_chain(sites);
    let formal = space.alpha.len() as f64 * space.beta.len() as f64;
    println!("\nscale: {sites}-site chain, formal dimension {formal:.3e} (≥ 1e8), CDFCI:");
    let (big, t_big) = timed(|| {
        solve_cdfci(
            &space,
            &ham,
            &SparseOptions {
                threads: 4,
                max_store: 500_000,
                max_updates: 120_000,
                tol: 1e-9,
                ..SparseOptions::default()
            },
        )
    });
    println!(
        "  E {:.9}  support {} of {formal:.3e}  peak {} MiB  dropped {}  {t_big:.1}s",
        big.energy(),
        big.support,
        big.peak_bytes >> 20,
        big.dropped
    );
    assert!(formal >= 1e8, "scale system must exceed 1e8 determinants");
    let scale = JsonValue::obj(vec![
        ("sites", JsonValue::Num(sites as f64)),
        ("formal_dim", JsonValue::Num(formal)),
        ("energy", JsonValue::Num(big.energy())),
        ("support", JsonValue::Num(big.support as f64)),
        ("peak_bytes", JsonValue::Num(big.peak_bytes as f64)),
        ("dropped", JsonValue::Num(big.dropped as f64)),
        ("updates", JsonValue::Num(big.iterations as f64)),
        ("secs", JsonValue::Num(t_big)),
        ("growth", history_json(&big)),
    ]);

    let doc = JsonValue::obj(vec![
        ("bench", JsonValue::Str("sparse_sweep".into())),
        ("accuracy", accuracy),
        ("growth", JsonValue::Arr(growth_rows)),
        ("scale", scale),
    ]);
    match fci_bench::write_bench_json("sparse_sweep", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => println!("WARNING: could not write artifact: {e}"),
    }
    if !gate_ok {
        println!("FAIL: accuracy gate ({GATE_MHA} mHa) violated");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--quick") {
        std::process::exit(quick_smoke());
    }
    full_sweep();
}
