//! GEMM engine sweep: naive vs seed-kernel vs blocked vs threaded,
//! sizes 32..1024, emitting `results/BENCH_gemm_sweep.json`.
//!
//! Modes:
//!
//! * (default) full sweep — measures all six kernels per size (naive
//!   capped at 512³): the four historical engines plus `prepacked`
//!   (threaded, A packed once outside the timing loop — the σ kernels'
//!   steady state with a persistent [`PackedA`]) and `f32pack` (serial
//!   packed path with f32 operand panels and f64 accumulation); records
//!   GF/s per kernel and the 512³ speedups over the seed kernel, writes
//!   the JSON artifact;
//! * `--quick` — CI smoke: times seed, blocked (1 thread) and threaded
//!   (auto) at 512³ only, writes the machine-tolerant speedup ratios to
//!   `results/BENCH_gemm_sweep_quick.json` for `fcix-bench-diff`, and
//!   **exits 1** if the threaded kernel is more than 25 % slower than
//!   the serial blocked one (threading must never cost throughput, even
//!   on a 1-core runner where both paths coincide);
//! * `--autotune` — prints the small-path/packed-path crossover table
//!   that justifies the `SMALL_FLOPS` constant in
//!   `crates/linalg/src/gemm.rs`.
//!
//! The "seed" bar is a faithful replica of the pre-engine serial 4×4
//! kernel (per-call `vec![]` packing, no NC loop, no threads, no small
//! path) so the before/after speedup is measured, not remembered.

use fci_linalg::{
    dgemm_naive, dgemm_path, dgemm_prepacked, dgemm_with_threads, gemm_threads, GemmPath, Matrix,
    PackedA, Trans,
};
use fci_obs::JsonValue;
use std::hint::black_box;
use std::time::Instant;

/// Replica of the seed kernel this PR replaced: serial, 4×4 microkernel,
/// MC×KC blocking only, `vec![]` packing buffers on every call.
mod seed {
    use fci_linalg::Matrix;

    const MR: usize = 4;
    const NR: usize = 4;
    const MC: usize = 128;
    const KC: usize = 256;

    /// `C := A·B` (the sweep only needs the untransposed case).
    pub fn dgemm(a: &Matrix, b: &Matrix, c: &mut Matrix) {
        let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
        c.fill_zero();
        // Deliberate replica of the seed's per-call allocations.
        // lint: allow(alloc) — ablation baseline reproduces the seed's per-call alloc
        let mut apack = vec![0.0; MC * KC];
        // lint: allow(alloc) — ablation baseline reproduces the seed's per-call alloc
        let mut bpack = vec![0.0; KC * n.div_ceil(NR) * NR];
        let mut l0 = 0;
        while l0 < k {
            let kc = KC.min(k - l0);
            for q in 0..n.div_ceil(NR) {
                let smax = NR.min(n - q * NR);
                for l in 0..kc {
                    for s in 0..NR {
                        bpack[q * (KC * NR) + l * NR + s] = if s < smax {
                            b[(l0 + l, q * NR + s)]
                        } else {
                            0.0
                        };
                    }
                }
            }
            let mut i0 = 0;
            while i0 < m {
                let mc = MC.min(m - i0);
                for p in 0..mc.div_ceil(MR) {
                    let rmax = MR.min(mc - p * MR);
                    for l in 0..kc {
                        for r in 0..MR {
                            apack[p * (KC * MR) + l * MR + r] = if r < rmax {
                                a[(i0 + p * MR + r, l0 + l)]
                            } else {
                                0.0
                            };
                        }
                    }
                }
                for q in 0..n.div_ceil(NR) {
                    let jr = q * NR;
                    let nr = NR.min(n - jr);
                    let bt = &bpack[q * (KC * NR)..][..kc * NR];
                    let mut ir = 0;
                    while ir < mc {
                        let mr = MR.min(mc - ir);
                        let at = &apack[(ir / MR) * (KC * MR)..][..kc * MR];
                        micro(kc, at, bt, c, i0 + ir, jr, mr, nr);
                        ir += MR;
                    }
                }
                i0 += MC;
            }
            l0 += KC;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn micro(
        kc: usize,
        at: &[f64],
        bt: &[f64],
        c: &mut Matrix,
        i0: usize,
        j0: usize,
        mr: usize,
        nr: usize,
    ) {
        let mut acc = [[0.0f64; NR]; MR];
        for l in 0..kc {
            for r in 0..mr {
                let av = at[l * MR + r];
                for s in 0..nr {
                    acc[r][s] += av * bt[l * NR + s];
                }
            }
        }
        for s in 0..nr {
            for r in 0..mr {
                c[(i0 + r, j0 + s)] += acc[r][s];
            }
        }
    }
}

fn rand_mat(nr: usize, nc: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    Matrix::from_fn(nr, nc, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    })
}

/// Minimum wall time of `reps` runs (plus one warm-up).
fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    black_box(&mut f)();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        // lint: allow(wallclock) — the sweep measures real host time
        let t0 = Instant::now();
        black_box(&mut f)();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Repetitions targeting ~0.5 s of measurement per kernel/size.
fn reps_for(flops: f64) -> usize {
    ((5e8 / flops) as usize).clamp(3, 40)
}

fn gflops(n: usize, secs: f64) -> f64 {
    2.0 * (n as f64).powi(3) / secs / 1e9
}

fn quick_smoke() -> i32 {
    let n = 512;
    let a = rand_mat(n, n, 1);
    let b = rand_mat(n, n, 2);
    let mut c = Matrix::zeros(n, n);
    let threads = gemm_threads();
    let t_seed = time_min(3, || seed::dgemm(&a, &b, &mut c));
    let t_blocked = time_min(3, || {
        dgemm_path(
            GemmPath::Packed,
            1,
            Trans::No,
            Trans::No,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
        )
    });
    let t_threaded = time_min(3, || {
        dgemm_with_threads(threads, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c)
    });
    println!(
        "quick 512³: seed {:.2} GF/s, blocked(T=1) {:.2} GF/s, threaded(T={threads}) {:.2} GF/s",
        gflops(n, t_seed),
        gflops(n, t_blocked),
        gflops(n, t_threaded)
    );
    // Machine-tolerant ratios for the CI regression gate: both sides of
    // each ratio come from the same host in the same run, so a slow
    // runner cancels out and only a code regression moves them.
    let doc = JsonValue::obj(vec![
        ("mode", JsonValue::Str("quick".into())),
        ("n", JsonValue::Num(n as f64)),
        ("threads", JsonValue::Num(threads as f64)),
        ("seed_gflops", JsonValue::Num(gflops(n, t_seed))),
        ("blocked_gflops", JsonValue::Num(gflops(n, t_blocked))),
        ("threaded_gflops", JsonValue::Num(gflops(n, t_threaded))),
        ("blocked_over_seed", JsonValue::Num(t_seed / t_blocked)),
        (
            "threaded_over_blocked",
            JsonValue::Num(t_blocked / t_threaded),
        ),
    ]);
    match fci_bench::write_bench_json("gemm_sweep_quick", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            println!("FAIL: cannot write quick artifact: {e}");
            return 1;
        }
    }
    if t_threaded > 1.25 * t_blocked {
        println!(
            "FAIL: threaded kernel slower than serial blocked \
             ({t_threaded:.4} s vs {t_blocked:.4} s)"
        );
        return 1;
    }
    println!("OK: threaded kernel not slower than serial blocked");
    0
}

fn autotune() {
    println!("small-path vs packed-path crossover (cube sizes):");
    println!(
        "{:>5} {:>12} {:>12} {:>10}",
        "n", "small GF/s", "packed GF/s", "winner"
    );
    let mut crossover = None;
    for n in [8usize, 16, 24, 32, 40, 48, 56, 64, 80, 96] {
        let a = rand_mat(n, n, 1);
        let b = rand_mat(n, n, 2);
        let mut c = Matrix::zeros(n, n);
        let reps = reps_for(2.0 * (n as f64).powi(3)).clamp(50, 2000);
        let t_small = time_min(reps, || {
            dgemm_path(
                GemmPath::Small,
                1,
                Trans::No,
                Trans::No,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
            )
        });
        let t_packed = time_min(reps, || {
            dgemm_path(
                GemmPath::Packed,
                1,
                Trans::No,
                Trans::No,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
            )
        });
        let winner = if t_small <= t_packed {
            "small"
        } else {
            "packed"
        };
        if winner == "packed" && crossover.is_none() {
            crossover = Some(n);
        }
        println!(
            "{n:>5} {:>12.2} {:>12.2} {winner:>10}",
            gflops(n, t_small),
            gflops(n, t_packed)
        );
    }
    match crossover {
        Some(n) => println!("packed path first wins at n = {n} (SMALL_FLOPS ≈ 2·{n}³)"),
        None => println!("small path won every probed size; SMALL_FLOPS is conservative"),
    }
}

fn full_sweep() {
    let threads = gemm_threads();
    let sizes = [32usize, 64, 96, 128, 192, 256, 384, 512, 768, 1024];
    println!("gemm sweep (threads = {threads}):");
    println!(
        "{:>6} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "n", "naive", "seed", "blocked", "threaded", "prepacked", "f32pack"
    );
    let mut rows = Vec::new();
    let mut seed_512 = 0.0;
    let mut blocked_512 = 0.0;
    let mut threaded_512 = 0.0;
    let mut prepacked_512 = 0.0;
    for &n in &sizes {
        let flops = 2.0 * (n as f64).powi(3);
        let reps = reps_for(flops);
        let a = rand_mat(n, n, n as u64);
        let b = rand_mat(n, n, 2 * n as u64);
        let mut c = Matrix::zeros(n, n);
        let t_naive = if n <= 512 {
            Some(time_min(reps.min(5), || {
                dgemm_naive(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c)
            }))
        } else {
            None // O(n³) scalar loop past 512 adds minutes, not information
        };
        let t_seed = time_min(reps, || seed::dgemm(&a, &b, &mut c));
        let t_blocked = time_min(reps, || {
            dgemm_path(
                GemmPath::Packed,
                1,
                Trans::No,
                Trans::No,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
            )
        });
        let t_threaded = time_min(reps, || {
            dgemm_with_threads(threads, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c)
        });
        // Steady state of a persistent packed operand: A packed once,
        // every timed call reuses the panels (the σ-kernel scenario).
        let pa = PackedA::pack(Trans::No, &a);
        let t_prepacked = time_min(reps, || {
            dgemm_prepacked(threads, 1.0, &pa, Trans::No, &b, 0.0, &mut c)
        });
        let t_f32 = time_min(reps, || {
            dgemm_path(
                GemmPath::PackedF32,
                1,
                Trans::No,
                Trans::No,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
            )
        });
        let g_naive = t_naive.map(|t| gflops(n, t));
        let (g_seed, g_blocked, g_threaded, g_prepacked, g_f32) = (
            gflops(n, t_seed),
            gflops(n, t_blocked),
            gflops(n, t_threaded),
            gflops(n, t_prepacked),
            gflops(n, t_f32),
        );
        if n == 512 {
            seed_512 = t_seed;
            blocked_512 = t_blocked;
            threaded_512 = t_threaded;
            prepacked_512 = t_prepacked;
        }
        println!(
            "{n:>6} {:>11} {g_seed:>11.2} {g_blocked:>11.2} {g_threaded:>11.2} \
             {g_prepacked:>11.2} {g_f32:>11.2}",
            g_naive.map_or("-".to_string(), |g| format!("{g:.2}")),
        );
        rows.push(JsonValue::obj(vec![
            ("n", JsonValue::Num(n as f64)),
            (
                "naive_gflops",
                g_naive.map_or(JsonValue::Null, JsonValue::Num),
            ),
            ("seed_gflops", JsonValue::Num(g_seed)),
            ("blocked_gflops", JsonValue::Num(g_blocked)),
            ("threaded_gflops", JsonValue::Num(g_threaded)),
            ("prepacked_gflops", JsonValue::Num(g_prepacked)),
            ("f32_gflops", JsonValue::Num(g_f32)),
        ]));
    }
    let speedup_blocked = seed_512 / blocked_512;
    let speedup_threaded = seed_512 / threaded_512;
    let prepacked_gain = threaded_512 / prepacked_512;
    println!(
        "512³ speedup over seed kernel: blocked {speedup_blocked:.2}×, \
         threaded {speedup_threaded:.2}× (T = {threads}); \
         persistent pack over threaded: {prepacked_gain:.2}×"
    );
    let doc = JsonValue::obj(vec![
        ("bench", JsonValue::Str("gemm_sweep".to_string())),
        ("threads", JsonValue::Num(threads as f64)),
        ("sizes", JsonValue::Arr(rows)),
        (
            "speedup_512_blocked_vs_seed",
            JsonValue::Num(speedup_blocked),
        ),
        (
            "speedup_512_threaded_vs_seed",
            JsonValue::Num(speedup_threaded),
        ),
        (
            "prepacked_over_threaded_512",
            JsonValue::Num(prepacked_gain),
        ),
    ]);
    match fci_bench::write_bench_json("gemm_sweep", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => println!("WARNING: could not write artifact: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--quick") {
        std::process::exit(quick_smoke());
    }
    if args.iter().any(|a| a == "--autotune") {
        autotune();
        return;
    }
    full_sweep();
}
