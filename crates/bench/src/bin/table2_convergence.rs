//! **Table 2** — iterations required by the four diagonalization methods.
//!
//! Paper: Davidson subspace vs Olsen vs modified Olsen (λ = 0.7) vs the
//! automatically adjusted single-vector method, on H3COH, H2O2, CN⁺ and
//! the O atom, converged to a 1e-10-class criterion. Plain Olsen fails to
//! converge tightly ("NC"); λ = 0.7 fixes some cases but not CN⁺; the
//! auto-adjusted method matches or beats the subspace method.
//!
//! Here: the same four methods on the scaled-down analogues (see
//! `fci-bench` docs). Prints iterations (σ evaluations) per method plus
//! the converged energies.

use fci_bench::{row, table2_systems};
use fci_core::{solve, DiagMethod, DiagOptions, FciOptions};

fn main() {
    println!("Table 2 — diagonalization method comparison (analogue systems)");
    println!("convergence: residual 2-norm < 1e-5 (the paper's criterion); NC = not converged in 60 iterations\n");
    let widths = [18usize, 6, 10, 10, 9, 10, 7, 12, 6, 16];
    println!(
        "{}",
        row(
            &[
                "system".into(),
                "group".into(),
                "dim".into(),
                "sector".into(),
                "Davidson".into(),
                "2-vector".into(),
                "Olsen".into(),
                "Ol(0.7)".into(),
                "Auto".into(),
                "E(FCI) [Eh]".into(),
            ],
            &widths
        )
    );

    for sys in table2_systems() {
        let space = sys.space();
        let mut cells = vec![
            sys.name.clone(),
            sys.group.clone(),
            format!("{}", space.dim()),
            format!("{}", space.sector_dim()),
        ];
        let mut energy = f64::NAN;
        for method in [
            DiagMethod::Davidson,
            DiagMethod::TwoVector,
            DiagMethod::Olsen,
            DiagMethod::OlsenDamped,
            DiagMethod::AutoAdjust,
        ] {
            let opts = FciOptions {
                method,
                diag: DiagOptions {
                    max_iter: 60,
                    tol: 1e-5,
                    ..Default::default()
                },
                ..Default::default()
            };
            let r = solve(&sys.mo, sys.na, sys.nb, sys.state_irrep, &opts);
            cells.push(if r.converged {
                format!("{}", r.iterations)
            } else {
                "NC".into()
            });
            if r.converged {
                energy = r.energy;
            }
        }
        cells.push(format!("{energy:.8}"));
        println!("{}", row(&cells, &widths));
        if let Some(e_scf) = sys.e_scf {
            println!(
                "    (RHF = {e_scf:.8} Eh, correlation = {:.6} Eh)",
                energy - e_scf
            );
        }
    }
    println!("\n(\"2-vector\" is the paper's Table 2 \"Davidson\" comparator: the exact 2x2");
    println!("subspace of {{C, t}} with H*t stored — the memory doubling the auto method avoids.)");
    println!("\npaper's qualitative claims to check against the table above:");
    println!("  * plain Olsen struggles/fails on the multireference case (CN+)");
    println!("  * the auto-adjusted method converges everywhere, with no subspace storage");
    println!("  * auto-adjusted iteration counts <= Davidson subspace counts (or close)");
}
