//! **Ablation** — diagonalizer design choices:
//!
//! 1. model-space preconditioner size (the paper's convergence aid) on the
//!    multireference CN⁺ analogue;
//! 2. fixed-λ sweep vs the automatically adjusted λ (eqs. 13–15);
//! 3. Davidson subspace cap (memory) vs iteration count.

use fci_bench::{row, table2_systems};
use fci_core::{solve, DiagMethod, DiagOptions, FciOptions};

fn main() {
    let systems = table2_systems();
    let cn = &systems[2]; // CN+ analogue
    let h2o = &systems[0];

    println!("Ablation 1 — model-space size (CN+ analogue, AutoAdjust, residual 1e-5)\n");
    let w = [14usize, 12, 12, 16];
    println!(
        "{}",
        row(
            &[
                "model space".into(),
                "iters".into(),
                "converged".into(),
                "E [Eh]".into()
            ],
            &w
        )
    );
    for ms in [0usize, 5, 20, 50] {
        let opts = FciOptions {
            method: DiagMethod::AutoAdjust,
            diag: DiagOptions {
                model_space: ms,
                tol: 1e-5,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = solve(&cn.mo, cn.na, cn.nb, cn.state_irrep, &opts);
        println!(
            "{}",
            row(
                &[
                    format!("{ms}"),
                    format!("{}", r.iterations),
                    format!("{}", r.converged),
                    format!("{:.8}", r.energy)
                ],
                &w
            )
        );
    }

    println!("\nAblation 2 — fixed λ sweep vs auto-adjusted λ (CN+ analogue)\n");
    println!(
        "{}",
        row(
            &[
                "lambda".into(),
                "iters".into(),
                "converged".into(),
                "E [Eh]".into()
            ],
            &w
        )
    );
    for lam in [0.3f64, 0.5, 0.7, 0.9, 1.0] {
        let opts = FciOptions {
            method: DiagMethod::OlsenDamped,
            diag: DiagOptions {
                fixed_lambda: lam,
                tol: 1e-5,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = solve(&cn.mo, cn.na, cn.nb, cn.state_irrep, &opts);
        println!(
            "{}",
            row(
                &[
                    format!("{lam:.1}"),
                    format!("{}", r.iterations),
                    format!("{}", r.converged),
                    format!("{:.8}", r.energy)
                ],
                &w
            )
        );
    }
    {
        let opts = FciOptions {
            method: DiagMethod::AutoAdjust,
            diag: DiagOptions {
                tol: 1e-5,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = solve(&cn.mo, cn.na, cn.nb, cn.state_irrep, &opts);
        println!(
            "{}",
            row(
                &[
                    "auto".into(),
                    format!("{}", r.iterations),
                    format!("{}", r.converged),
                    format!("{:.8}", r.energy)
                ],
                &w
            )
        );
    }

    println!("\nAblation 3 — Davidson subspace cap (H2O analogue)\n");
    println!(
        "{}",
        row(
            &[
                "max subspace".into(),
                "iters".into(),
                "converged".into(),
                "E [Eh]".into()
            ],
            &w
        )
    );
    for cap in [3usize, 6, 12, 24] {
        let opts = FciOptions {
            method: DiagMethod::Davidson,
            diag: DiagOptions {
                max_subspace: cap,
                tol: 1e-5,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = solve(&h2o.mo, h2o.na, h2o.nb, h2o.state_irrep, &opts);
        println!(
            "{}",
            row(
                &[
                    format!("{cap}"),
                    format!("{}", r.iterations),
                    format!("{}", r.converged),
                    format!("{:.8}", r.energy)
                ],
                &w
            )
        );
    }
    println!("\nmemory note: Davidson stores (subspace × 2) CI-sized vectors; the");
    println!("auto-adjusted method stores O(1) — the paper's motivation for it.");
}
