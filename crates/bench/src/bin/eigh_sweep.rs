//! Eigensolver sweep: scalar vs blocked tridiagonal reduction plus the
//! Jacobi/tridiag crossover, emitting `results/BENCH_eigh_sweep.json`.
//!
//! Modes:
//!
//! * (default) full sweep — times `reduce_to_tridiag` with the scalar
//!   Numerical-Recipes `tred2` and with the panel-blocked compact-WY
//!   reduction at n = 64..512, records GF/s per path (nominal 4/3·n³
//!   flops) and the 512 speedup `blocked_over_scalar_512`, then prints
//!   the full-solver crossover table (`eigh_jacobi` vs `eigh_tridiag`)
//!   around `EIGH_JACOBI_CUTOFF` — the cutoff is a robustness choice
//!   (Jacobi is also the fallback when QL fails to converge), and the
//!   table documents what it costs on the current host;
//! * `--quick` — CI smoke: both reductions at n = 256 only, writes the
//!   machine-tolerant ratio to `results/BENCH_eigh_sweep_quick.json`
//!   for `fcix-bench-diff`, and **exits 1** if the blocked reduction is
//!   slower than the scalar one (blocking must never cost throughput at
//!   subspace-collapse sizes).

use fci_linalg::{
    eigh_jacobi, eigh_tridiag, reduce_to_tridiag, Matrix, TridiagPath, EIGH_JACOBI_CUTOFF,
};
use fci_obs::JsonValue;
use std::hint::black_box;
use std::time::Instant;

/// Random symmetric matrix with a mild diagonal shift (well-conditioned
/// but not special — the reduction cost is structure-independent).
fn rand_sym(n: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = next();
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
        a[(i, i)] += i as f64 * 0.01;
    }
    a
}

/// Minimum wall time of `reps` runs (plus one warm-up).
fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    black_box(&mut f)();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        // lint: allow(wallclock) — the sweep measures real host time
        let t0 = Instant::now();
        black_box(&mut f)();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Nominal reduction flop count: Householder tridiagonalization with the
/// accumulated orthogonal factor is ~4/3·n³.
fn gflops(n: usize, secs: f64) -> f64 {
    4.0 / 3.0 * (n as f64).powi(3) / secs / 1e9
}

fn reps_for(n: usize) -> usize {
    ((3e8 / (n as f64).powi(3)) as usize).clamp(3, 30)
}

fn quick_smoke() -> i32 {
    let n = 256;
    let a = rand_sym(n, 1);
    let t_scalar = time_min(3, || {
        black_box(reduce_to_tridiag(TridiagPath::Scalar, &a));
    });
    let t_blocked = time_min(3, || {
        black_box(reduce_to_tridiag(TridiagPath::Blocked, &a));
    });
    let ratio = t_scalar / t_blocked;
    println!(
        "quick {n}: scalar {:.2} GF/s, blocked {:.2} GF/s, blocked_over_scalar {ratio:.2}×",
        gflops(n, t_scalar),
        gflops(n, t_blocked)
    );
    // Both sides of the ratio come from the same host in the same run, so
    // a slow CI runner cancels out and only a code regression moves it.
    let doc = JsonValue::obj(vec![
        ("mode", JsonValue::Str("quick".into())),
        ("n", JsonValue::Num(n as f64)),
        ("scalar_gflops", JsonValue::Num(gflops(n, t_scalar))),
        ("blocked_gflops", JsonValue::Num(gflops(n, t_blocked))),
        ("blocked_over_scalar", JsonValue::Num(ratio)),
    ]);
    match fci_bench::write_bench_json("eigh_sweep_quick", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            println!("FAIL: cannot write quick artifact: {e}");
            return 1;
        }
    }
    if t_blocked > t_scalar {
        println!(
            "FAIL: blocked reduction slower than scalar ({t_blocked:.4} s vs {t_scalar:.4} s)"
        );
        return 1;
    }
    println!("OK: blocked reduction not slower than scalar");
    0
}

fn full_sweep() {
    let sizes = [64usize, 128, 192, 256, 384, 512];
    println!("tridiagonal reduction sweep (nominal 4/3·n³ flops):");
    println!(
        "{:>6} {:>13} {:>13} {:>9}",
        "n", "scalar GF/s", "blocked GF/s", "speedup"
    );
    let mut rows = Vec::new();
    let mut ratio_512 = 0.0;
    for &n in &sizes {
        let a = rand_sym(n, n as u64);
        let reps = reps_for(n);
        let t_scalar = time_min(reps, || {
            black_box(reduce_to_tridiag(TridiagPath::Scalar, &a));
        });
        let t_blocked = time_min(reps, || {
            black_box(reduce_to_tridiag(TridiagPath::Blocked, &a));
        });
        let ratio = t_scalar / t_blocked;
        if n == 512 {
            ratio_512 = ratio;
        }
        println!(
            "{n:>6} {:>13.2} {:>13.2} {ratio:>8.2}×",
            gflops(n, t_scalar),
            gflops(n, t_blocked)
        );
        rows.push(JsonValue::obj(vec![
            ("n", JsonValue::Num(n as f64)),
            ("scalar_gflops", JsonValue::Num(gflops(n, t_scalar))),
            ("blocked_gflops", JsonValue::Num(gflops(n, t_blocked))),
            ("blocked_over_scalar", JsonValue::Num(ratio)),
        ]));
    }
    println!("512 speedup blocked over scalar: {ratio_512:.2}×");

    // Full-solver crossover: cyclic Jacobi vs tridiag+QL around the
    // dispatch cutoff in `fci_linalg::eigh`.
    println!("\neigh crossover (cutoff = {EIGH_JACOBI_CUTOFF}):");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "n", "jacobi µs", "tridiag µs", "winner"
    );
    let mut cross_rows = Vec::new();
    for n in [8usize, 16, 24, 32, 48, 64] {
        let a = rand_sym(n, 1000 + n as u64);
        let reps = ((2e7 / (n as f64).powi(3)) as usize).clamp(10, 3000);
        let t_jacobi = time_min(reps, || {
            black_box(eigh_jacobi(&a));
        });
        let t_tridiag = time_min(reps, || {
            black_box(eigh_tridiag(&a));
        });
        let winner = if t_jacobi <= t_tridiag {
            "jacobi"
        } else {
            "tridiag"
        };
        println!(
            "{n:>6} {:>12.1} {:>12.1} {winner:>9}",
            t_jacobi * 1e6,
            t_tridiag * 1e6
        );
        cross_rows.push(JsonValue::obj(vec![
            ("n", JsonValue::Num(n as f64)),
            ("jacobi_us", JsonValue::Num(t_jacobi * 1e6)),
            ("tridiag_us", JsonValue::Num(t_tridiag * 1e6)),
            ("winner", JsonValue::Str(winner.into())),
        ]));
    }

    let doc = JsonValue::obj(vec![
        ("bench", JsonValue::Str("eigh_sweep".into())),
        ("sizes", JsonValue::Arr(rows)),
        ("blocked_over_scalar_512", JsonValue::Num(ratio_512)),
        ("jacobi_cutoff", JsonValue::Num(EIGH_JACOBI_CUTOFF as f64)),
        ("crossover", JsonValue::Arr(cross_rows)),
    ]);
    match fci_bench::write_bench_json("eigh_sweep", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => println!("WARNING: could not write artifact: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--quick") {
        std::process::exit(quick_smoke());
    }
    full_sweep();
}
