//! **Figure 4** — MOC vs DGEMM timing and scalability, 16–128 MSPs.
//!
//! Paper: O-atom FCI (aug-cc-pVQZ); the MOC same-spin routine "does not
//! scale at all" (replicated double-excitation list), while every
//! DGEMM-based routine scales; the DGEMM mixed-spin routine also cuts
//! communication ~25×.
//!
//! Here: the O-atom analogue; each configuration performs one real
//! σ = H·C evaluation on the simulated Cray-X1 and reports per-routine
//! simulated seconds, exactly the four curves of the figure.

use fci_bench::{fig4_system, fmt_bytes, row, write_bench_json};
use fci_core::{apply_sigma, DetSpace, Hamiltonian, PoolParams, SigmaCtx, SigmaMethod};
use fci_ddi::{Backend, Ddi};
use fci_obs::JsonValue;
use fci_xsim::MachineModel;

fn main() {
    let sys = fig4_system();
    let ham = Hamiltonian::new(&sys.mo);
    let space = DetSpace::for_hamiltonian(&ham, sys.na, sys.nb, sys.state_irrep);
    let model = MachineModel::cray_x1();
    println!("Figure 4 — MOC vs DGEMM σ timing vs MSP count");
    println!(
        "system: {} (n={}, Nα={}, Nβ={}, dim={})\n",
        sys.name,
        sys.mo.n_orb,
        sys.na,
        sys.nb,
        space.dim()
    );
    let widths = [6usize, 16, 16, 16, 16, 12, 12];
    println!(
        "{}",
        row(
            &[
                "MSPs".into(),
                "bb(MOC) [s]".into(),
                "ab(MOC) [s]".into(),
                "bb(DGEMM) [s]".into(),
                "ab(DGEMM) [s]".into(),
                "comm(MOC)".into(),
                "comm(DG)".into(),
            ],
            &widths
        )
    );

    let mut points = Vec::new();
    for &p in &[16usize, 32, 64, 128] {
        let ddi = Ddi::new(p, Backend::Serial);
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let c = space.guess(&ham, p);
        let (_s1, bd_moc) = apply_sigma(&ctx, &c, SigmaMethod::Moc);
        let (_s2, bd_dg) = apply_sigma(&ctx, &c, SigmaMethod::Dgemm);
        // "Same-spin" rows: β-β plus the α-α pass (both use the same-spin
        // kernel; the paper's O runs are dominated by the β-like side).
        let bb_moc = bd_moc.beta_beta.elapsed() + bd_moc.alpha_alpha.elapsed();
        let bb_dg = bd_dg.beta_beta.elapsed() + bd_dg.alpha_alpha.elapsed();
        println!(
            "{}",
            row(
                &[
                    format!("{p}"),
                    format!("{:.4}", bb_moc),
                    format!("{:.4}", bd_moc.alpha_beta.elapsed()),
                    format!("{:.4}", bb_dg),
                    format!("{:.4}", bd_dg.alpha_beta.elapsed()),
                    fmt_bytes(bd_moc.alpha_beta.total_net_bytes()),
                    fmt_bytes(bd_dg.alpha_beta.total_net_bytes()),
                ],
                &widths
            )
        );
        points.push(JsonValue::obj(vec![
            ("msps", JsonValue::Num(p as f64)),
            ("same_spin_moc_s", JsonValue::Num(bb_moc)),
            (
                "alpha_beta_moc_s",
                JsonValue::Num(bd_moc.alpha_beta.elapsed()),
            ),
            ("same_spin_dgemm_s", JsonValue::Num(bb_dg)),
            (
                "alpha_beta_dgemm_s",
                JsonValue::Num(bd_dg.alpha_beta.elapsed()),
            ),
            (
                "comm_moc_bytes",
                JsonValue::Num(bd_moc.alpha_beta.total_net_bytes()),
            ),
            (
                "comm_dgemm_bytes",
                JsonValue::Num(bd_dg.alpha_beta.total_net_bytes()),
            ),
            ("summary_moc", bd_moc.total().summary().to_json()),
            ("summary_dgemm", bd_dg.total().summary().to_json()),
        ]));
    }
    println!("\nexpected shape (paper): bb(MOC) flat with MSPs; all DGEMM rows ~1/P;");
    println!("ab(MOC) communication volume >> ab(DGEMM) (factor ~2(n−Nα)/3).");

    let record = JsonValue::obj(vec![
        ("bench", JsonValue::Str("fig4_scaling".into())),
        ("system", JsonValue::Str(sys.name.clone())),
        ("dim", JsonValue::Num(space.dim() as f64)),
        ("points", JsonValue::Arr(points)),
    ]);
    match write_bench_json("fig4_scaling", &record) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("warning: could not write bench json: {e}"),
    }
}
