//! Benchmark regression gates: compare fresh `results/BENCH_*.json`
//! artifacts against committed baselines with per-metric tolerances.
//!
//! A baseline is a small JSON file in `results/baselines/`:
//!
//! ```json
//! {"bench": "gemm_sweep_quick",
//!  "source": "BENCH_gemm_sweep_quick.json",
//!  "metrics": [
//!    {"path": "blocked_over_threaded", "value": 1.0,
//!     "direction": "lower", "rel_tol": 0.30}
//!  ]}
//! ```
//!
//! `path` is a dotted lookup into the fresh artifact (`warm.jobs_per_sec`
//! descends into nested objects). `direction` says which way is worse:
//!
//! * `higher` — the metric should stay **at least** as high; fresh below
//!   `value·(1 − rel_tol)` is a regression (throughput, speedup ratios);
//! * `lower` — the metric should stay **at most** as low; fresh above
//!   `value·(1 + rel_tol)` is a regression (latency, overhead);
//! * `near` — fresh must stay within `rel_tol` of `value` either way
//!   (conserved quantities, energies).
//!
//! Baselines committed to the repo pin *machine-tolerant* metrics —
//! ratios of two timings taken on the same host in the same run — so a
//! slow CI runner shifts both sides and the gate still bites only on
//! real regressions. `fcix-bench-diff` drives this module from CI.

pub use fci_obs::JsonValue;

use std::path::Path;

/// Which direction of drift counts as a regression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better; too-low fresh values regress.
    Higher,
    /// Smaller is better; too-high fresh values regress.
    Lower,
    /// Must match within tolerance both ways.
    Near,
}

impl Direction {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Higher => "higher",
            Direction::Lower => "lower",
            Direction::Near => "near",
        }
    }

    /// Parse a wire name.
    pub fn from_wire(s: &str) -> Option<Direction> {
        match s {
            "higher" => Some(Direction::Higher),
            "lower" => Some(Direction::Lower),
            "near" => Some(Direction::Near),
            _ => None,
        }
    }
}

/// One gated metric of a baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSpec {
    /// Dotted path into the fresh artifact (`warm.jobs_per_sec`).
    pub path: String,
    /// Committed reference value.
    pub value: f64,
    /// Which way drift regresses.
    pub direction: Direction,
    /// Allowed relative drift before the gate fails.
    pub rel_tol: f64,
}

/// A committed baseline: which artifact it gates and the metric specs.
#[derive(Clone, Debug, PartialEq)]
pub struct Baseline {
    /// Display name of the bench.
    pub bench: String,
    /// File name of the fresh artifact in the results directory.
    pub source: String,
    /// Gated metrics.
    pub metrics: Vec<MetricSpec>,
}

/// Outcome of checking one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum Status {
    /// Within tolerance.
    Pass,
    /// Out of tolerance in the regressing direction.
    Regressed,
    /// The dotted path is absent from the fresh artifact.
    Missing,
}

/// One metric's comparison result.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Dotted metric path.
    pub path: String,
    /// Baseline value.
    pub base: f64,
    /// Fresh value, when the path resolved.
    pub fresh: Option<f64>,
    /// Verdict.
    pub status: Status,
    /// Direction the gate checks.
    pub direction: Direction,
    /// Tolerance used.
    pub rel_tol: f64,
}

impl Baseline {
    /// Parse a baseline document.
    pub fn from_json(v: &JsonValue) -> Result<Baseline, String> {
        let bench = v
            .get("bench")
            .and_then(JsonValue::as_str)
            .ok_or("baseline needs `bench`")?
            .to_string();
        let source = v
            .get("source")
            .and_then(JsonValue::as_str)
            .ok_or("baseline needs `source`")?
            .to_string();
        let Some(JsonValue::Arr(items)) = v.get("metrics") else {
            return Err("baseline needs a `metrics` array".into());
        };
        let mut metrics = Vec::new();
        for (i, m) in items.iter().enumerate() {
            let path = m
                .get("path")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("metrics[{i}] needs `path`"))?
                .to_string();
            let value = m
                .get_f64("value")
                .ok_or_else(|| format!("metrics[{i}] needs `value`"))?;
            let direction = m
                .get("direction")
                .and_then(JsonValue::as_str)
                .and_then(Direction::from_wire)
                .ok_or_else(|| format!("metrics[{i}] needs `direction` higher|lower|near"))?;
            let rel_tol = m
                .get_f64("rel_tol")
                .ok_or_else(|| format!("metrics[{i}] needs `rel_tol`"))?;
            if rel_tol.is_nan() || rel_tol < 0.0 || !value.is_finite() {
                return Err(format!("metrics[{i}]: bad value/rel_tol"));
            }
            metrics.push(MetricSpec {
                path,
                value,
                direction,
                rel_tol,
            });
        }
        Ok(Baseline {
            bench,
            source,
            metrics,
        })
    }

    /// Serialize back to the baseline document shape.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("bench", JsonValue::Str(self.bench.clone())),
            ("source", JsonValue::Str(self.source.clone())),
            (
                "metrics",
                JsonValue::Arr(
                    self.metrics
                        .iter()
                        .map(|m| {
                            JsonValue::obj(vec![
                                ("path", JsonValue::Str(m.path.clone())),
                                ("value", JsonValue::Num(m.value)),
                                ("direction", JsonValue::Str(m.direction.as_str().into())),
                                ("rel_tol", JsonValue::Num(m.rel_tol)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Check every metric against a fresh artifact.
    pub fn compare(&self, fresh: &JsonValue) -> Vec<Outcome> {
        self.metrics
            .iter()
            .map(|m| {
                let got = lookup(fresh, &m.path);
                let status = match got {
                    None => Status::Missing,
                    Some(x) => {
                        let tol = m.rel_tol * m.value.abs();
                        let ok = match m.direction {
                            Direction::Higher => x >= m.value - tol,
                            Direction::Lower => x <= m.value + tol,
                            Direction::Near => (x - m.value).abs() <= tol,
                        };
                        if ok {
                            Status::Pass
                        } else {
                            Status::Regressed
                        }
                    }
                };
                Outcome {
                    path: m.path.clone(),
                    base: m.value,
                    fresh: got,
                    status,
                    direction: m.direction,
                    rel_tol: m.rel_tol,
                }
            })
            .collect()
    }

    /// A copy with every resolvable metric's `value` replaced by the
    /// fresh artifact's current reading (`fcix-bench-diff --update`).
    pub fn refreshed(&self, fresh: &JsonValue) -> Baseline {
        let mut out = self.clone();
        for m in &mut out.metrics {
            if let Some(x) = lookup(fresh, &m.path) {
                m.value = x;
            }
        }
        out
    }
}

/// Indented serialization for committed baseline files, so review diffs
/// stay one-metric-per-line (the compact `Display` form is a single line).
pub fn pretty(v: &JsonValue) -> String {
    fn at(v: &JsonValue, indent: usize) -> String {
        let pad = "  ".repeat(indent);
        match v {
            JsonValue::Obj(pairs) if !pairs.is_empty() => {
                let inner: Vec<String> = pairs
                    .iter()
                    .map(|(k, x)| {
                        format!(
                            "{pad}  {}: {}",
                            JsonValue::Str(k.clone()),
                            at(x, indent + 1)
                        )
                    })
                    .collect();
                format!("{{\n{}\n{pad}}}", inner.join(",\n"))
            }
            JsonValue::Arr(items) if !items.is_empty() => {
                let inner: Vec<String> = items
                    .iter()
                    .map(|x| format!("{pad}  {}", at(x, indent + 1)))
                    .collect();
                format!("[\n{}\n{pad}]", inner.join(",\n"))
            }
            other => other.to_string(),
        }
    }
    at(v, 0)
}

/// Resolve a dotted path (`warm.jobs_per_sec`) to a number.
pub fn lookup(v: &JsonValue, path: &str) -> Option<f64> {
    let mut cur = v;
    for seg in path.split('.') {
        cur = cur.get(seg)?;
    }
    cur.as_f64()
}

/// Comparison of one baseline file against its fresh artifact.
#[derive(Debug)]
pub struct BenchReport {
    /// Bench display name.
    pub bench: String,
    /// Fresh-artifact file name.
    pub source: String,
    /// Per-metric outcomes; empty (with `error`) when the artifact was
    /// unreadable.
    pub outcomes: Vec<Outcome>,
    /// Load/parse failure, if any.
    pub error: Option<String>,
}

impl BenchReport {
    /// Whether every metric passed (an unreadable artifact fails).
    pub fn ok(&self) -> bool {
        self.error.is_none() && self.outcomes.iter().all(|o| o.status == Status::Pass)
    }

    /// Human-readable block for the CI log.
    pub fn render(&self) -> String {
        let mut out = format!("{} ({})\n", self.bench, self.source);
        if let Some(e) = &self.error {
            out.push_str(&format!("  ERROR: {e}\n"));
            return out;
        }
        for o in &self.outcomes {
            let fresh = o.fresh.map_or("missing".to_string(), |x| format!("{x:.6}"));
            let verdict = match o.status {
                Status::Pass => "ok",
                Status::Regressed => "REGRESSED",
                Status::Missing => "MISSING",
            };
            out.push_str(&format!(
                "  {:<34} base {:>12.6}  fresh {:>12}  ({}, tol {:.0}%)  {}\n",
                o.path,
                o.base,
                fresh,
                o.direction.as_str(),
                100.0 * o.rel_tol,
                verdict
            ));
        }
        out
    }
}

/// Load every baseline in `baseline_dir` (files ending `.json`, sorted)
/// and compare each against its artifact in `results_dir`.
pub fn compare_dirs(baseline_dir: &Path, results_dir: &Path) -> Result<Vec<BenchReport>, String> {
    let mut files: Vec<_> = std::fs::read_dir(baseline_dir)
        .map_err(|e| format!("cannot read {}: {e}", baseline_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no baselines in {}", baseline_dir.display()));
    }
    let mut reports = Vec::new();
    for f in files {
        let base = load_baseline(&f)?;
        let fresh_path = results_dir.join(&base.source);
        let report = match std::fs::read_to_string(&fresh_path) {
            Ok(text) => match JsonValue::parse(&text) {
                Ok(v) => BenchReport {
                    bench: base.bench.clone(),
                    source: base.source.clone(),
                    outcomes: base.compare(&v),
                    error: None,
                },
                Err(e) => BenchReport {
                    bench: base.bench.clone(),
                    source: base.source.clone(),
                    outcomes: Vec::new(),
                    error: Some(format!("{}: {e}", fresh_path.display())),
                },
            },
            Err(e) => BenchReport {
                bench: base.bench.clone(),
                source: base.source.clone(),
                outcomes: Vec::new(),
                error: Some(format!("{}: {e}", fresh_path.display())),
            },
        };
        reports.push(report);
    }
    Ok(reports)
}

/// Read and parse one baseline file.
pub fn load_baseline(path: &Path) -> Result<Baseline, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let v = JsonValue::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Baseline::from_json(&v).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline(direction: Direction, value: f64, rel_tol: f64) -> Baseline {
        Baseline {
            bench: "t".into(),
            source: "BENCH_t.json".into(),
            metrics: vec![MetricSpec {
                path: "a.b".into(),
                value,
                direction,
                rel_tol,
            }],
        }
    }

    fn fresh(x: f64) -> JsonValue {
        JsonValue::obj(vec![("a", JsonValue::obj(vec![("b", JsonValue::Num(x))]))])
    }

    #[test]
    fn directions_gate_correctly() {
        // higher: 10 with 10% tol → fresh 9.0 passes, 8.9 regresses.
        let b = baseline(Direction::Higher, 10.0, 0.1);
        assert_eq!(b.compare(&fresh(9.0))[0].status, Status::Pass);
        assert_eq!(b.compare(&fresh(8.9))[0].status, Status::Regressed);
        assert_eq!(b.compare(&fresh(50.0))[0].status, Status::Pass);
        // lower: mirrored.
        let b = baseline(Direction::Lower, 10.0, 0.1);
        assert_eq!(b.compare(&fresh(11.0))[0].status, Status::Pass);
        assert_eq!(b.compare(&fresh(11.1))[0].status, Status::Regressed);
        assert_eq!(b.compare(&fresh(0.1))[0].status, Status::Pass);
        // near: both ways.
        let b = baseline(Direction::Near, 10.0, 0.1);
        assert_eq!(b.compare(&fresh(10.9))[0].status, Status::Pass);
        assert_eq!(b.compare(&fresh(11.1))[0].status, Status::Regressed);
        assert_eq!(b.compare(&fresh(8.9))[0].status, Status::Regressed);
    }

    #[test]
    fn missing_paths_fail() {
        let b = baseline(Direction::Higher, 1.0, 0.1);
        let doc = JsonValue::obj(vec![("unrelated", JsonValue::Num(1.0))]);
        assert_eq!(b.compare(&doc)[0].status, Status::Missing);
        let rep = BenchReport {
            bench: "t".into(),
            source: "s".into(),
            outcomes: b.compare(&doc),
            error: None,
        };
        assert!(!rep.ok());
        assert!(rep.render().contains("MISSING"));
    }

    #[test]
    fn baseline_json_roundtrip() {
        let b = Baseline {
            bench: "serve".into(),
            source: "BENCH_serve.json".into(),
            metrics: vec![
                MetricSpec {
                    path: "warm.jobs_per_sec".into(),
                    value: 25.0,
                    direction: Direction::Higher,
                    rel_tol: 0.4,
                },
                MetricSpec {
                    path: "overhead_pct".into(),
                    value: 2.0,
                    direction: Direction::Lower,
                    rel_tol: 1.5,
                },
            ],
        };
        let back = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn refreshed_takes_fresh_values() {
        let b = baseline(Direction::Higher, 10.0, 0.1);
        let r = b.refreshed(&fresh(12.5));
        assert_eq!(r.metrics[0].value, 12.5);
        // Unresolvable paths keep the old pin.
        let r = b.refreshed(&JsonValue::obj(vec![]));
        assert_eq!(r.metrics[0].value, 10.0);
    }

    #[test]
    fn pretty_round_trips() {
        let b = baseline(Direction::Near, 2.5, 0.05);
        let text = pretty(&b.to_json());
        assert!(text.lines().count() > 5, "one metric per line:\n{text}");
        let back = Baseline::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn dotted_lookup() {
        let doc = fresh(3.5);
        assert_eq!(lookup(&doc, "a.b"), Some(3.5));
        assert_eq!(lookup(&doc, "a.c"), None);
        assert_eq!(lookup(&doc, "x"), None);
    }
}
