//! A minimal microbenchmark harness with a Criterion-shaped API.
//!
//! The build environment has no crate-registry access, so Criterion itself
//! cannot be a dependency. This module re-creates the subset of its
//! surface the `benches/` files use — `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput` — with plain timing: one warm-up call,
//! then `sample_size` timed samples, reporting min/median/mean.
//!
//! Set `FCIX_BENCH_SAMPLES` to override every group's sample count (e.g.
//! `FCIX_BENCH_SAMPLES=3` for a smoke run in CI).

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

/// Harness entry point (one per benchmark executable).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related measurements.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            throughput: None,
        }
    }

    /// Measure one ungrouped closure (Criterion also allows this form).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let g = BenchmarkGroup {
            name: String::new(),
            samples: 10,
            throughput: None,
        };
        g.run(id.into(), &mut f);
        self
    }
}

/// Throughput annotation: turns per-iteration time into a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration (reported as Melem/s).
    Elements(u64),
    /// Bytes processed per iteration (reported as MB/s).
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: &str, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Parameter-only id (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// A group of measurements sharing a sample count and throughput label.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark (min 3).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    /// Measure one closure against an input (Criterion-compat shim — the
    /// input is simply passed through).
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (kept for API parity; reporting is incremental).
    pub fn finish(self) {}

    fn run(&self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let samples = std::env::var("FCIX_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .map(|n: usize| n.max(1))
            .unwrap_or(self.samples);
        let mut b = Bencher {
            times: Vec::with_capacity(samples),
            samples,
        };
        f(&mut b);
        let mut times = b.times;
        if times.is_empty() {
            println!("  {:<32} (no samples)", id.0);
            return;
        }
        times.sort_by(|a, x| a.partial_cmp(x).unwrap());
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.1} Melem/s", n as f64 / median / 1e6)
            }
            Some(Throughput::Bytes(n)) => format!("  {:>10.1} MB/s", n as f64 / median / 1e6),
            None => String::new(),
        };
        println!(
            "  {:<32} median {}  (min {}, mean {}, n={}){}",
            id.0,
            fmt_time(median),
            fmt_time(min),
            fmt_time(mean),
            times.len(),
            rate
        );
        let _ = &self.name;
    }
}

/// Passed to each benchmark closure; `iter` runs and times the workload.
pub struct Bencher {
    times: Vec<f64>,
    samples: usize,
}

impl Bencher {
    /// Time `f`: one warm-up call, then one timed call per sample.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.samples {
            // lint: allow(wallclock) — the bench harness measures real host time
            let t0 = Instant::now();
            black_box(f());
            self.times.push(t0.elapsed().as_secs_f64());
        }
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Criterion-compat macro: bundles benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Criterion-compat macro: the benchmark executable's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
