//! Reusable scratch buffers for the GEMM packing paths.
//!
//! The packed [`dgemm`](crate::gemm::dgemm) needs two kinds of working
//! storage per call: one shared packed-B panel and one packed-A block per
//! worker thread. Allocating these with `vec![]` on every call (as the
//! seed kernel did) puts a heap allocation — and for large panels a page
//! fault storm — on the single hottest path of the whole program. This
//! module replaces that with a process-wide pool of `Vec<f64>` buffers:
//!
//! * [`acquire`] hands out a buffer of at least the requested length,
//!   preferring the smallest pooled buffer that already has the capacity
//!   (so one huge solve does not pin every small buffer at its size);
//! * dropping the returned [`ScratchGuard`] returns the buffer to the
//!   pool (up to [`MAX_POOLED`] buffers are retained; extras are freed).
//!
//! After warm-up — once the pool holds buffers sized for the largest
//! panels in flight — `acquire` performs **zero heap allocations**; the
//! counting-allocator test in `fci-core` asserts exactly this for the σ
//! hot path. The pool mutex is touched only at acquire/release, never
//! inside pack or microkernel loops.
//!
//! Contents of an acquired buffer are unspecified (stale data from the
//! previous user); every GEMM packing routine overwrites its panel —
//! including the zero padding — before reading it.

use std::sync::Mutex;

/// Upper bound on pooled buffers; beyond this, released buffers are
/// freed. Sized for the deepest realistic nesting: one B panel plus one
/// A block per hardware thread of a large machine.
const MAX_POOLED: usize = 64;

// The pool itself is the one sanctioned allocation site of the
// zero-alloc GEMM paths; `Vec::new` here is const and allocation-free.
// lint: allow(alloc) — const Vec::new; the pool is the one sanctioned allocation site
static POOL: Mutex<Vec<Vec<f64>>> = Mutex::new(Vec::new());

/// A pooled scratch buffer; returns itself to the pool on drop.
pub struct ScratchGuard {
    buf: Vec<f64>,
}

impl ScratchGuard {
    /// The scratch area (exactly the length passed to [`acquire`]).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.buf
    }

    /// Read-only view of the scratch area (used by persistent packed
    /// operands, which pack once and are then read many times).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.buf
    }
}

impl Drop for ScratchGuard {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        let mut pool = POOL.lock().unwrap();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    }
}

/// Check out a scratch buffer with `len` elements of unspecified content.
///
/// Best-fit: takes the smallest pooled buffer whose capacity suffices;
/// if none fits, the largest pooled buffer is grown (one allocation,
/// after which it fits forever). Growth doubles at least, so a sequence
/// of slightly-increasing requests costs O(log) allocations, not O(n).
pub fn acquire(len: usize) -> ScratchGuard {
    let mut buf = {
        let mut pool = POOL.lock().unwrap();
        match pick(&pool, len) {
            Some(i) => pool.swap_remove(i),
            // Capacity-0 vector: no allocation until `grow_and_fill`.
            // lint: allow(alloc) — capacity-0 Vec::new; no heap touch until grow_and_fill
            None => Vec::new(),
        }
    };
    grow_and_fill(&mut buf, len);
    ScratchGuard { buf }
}

/// Best-fit selection: index of the smallest pooled buffer whose capacity
/// is at least `len`; if none fits, the largest buffer (closest to
/// fitting, so growth is minimal); `None` only when the pool is empty.
fn pick(pool: &[Vec<f64>], len: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, b) in pool.iter().enumerate() {
        if b.capacity() >= len && best.is_none_or(|j: usize| b.capacity() < pool[j].capacity()) {
            best = Some(i);
        }
    }
    best.or_else(|| (0..pool.len()).max_by_key(|&i| pool[i].capacity()))
}

fn grow_and_fill(buf: &mut Vec<f64>, len: usize) {
    if buf.capacity() < len {
        // Pool growth: the one allocation of the scratch subsystem,
        // amortized to zero after warm-up.
        // lint: allow(alloc) — pool warm-up growth, amortized to zero across the run
        buf.reserve(len - buf.len());
    }
    // Within capacity after the reserve above: no allocation. The fill
    // value is immediately overwritten by the packing routines; writing
    // zeros here keeps the buffer initialized for safe-Rust slicing.
    buf.clear();
    buf.resize(len, 0.0);
}

// ---------------------------------------------------------------------
// f32 pool — the mixed-precision GEMM variant packs its operands in
// single precision (halving pack bandwidth) while accumulating in f64.
// Same policy as the f64 pool; kept separate so a giant f64 panel never
// pins an f32 request and vice versa.
// ---------------------------------------------------------------------

// lint: allow(alloc) — const Vec::new; the pool is the one sanctioned allocation site
static POOL32: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());

/// A pooled f32 scratch buffer; returns itself to the pool on drop.
pub struct ScratchGuardF32 {
    buf: Vec<f32>,
}

impl ScratchGuardF32 {
    /// The scratch area (exactly the length passed to [`acquire_f32`]).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for ScratchGuardF32 {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        let mut pool = POOL32.lock().unwrap();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    }
}

/// Check out an f32 scratch buffer with `len` elements of unspecified
/// content (same best-fit policy as [`acquire`]).
pub fn acquire_f32(len: usize) -> ScratchGuardF32 {
    let mut buf = {
        let mut pool = POOL32.lock().unwrap();
        let best = {
            let mut best: Option<usize> = None;
            for (i, b) in pool.iter().enumerate() {
                if b.capacity() >= len
                    && best.is_none_or(|j: usize| b.capacity() < pool[j].capacity())
                {
                    best = Some(i);
                }
            }
            best.or_else(|| (0..pool.len()).max_by_key(|&i| pool[i].capacity()))
        };
        match best {
            Some(i) => pool.swap_remove(i),
            // Capacity-0 vector: no allocation until the reserve below.
            // lint: allow(alloc) — capacity-0 Vec::new; no heap touch until the reserve below
            None => Vec::new(),
        }
    };
    if buf.capacity() < len {
        // lint: allow(alloc) — pool warm-up growth, amortized to zero across the run
        buf.reserve(len - buf.len());
    }
    buf.clear();
    buf.resize(len, 0.0);
    ScratchGuardF32 { buf }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_returns_requested_length() {
        let mut g = acquire(1000);
        assert_eq!(g.as_mut_slice().len(), 1000);
        g.as_mut_slice()[999] = 1.0;
        assert_eq!(g.as_slice()[999], 1.0);
    }

    #[test]
    fn acquire_f32_round_trips_through_pool() {
        let mut g = acquire_f32(512);
        assert_eq!(g.as_mut_slice().len(), 512);
        g.as_mut_slice()[511] = 2.0;
        drop(g);
        let mut g2 = acquire_f32(256);
        assert_eq!(g2.as_mut_slice().len(), 256);
        assert!(g2.as_mut_slice().iter().all(|&x| x == 0.0));
    }

    // The global pool is shared by every test thread in the process, so
    // tests of the *selection policy* use the pure `pick` helper on a
    // local pool instead of asserting on global-pool state.

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let pool = vec![
            Vec::with_capacity(100_000),
            Vec::with_capacity(128),
            Vec::with_capacity(4096),
        ];
        assert_eq!(pick(&pool, 64), Some(1));
        assert_eq!(pick(&pool, 1000), Some(2));
        assert_eq!(pick(&pool, 50_000), Some(0));
    }

    #[test]
    fn pick_grows_largest_when_nothing_fits() {
        let pool = vec![Vec::with_capacity(128), Vec::with_capacity(4096)];
        assert_eq!(pick(&pool, 1 << 20), Some(1));
        assert_eq!(pick(&[], 16), None);
    }

    #[test]
    fn grow_and_fill_is_allocation_free_within_capacity() {
        let mut buf: Vec<f64> = Vec::with_capacity(256);
        let p0 = buf.as_ptr();
        grow_and_fill(&mut buf, 200);
        assert_eq!(buf.len(), 200);
        assert!(buf.iter().all(|&x| x == 0.0));
        assert_eq!(buf.as_ptr(), p0, "buffer reallocated within capacity");
    }
}
