//! LU factorization with partial pivoting and linear solves.
//!
//! Used by the DIIS extrapolation in the SCF driver (the B-matrix linear
//! system) and by small auxiliary solves in the benchmark harnesses.

use crate::matrix::Matrix;

/// Error from a singular (or numerically singular) factorization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LuError {
    /// The elimination column where no usable pivot was found.
    pub column: usize,
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for LuError {}

/// Compact LU factorization `P A = L U` with partial pivoting.
///
/// Returns the packed LU factors (unit lower triangle implicit) and the
/// pivot row permutation.
pub fn lu_factor(a: &Matrix) -> Result<(Matrix, Vec<usize>), LuError> {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "lu_factor requires a square matrix");
    let mut lu = a.clone();
    let mut piv: Vec<usize> = (0..n).collect();

    for k in 0..n {
        // Pivot search in column k.
        let mut p = k;
        let mut pmax = lu[(k, k)].abs();
        for i in (k + 1)..n {
            let v = lu[(i, k)].abs();
            if v > pmax {
                pmax = v;
                p = i;
            }
        }
        if pmax == 0.0 || !pmax.is_finite() {
            return Err(LuError { column: k });
        }
        if p != k {
            for j in 0..n {
                let t = lu[(k, j)];
                lu[(k, j)] = lu[(p, j)];
                lu[(p, j)] = t;
            }
            piv.swap(k, p);
        }
        let pivot = lu[(k, k)];
        for i in (k + 1)..n {
            let m = lu[(i, k)] / pivot;
            lu[(i, k)] = m;
            for j in (k + 1)..n {
                let v = lu[(k, j)];
                lu[(i, j)] -= m * v;
            }
        }
    }
    Ok((lu, piv))
}

/// Solve `A x = b` by LU factorization with partial pivoting.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LuError> {
    let n = a.nrows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    let (lu, piv) = lu_factor(a)?;
    // Apply permutation to b.
    let mut x: Vec<f64> = piv.iter().map(|&p| b[p]).collect();
    // Forward substitution (unit lower).
    for i in 1..n {
        let mut s = x[i];
        for j in 0..i {
            s -= lu[(i, j)] * x[j];
        }
        x[i] = s;
    }
    // Back substitution.
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in (i + 1)..n {
            s -= lu[(i, j)] * x[j];
        }
        x[i] = s / lu[(i, i)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let a = Matrix::eye(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = lu_solve(&a, &b).unwrap();
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn known_system() {
        // [[2,1],[1,3]] x = [3,5] -> x = [4/5, 7/5]
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = lu_solve(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-14);
        assert!((x[1] - 1.4).abs() < 1e-14);
    }

    #[test]
    fn pivoting_required() {
        // Zero on the initial diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = lu_solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(lu_solve(&a, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn random_roundtrip() {
        let n = 12;
        let mut state = 777u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let a = Matrix::from_fn(n, n, |i, j| next() + if i == j { 2.0 } else { 0.0 });
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64) - 3.5).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[(i, j)] * xtrue[j];
            }
        }
        let x = lu_solve(&a, &b).unwrap();
        for i in 0..n {
            assert!((x[i] - xtrue[i]).abs() < 1e-10);
        }
    }
}
