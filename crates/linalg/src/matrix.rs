//! Column-major dense matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, column-major `f64` matrix.
///
/// Element `(i, j)` (row `i`, column `j`) lives at `data[i + j * nrows]`.
/// Column-major layout is used everywhere in this workspace because the FCI
/// coefficient matrix is accessed column-wise (each column is a fixed
/// α-string, indexed by β strings) and because it matches the Fortran
/// convention of the original program.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Matrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a function of `(row, col)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                data.push(f(i, j));
            }
        }
        Matrix { nrows, ncols, data }
    }

    /// Wrap an existing column-major buffer. Panics if the length mismatches.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "buffer length must equal nrows*ncols"
        );
        Matrix { nrows, ncols, data }
    }

    /// Build from row-major slices (convenient for literals in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = if nrows == 0 { 0 } else { rows[0].len() };
        assert!(rows.iter().all(|r| r.len() == ncols), "ragged rows");
        Self::from_fn(nrows, ncols, |i, j| rows[i][j])
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying column-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the column-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow column `j` as a contiguous slice.
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.ncols);
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Mutable view of column `j`.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.ncols);
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Copy of row `i` (rows are strided, so this allocates).
    pub fn row(&self, i: usize) -> Vec<f64> {
        assert!(i < self.nrows);
        (0..self.ncols).map(|j| self[(i, j)]).collect()
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Scale every element in place.
    pub fn scale(&mut self, a: f64) {
        crate::blas1::dscal(a, &mut self.data);
    }

    /// `self += a * other` elementwise. Panics on shape mismatch.
    pub fn axpy(&mut self, a: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        crate::blas1::daxpy(a, &other.data, &mut self.data);
    }

    /// Frobenius inner product `⟨self, other⟩`.
    pub fn dot(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "dot shape mismatch");
        crate::blas1::ddot(&self.data, &other.data)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        crate::blas1::dnrm2(&self.data)
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Maximum absolute elementwise difference with `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Is the matrix symmetric to within `tol`?
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for j in 0..self.ncols {
            for i in 0..j {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Matrix product `self * other` (convenience wrapper over [`crate::dgemm`]).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.ncols, other.nrows, "matmul inner dimension mismatch");
        let mut c = Matrix::zeros(self.nrows, other.ncols);
        crate::gemm::dgemm(
            crate::gemm::Trans::No,
            crate::gemm::Trans::No,
            1.0,
            self,
            other,
            0.0,
            &mut c,
        );
        c
    }

    /// `selfᵀ * other`.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.nrows, other.nrows, "t_matmul inner dimension mismatch");
        let mut c = Matrix::zeros(self.ncols, other.ncols);
        crate::gemm::dgemm(
            crate::gemm::Trans::Yes,
            crate::gemm::Trans::No,
            1.0,
            self,
            other,
            0.0,
            &mut c,
        );
        c
    }

    /// `self * otherᵀ`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.ncols, other.ncols, "matmul_t inner dimension mismatch");
        let mut c = Matrix::zeros(self.nrows, other.nrows);
        crate::gemm::dgemm(
            crate::gemm::Trans::No,
            crate::gemm::Trans::Yes,
            1.0,
            self,
            other,
            0.0,
            &mut c,
        );
        c
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i + j * self.nrows]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i + j * self.nrows]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.nrows, self.ncols)?;
        let show_rows = self.nrows.min(8);
        let show_cols = self.ncols.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..show_cols {
                write!(f, "{:12.6} ", self[(i, j)])?;
            }
            if show_cols < self.ncols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_rows < self.nrows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_eye() {
        let z = Matrix::zeros(3, 2);
        assert_eq!(z.shape(), (3, 2));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let e = Matrix::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(e[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn column_major_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        // data = [m(0,0), m(1,0), m(0,1), m(1,1), m(0,2), m(1,2)]
        assert_eq!(m.as_slice(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
        assert_eq!(m.col(1), &[1.0, 11.0]);
        assert_eq!(m.row(1), vec![10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m[(2, 1)], 6.0);
        assert_eq!(m[(0, 1)], 2.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(4, 3, |i, j| (i + 7 * j) as f64);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed()[(2, 3)], m[(3, 2)]);
    }

    #[test]
    fn axpy_dot_norm() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let mut b = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        b.axpy(2.0, &a);
        assert_eq!(b, Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 5.0]]));
        assert_eq!(a.dot(&a), 5.0);
        assert!((a.norm() - 5.0_f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn symmetric_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        assert!(s.is_symmetric(0.0));
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        assert!(!a.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
        let ct = a.t_matmul(&b);
        assert_eq!(ct, Matrix::from_rows(&[&[26.0, 30.0], &[38.0, 44.0]]));
        let cmt = a.matmul_t(&b);
        assert_eq!(cmt, Matrix::from_rows(&[&[17.0, 23.0], &[39.0, 53.0]]));
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
