//! Householder tridiagonalization + implicit-shift QL eigensolver.
//!
//! The cyclic Jacobi solver in [`crate::eigen`] is robust but needs many
//! O(n³) sweeps; for the larger dense reference diagonalizations (sector
//! Hamiltonians of 10³–10⁴ determinants) the classic two-stage approach —
//! reduce to tridiagonal form with Householder reflections, then apply the
//! implicit QL algorithm with Wilkinson shifts — is an order of magnitude
//! faster. [`crate::eigen::eigh`] dispatches here for matrices above a
//! small cutoff; the two solvers cross-check each other in the tests.

use crate::eigen::Eigh;
use crate::matrix::Matrix;

/// Eigendecomposition of a symmetric matrix by tridiagonalization + QL.
///
/// Reads the upper triangle (like [`crate::eigen::eigh`]); panics on a
/// non-square input or if the QL iteration fails to converge (does not
/// happen for symmetric input within floating-point sanity).
pub fn eigh_tridiag(a: &Matrix) -> Eigh {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "eigh_tridiag requires a square matrix");
    if n == 0 {
        return Eigh {
            eigenvalues: Vec::new(),
            eigenvectors: Matrix::zeros(0, 0),
        };
    }
    // Symmetrized working copy; `z` accumulates transformations.
    let mut z = Matrix::from_fn(n, n, |i, j| if i <= j { a[(i, j)] } else { a[(j, i)] });
    let mut d = vec![0.0f64; n]; // diagonal
    let mut e = vec![0.0f64; n]; // sub-diagonal (e[0] unused)

    tred2(&mut z, &mut d, &mut e);
    tqli(&mut d, &mut e, &mut z);

    // Sort ascending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].total_cmp(&d[j]));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let eigenvectors = Matrix::from_fn(n, n, |i, j| z[(i, order[j])]);
    Eigh {
        eigenvalues,
        eigenvectors,
    }
}

/// Householder reduction of the symmetric matrix in `z` to tridiagonal
/// form (d = diagonal, e = sub-diagonal); `z` is replaced by the
/// accumulated orthogonal transformation (Numerical-Recipes `tred2`).
fn tred2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let upd = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= upd;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let upd = g * z[(k, i)];
                    z[(k, j)] -= upd;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// Implicit-shift QL on the tridiagonal (d, e), rotations accumulated
/// into `z` (Numerical-Recipes `tqli`).
fn tqli(d: &mut [f64], e: &mut [f64], z: &mut Matrix) {
    let n = d.len();
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a negligible sub-diagonal element.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "QL iteration failed to converge");
            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r } else { -r };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if r == 0.0 && m > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::eigh_jacobi;

    fn rand_sym(n: usize, seed: u64) -> Matrix {
        let mut st = seed.wrapping_mul(6364136223846793005).wrapping_add(11);
        let raw = Matrix::from_fn(n, n, |_, _| {
            st = st
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((st >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        Matrix::from_fn(n, n, |i, j| raw[(i, j)] + raw[(j, i)])
    }

    fn check(a: &Matrix) {
        let n = a.nrows();
        let e = eigh_tridiag(a);
        // Residual ‖A V − V Λ‖.
        let av = a.matmul(&e.eigenvectors);
        let vl = Matrix::from_fn(n, n, |i, j| e.eigenvectors[(i, j)] * e.eigenvalues[j]);
        assert!(
            av.max_abs_diff(&vl) < 1e-9 * (1.0 + n as f64),
            "residual too large"
        );
        // Orthonormality.
        let vtv = e.eigenvectors.t_matmul(&e.eigenvectors);
        assert!(vtv.max_abs_diff(&Matrix::eye(n)) < 1e-10);
        // Ascending order.
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn small_and_medium_random() {
        for &(n, seed) in &[(1usize, 1u64), (2, 2), (3, 3), (8, 4), (25, 5), (60, 6)] {
            check(&rand_sym(n, seed));
        }
    }

    #[test]
    fn agrees_with_jacobi() {
        for &(n, seed) in &[(6usize, 9u64), (17, 10), (33, 11)] {
            let a = rand_sym(n, seed);
            let e1 = eigh_tridiag(&a);
            let e2 = eigh_jacobi(&a);
            for (x, y) in e1.eigenvalues.iter().zip(&e2.eigenvalues) {
                assert!((x - y).abs() < 1e-9, "{x} vs {y} (n={n})");
            }
        }
    }

    #[test]
    fn degenerate_eigenvalues() {
        // Identity ⊕ shifted identity exercises exactly repeated roots.
        let n = 10;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i != j {
                0.0
            } else if i < 5 {
                2.0
            } else {
                -1.0
            }
        });
        let e = eigh_tridiag(&a);
        for k in 0..5 {
            assert!((e.eigenvalues[k] + 1.0).abs() < 1e-12);
            assert!((e.eigenvalues[k + 5] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn already_tridiagonal() {
        // A Toeplitz tridiagonal matrix has analytic eigenvalues
        // d + 2·o·cos(kπ/(n+1)).
        let n = 12;
        let (dg, off) = (1.5, -0.7);
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                dg
            } else if i.abs_diff(j) == 1 {
                off
            } else {
                0.0
            }
        });
        let e = eigh_tridiag(&a);
        let mut exact: Vec<f64> = (1..=n)
            .map(|k| dg + 2.0 * off * (std::f64::consts::PI * k as f64 / (n as f64 + 1.0)).cos())
            .collect();
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (x, y) in e.eigenvalues.iter().zip(&exact) {
            assert!((x - y).abs() < 1e-11, "{x} vs {y}");
        }
    }
}
