//! Householder tridiagonalization + implicit-shift QL eigensolver.
//!
//! The cyclic Jacobi solver in [`crate::eigen`] is robust but needs many
//! O(n³) sweeps; for the larger dense reference diagonalizations (sector
//! Hamiltonians of 10³–10⁴ determinants) the classic two-stage approach —
//! reduce to tridiagonal form with Householder reflections, then apply the
//! implicit QL algorithm with Wilkinson shifts — is an order of magnitude
//! faster. [`crate::eigen::eigh`] dispatches here for matrices above a
//! small cutoff; the two solvers cross-check each other in the tests.
//!
//! The reduction stage comes in two flavors, selected by [`TridiagPath`]:
//!
//! * **Scalar** — the Numerical-Recipes `tred2`, kept verbatim as the
//!   reference: O(n³) level-2 loops with poor cache behavior, fine below
//!   ~50×50.
//! * **Blocked** — a panel-blocked Householder reduction in the LAPACK
//!   `dsytrd`/`dlatrd` style: each `NB`-column panel accumulates its
//!   reflectors as a compact `(V, W)` pair, the trailing submatrix is
//!   updated once per panel with two [`dgemm`] rank-`NB` products
//!   (`A ← A − V·Wᵀ − W·Vᵀ`), and the orthogonal factor `Q` is rebuilt
//!   afterwards from the stored reflectors with compact-WY block
//!   applications (`Q₂ ← Q₂ − V·T·VᵀQ₂`, three GEMMs per panel). Roughly
//!   2/3 of the reduction flops and all of the Q-accumulation flops run
//!   at GEMM rate; `BENCH_eigh_sweep.json` tracks the speedup over the
//!   scalar path (≥3× at n = 512 is the PR 9 acceptance bar).
//!
//! Both paths produce a valid factorization `A = Q·T·Qᵀ` (they differ in
//! the reduction order, so the intermediate `T` matrices differ); the
//! shared [`tqli`] back-substitution then yields identical eigenpairs up
//! to round-off. `tqli` reports non-convergence as a [`TqliError`]
//! instead of panicking — [`eigh_tridiag`] falls back to the Jacobi
//! solver in that (pathological) case, so the serving hot path cannot be
//! taken down by one ill-conditioned subspace matrix.

use crate::arena;
use crate::eigen::{eigh_jacobi, Eigh};
use crate::gemm::{dgemm, Trans};
use crate::matrix::Matrix;
use std::fmt;

/// Panel width of the blocked reduction. 32 columns keep the `(V, W)`
/// panel resident in L1/L2 while making the trailing rank-2·NB update
/// fat enough to run at GEMM rate.
const NB: usize = 32;

/// Smallest order where the blocked path beats the scalar `tred2`
/// (below this the GEMM calls sit under their own small-path crossover
/// and the panel bookkeeping is pure overhead; see `eigh_sweep`).
const BLOCKED_MIN_N: usize = 48;

/// Reduction-path override for [`reduce_to_tridiag`] /
/// [`eigh_tridiag_path`]; production code uses [`TridiagPath::Auto`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TridiagPath {
    /// Blocked for `n ≥ 48`, scalar below.
    Auto,
    /// Force the scalar Numerical-Recipes `tred2`.
    Scalar,
    /// Force the panel-blocked GEMM reduction.
    Blocked,
}

/// Result of a Householder tridiagonalization `A = Q·T·Qᵀ`.
pub struct Tridiag {
    /// Accumulated orthogonal factor (`n×n`).
    pub q: Matrix,
    /// Diagonal of `T` (`d[i] = T[i,i]`).
    pub d: Vec<f64>,
    /// Sub-diagonal of `T` in the `tred2` convention:
    /// `e[i] = T[i, i−1]`, with `e[0]` unused (zero).
    pub e: Vec<f64>,
}

/// Non-convergence of the implicit QL iteration (more than 50 sweeps on
/// one eigenvalue — does not happen for finite symmetric input, but a
/// NaN-poisoned matrix gets a clean error instead of a panic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TqliError {
    /// Index of the eigenvalue whose QL iteration failed to converge.
    pub index: usize,
}

impl fmt::Display for TqliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QL iteration failed to converge at eigenvalue {}",
            self.index
        )
    }
}

impl std::error::Error for TqliError {}

// A fresh zero-filled result buffer handed to the caller (once per
// solve, outside every panel loop).
fn zeros_vec(n: usize) -> Vec<f64> {
    vec![0.0f64; n] // lint: allow(alloc) — result buffer owned by the returned value
}

/// Eigenvalue-ascending permutation of `d` (once per solve).
fn sort_order(d: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..d.len()).collect(); // lint: allow(alloc) — once per solve
    order.sort_by(|&i, &j| d[i].total_cmp(&d[j]));
    order
}

/// Symmetrized working copy (reads the upper triangle, like `eigh`).
fn symmetrized(a: &Matrix) -> Matrix {
    let n = a.nrows();
    Matrix::from_fn(n, n, |i, j| if i <= j { a[(i, j)] } else { a[(j, i)] })
}

/// Eigendecomposition of a symmetric matrix by tridiagonalization + QL.
///
/// Reads the upper triangle (like [`crate::eigen::eigh`]); panics on a
/// non-square input. Falls back to the Jacobi solver if the QL iteration
/// fails to converge (pathological input only).
pub fn eigh_tridiag(a: &Matrix) -> Eigh {
    eigh_tridiag_path(TridiagPath::Auto, a)
}

/// [`eigh_tridiag`] with an explicit reduction path (bench/test hook).
pub fn eigh_tridiag_path(path: TridiagPath, a: &Matrix) -> Eigh {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "eigh_tridiag requires a square matrix");
    if n == 0 {
        return Eigh {
            eigenvalues: zeros_vec(0),
            eigenvectors: Matrix::zeros(0, 0),
        };
    }
    let Tridiag {
        mut q,
        mut d,
        mut e,
    } = reduce_to_tridiag(path, a);
    if tqli(&mut d, &mut e, &mut q).is_err() {
        // >50 QL sweeps on one eigenvalue: only reachable for
        // NaN/Inf-poisoned input. The Jacobi solver is the robust
        // fallback (it never iterates past its fixed sweep budget).
        return eigh_jacobi(a);
    }
    let order = sort_order(&d);
    let mut eigenvalues = zeros_vec(n);
    for (k, &i) in order.iter().enumerate() {
        eigenvalues[k] = d[i];
    }
    let eigenvectors = Matrix::from_fn(n, n, |i, j| q[(i, order[j])]);
    Eigh {
        eigenvalues,
        eigenvectors,
    }
}

/// Householder tridiagonalization `A = Q·T·Qᵀ` of a symmetric matrix.
///
/// Reads the upper triangle; panics on a non-square input. The returned
/// `(d, e)` follow the `tred2` convention (`e[i] = T[i, i−1]`, `e[0]`
/// zero) and feed [`tqli`] via [`eigh_tridiag_path`]; the bench bin
/// `eigh_sweep` times this stage in isolation per [`TridiagPath`].
pub fn reduce_to_tridiag(path: TridiagPath, a: &Matrix) -> Tridiag {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "reduce_to_tridiag requires a square matrix");
    let blocked = match path {
        TridiagPath::Auto => n >= BLOCKED_MIN_N,
        TridiagPath::Scalar => false,
        TridiagPath::Blocked => true,
    };
    if blocked {
        reduce_blocked(a)
    } else {
        reduce_scalar(a)
    }
}

fn reduce_scalar(a: &Matrix) -> Tridiag {
    let n = a.nrows();
    let mut z = symmetrized(a);
    let mut d = zeros_vec(n);
    let mut e = zeros_vec(n);
    if n > 0 {
        tred2(&mut z, &mut d, &mut e);
    }
    Tridiag { q: z, d, e }
}

// ---------------------------------------------------------------------
// Blocked reduction (LAPACK dsytrd/dlatrd 'L'-variant shape).
// ---------------------------------------------------------------------

/// Panel-blocked Householder reduction. The working matrix `z` starts as
/// the symmetrized input; during the reduction its strictly-lower columns
/// are overwritten with the Householder vectors (unit first element
/// stored explicitly), and afterwards `Q` is accumulated from them into a
/// fresh matrix with compact-WY block applications.
fn reduce_blocked(a: &Matrix) -> Tridiag {
    let n = a.nrows();
    let mut z = symmetrized(a);
    let mut d = zeros_vec(n);
    let mut e = zeros_vec(n);
    if n == 0 {
        return Tridiag { q: z, d, e };
    }
    if n == 1 {
        d[0] = z[(0, 0)];
        return Tridiag {
            q: Matrix::eye(1),
            d,
            e,
        };
    }

    // Householder scalars, reused by the Q accumulation below; flat
    // per-solve scratch comes from the shared arena pool.
    let mut tau_g = arena::acquire(n);
    let taus = tau_g.as_mut_slice();
    let mut y_g = arena::acquire(n);
    let y = y_g.as_mut_slice();

    // Panel reflectors: V holds the Householder vectors of the current
    // panel (zeros above their start row), W the matching update vectors
    // so that the pending trailing update is A − V·Wᵀ − W·Vᵀ.
    let mut v_pan = Matrix::zeros(n, NB);
    let mut w_pan = Matrix::zeros(n, NB);

    let mut j0 = 0;
    while j0 + 1 < n {
        let nb = NB.min(n - 1 - j0);
        for jj in 0..nb {
            let j = j0 + jj;
            let t = j + 1;

            // (1) Bring column j up to date with the panel's pending
            //     corrections: A[j.., j] −= V[j.., :jj]·W[j, :jj]ᵀ
            //                              + W[j.., :jj]·V[j, :jj]ᵀ.
            for p in 0..jj {
                let wj = w_pan[(j, p)];
                let vj = v_pan[(j, p)];
                if wj != 0.0 || vj != 0.0 {
                    let vcol = &v_pan.col(p)[j..n];
                    let wcol = &w_pan.col(p)[j..n];
                    let acol = &mut z.col_mut(j)[j..n];
                    for ((ai, &vi), &wi) in acol.iter_mut().zip(vcol).zip(wcol) {
                        *ai -= wj * vi + vj * wi;
                    }
                }
            }
            d[j] = z[(j, j)];

            // (2) Householder reflector annihilating A[j+2.., j]
            //     (dlarfg): beta becomes the new sub-diagonal, the
            //     vector v (unit first element) overwrites A[j+1.., j].
            let (beta, tau) = {
                let x = &z.col(j)[t..n];
                let alpha = x[0];
                let xnorm = x[1..].iter().map(|&v| v * v).sum::<f64>().sqrt();
                if xnorm == 0.0 {
                    (alpha, 0.0)
                } else {
                    let norm = alpha.hypot(xnorm);
                    let beta = if alpha >= 0.0 { -norm } else { norm };
                    (beta, (beta - alpha) / beta)
                }
            };
            e[t] = beta;
            taus[j] = tau;
            {
                let x = &mut z.col_mut(j)[t..n];
                if tau != 0.0 {
                    let scale = 1.0 / (x[0] - beta);
                    for xi in x[1..].iter_mut() {
                        *xi *= scale;
                    }
                } else {
                    for xi in x[1..].iter_mut() {
                        *xi = 0.0;
                    }
                }
                x[0] = 1.0;
            }
            {
                let col = v_pan.col_mut(jj);
                col[..t].fill(0.0);
                col[t..n].copy_from_slice(&z.col(j)[t..n]);
            }

            // (3) w = τ·(Â·v) − ½τ²(vᵀÂv)·v where Â is the trailing
            //     block with the panel's pending corrections applied:
            //     Â·v = A[t.., t..]·v − V(Wᵀv) − W(Vᵀv).
            if tau != 0.0 {
                let nt = n - t;
                let yv = &mut y[..nt];
                yv.fill(0.0);
                {
                    let v = &v_pan.col(jj)[t..n];
                    for (lv, &vl) in v.iter().enumerate() {
                        if vl != 0.0 {
                            let acol = &z.col(t + lv)[t..n];
                            for (yi, &ai) in yv.iter_mut().zip(acol) {
                                *yi += vl * ai;
                            }
                        }
                    }
                }
                let mut wtv = [0.0f64; NB];
                let mut vtv = [0.0f64; NB];
                for p in 0..jj {
                    let v = &v_pan.col(jj)[t..n];
                    let wcol = &w_pan.col(p)[t..n];
                    let vcol = &v_pan.col(p)[t..n];
                    let (mut sw, mut sv) = (0.0f64, 0.0f64);
                    for ((&vi, &wi), &xi) in vcol.iter().zip(wcol).zip(v) {
                        sw += wi * xi;
                        sv += vi * xi;
                    }
                    wtv[p] = sw;
                    vtv[p] = sv;
                }
                for p in 0..jj {
                    let (sw, sv) = (wtv[p], vtv[p]);
                    if sw != 0.0 || sv != 0.0 {
                        let wcol = &w_pan.col(p)[t..n];
                        let vcol = &v_pan.col(p)[t..n];
                        for ((yi, &vi), &wi) in yv.iter_mut().zip(vcol).zip(wcol) {
                            *yi -= vi * sw + wi * sv;
                        }
                    }
                }
                for yi in yv.iter_mut() {
                    *yi *= tau;
                }
                let v = &v_pan.col(jj)[t..n];
                let wv: f64 = yv.iter().zip(v).map(|(&a, &b)| a * b).sum();
                let corr = -0.5 * tau * wv;
                let wcol = w_pan.col_mut(jj);
                wcol[..t].fill(0.0);
                for ((wi, &yi), &vi) in wcol[t..n].iter_mut().zip(yv.iter()).zip(v) {
                    *wi = yi + corr * vi;
                }
            } else {
                w_pan.col_mut(jj).fill(0.0);
            }
        }

        // Panel done: rank-2·nb trailing update via GEMM,
        // A[t0.., t0..] −= V₂·W₂ᵀ + W₂·V₂ᵀ (both triangles — keeping
        // the full matrix symmetric lets the next panel's matvec stream
        // whole contiguous columns).
        let t0 = j0 + nb;
        let nt = n - t0;
        if nt > 0 {
            let v2 = Matrix::from_fn(nt, nb, |i, p| v_pan[(t0 + i, p)]);
            let w2 = Matrix::from_fn(nt, nb, |i, p| w_pan[(t0 + i, p)]);
            let mut pm = Matrix::zeros(nt, nt);
            dgemm(Trans::No, Trans::Yes, 1.0, &v2, &w2, 0.0, &mut pm);
            dgemm(Trans::No, Trans::Yes, 1.0, &w2, &v2, 1.0, &mut pm);
            for l in 0..nt {
                let pc = &pm.col(l)[..nt];
                let ac = &mut z.col_mut(t0 + l)[t0..n];
                for (ai, &pi) in ac.iter_mut().zip(pc) {
                    *ai -= pi;
                }
            }
        }
        j0 += nb;
    }
    d[n - 1] = z[(n - 1, n - 1)];

    // ---- Accumulate Q = H₀·H₁···H_{n−3} (dorgtr shape) ----
    //
    // Panels are applied in reverse order: Q ← (I − V·T·Vᵀ)·Q with the
    // forward-columnwise compact-WY T of each panel (dlarft). Each
    // application touches only rows r0.. of Q: three GEMMs
    // X = V₂ᵀQ₂, Y = T·X, Q₂ −= V₂·Y.
    let mut q = Matrix::eye(n);
    let mut j0 = ((n - 2) / NB) * NB;
    loop {
        let nb = NB.min(n - 1 - j0);
        let r0 = j0 + 1;
        let nt = n - r0;
        // V₂ (nt×nb) from the reflectors stored in z's lower columns;
        // column jj starts at local row jj (explicit unit element).
        let v2 = Matrix::from_fn(
            nt,
            nb,
            |i, jj| {
                if i < jj {
                    0.0
                } else {
                    z[(r0 + i, j0 + jj)]
                }
            },
        );
        // Forward-columnwise T (nb×nb upper triangular):
        // T[j,j] = τ_j, T[:j, j] = −τ_j·T[:j, :j]·(V₂[:, :j]ᵀ·V₂[:, j]).
        let mut tm = Matrix::zeros(nb, nb);
        for jj in 0..nb {
            let tau = taus[j0 + jj];
            if tau == 0.0 {
                continue;
            }
            let mut tmp = [0.0f64; NB];
            let cj = &v2.col(jj)[..nt];
            for (p, slot) in tmp.iter_mut().enumerate().take(jj) {
                let cp = &v2.col(p)[..nt];
                // Both columns are zero above row jj, so the overlap
                // starts there.
                let mut s = 0.0;
                for (&x, &yv) in cp[jj..].iter().zip(&cj[jj..]) {
                    s += x * yv;
                }
                *slot = s;
            }
            for r in 0..jj {
                let mut s = 0.0;
                for p in r..jj {
                    s += tm[(r, p)] * tmp[p];
                }
                tm[(r, jj)] = -tau * s;
            }
            tm[(jj, jj)] = tau;
        }
        // Q₂ ← Q₂ − V₂·(T·(V₂ᵀ·Q₂)) on rows r0.. of Q.
        let q2src = Matrix::from_fn(nt, n, |i, jc| q[(r0 + i, jc)]);
        let mut x = Matrix::zeros(nb, n);
        dgemm(Trans::Yes, Trans::No, 1.0, &v2, &q2src, 0.0, &mut x);
        let mut yx = Matrix::zeros(nb, n);
        dgemm(Trans::No, Trans::No, 1.0, &tm, &x, 0.0, &mut yx);
        let mut q2 = q2src;
        dgemm(Trans::No, Trans::No, -1.0, &v2, &yx, 1.0, &mut q2);
        for jc in 0..n {
            let src = &q2.col(jc)[..nt];
            let dst = &mut q.col_mut(jc)[r0..n];
            dst.copy_from_slice(src);
        }
        if j0 == 0 {
            break;
        }
        j0 -= NB;
    }

    Tridiag { q, d, e }
}

/// Householder reduction of the symmetric matrix in `z` to tridiagonal
/// form (d = diagonal, e = sub-diagonal); `z` is replaced by the
/// accumulated orthogonal transformation (Numerical-Recipes `tred2`).
fn tred2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let upd = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= upd;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let upd = g * z[(k, i)];
                    z[(k, j)] -= upd;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// Implicit-shift QL on the tridiagonal (d, e), rotations accumulated
/// into `z` (Numerical-Recipes `tqli`). Returns an error if any single
/// eigenvalue needs more than 50 implicit QL sweeps (unreachable for
/// finite symmetric input; NaN poisoning is the practical trigger).
fn tqli(d: &mut [f64], e: &mut [f64], z: &mut Matrix) -> Result<(), TqliError> {
    let n = d.len();
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a negligible sub-diagonal element.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(TqliError { index: l });
            }
            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r } else { -r };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if r == 0.0 && m > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::eigh_jacobi;

    fn rand_sym(n: usize, seed: u64) -> Matrix {
        let mut st = seed.wrapping_mul(6364136223846793005).wrapping_add(11);
        let raw = Matrix::from_fn(n, n, |_, _| {
            st = st
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((st >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        Matrix::from_fn(n, n, |i, j| raw[(i, j)] + raw[(j, i)])
    }

    fn check(a: &Matrix) {
        let n = a.nrows();
        let e = eigh_tridiag(a);
        // Residual ‖A V − V Λ‖.
        let av = a.matmul(&e.eigenvectors);
        let vl = Matrix::from_fn(n, n, |i, j| e.eigenvectors[(i, j)] * e.eigenvalues[j]);
        assert!(
            av.max_abs_diff(&vl) < 1e-9 * (1.0 + n as f64),
            "residual too large"
        );
        // Orthonormality.
        let vtv = e.eigenvectors.t_matmul(&e.eigenvectors);
        assert!(vtv.max_abs_diff(&Matrix::eye(n)) < 1e-10);
        // Ascending order.
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn small_and_medium_random() {
        for &(n, seed) in &[(1usize, 1u64), (2, 2), (3, 3), (8, 4), (25, 5), (60, 6)] {
            check(&rand_sym(n, seed));
        }
    }

    #[test]
    fn agrees_with_jacobi() {
        for &(n, seed) in &[(6usize, 9u64), (17, 10), (33, 11)] {
            let a = rand_sym(n, seed);
            let e1 = eigh_tridiag(&a);
            let e2 = eigh_jacobi(&a);
            for (x, y) in e1.eigenvalues.iter().zip(&e2.eigenvalues) {
                assert!((x - y).abs() < 1e-9, "{x} vs {y} (n={n})");
            }
        }
    }

    #[test]
    fn degenerate_eigenvalues() {
        // Identity ⊕ shifted identity exercises exactly repeated roots.
        let n = 10;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i != j {
                0.0
            } else if i < 5 {
                2.0
            } else {
                -1.0
            }
        });
        let e = eigh_tridiag(&a);
        for k in 0..5 {
            assert!((e.eigenvalues[k] + 1.0).abs() < 1e-12);
            assert!((e.eigenvalues[k + 5] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn already_tridiagonal() {
        // A Toeplitz tridiagonal matrix has analytic eigenvalues
        // d + 2·o·cos(kπ/(n+1)).
        let n = 12;
        let (dg, off) = (1.5, -0.7);
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                dg
            } else if i.abs_diff(j) == 1 {
                off
            } else {
                0.0
            }
        });
        let e = eigh_tridiag(&a);
        let mut exact: Vec<f64> = (1..=n)
            .map(|k| dg + 2.0 * off * (std::f64::consts::PI * k as f64 / (n as f64 + 1.0)).cos())
            .collect();
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (x, y) in e.eigenvalues.iter().zip(&exact) {
            assert!((x - y).abs() < 1e-11, "{x} vs {y}");
        }
    }

    /// Both reduction paths must produce a genuine factorization
    /// `A = Q·T·Qᵀ` with orthonormal Q and tridiagonal T matching (d, e).
    fn check_reduction(a: &Matrix, path: TridiagPath) {
        let n = a.nrows();
        let t = reduce_to_tridiag(path, a);
        // Q orthonormal.
        let qtq = t.q.t_matmul(&t.q);
        assert!(
            qtq.max_abs_diff(&Matrix::eye(n)) < 1e-11 * (1.0 + n as f64),
            "Q not orthonormal ({path:?}, n={n})"
        );
        // Qᵀ·A·Q equals tridiag(d, e) — including zero off-tridiagonal.
        let aq = a.matmul(&t.q);
        let qtaq = t.q.t_matmul(&aq);
        let tm = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                t.d[i]
            } else if i == j + 1 {
                t.e[i]
            } else if j == i + 1 {
                t.e[j]
            } else {
                0.0
            }
        });
        let diff = qtaq.max_abs_diff(&tm);
        assert!(
            diff < 1e-10 * (1.0 + n as f64),
            "QᵀAQ != T: diff {diff} ({path:?}, n={n})"
        );
    }

    #[test]
    fn blocked_and_scalar_reductions_factorize() {
        // Sizes straddling the panel width (NB = 32) and its edges.
        for &(n, seed) in &[
            (1usize, 21u64),
            (2, 22),
            (3, 23),
            (8, 24),
            (31, 25),
            (32, 26),
            (33, 27),
            (64, 28),
            (65, 29),
            (97, 30),
        ] {
            let a = rand_sym(n, seed);
            check_reduction(&a, TridiagPath::Scalar);
            check_reduction(&a, TridiagPath::Blocked);
        }
    }

    #[test]
    fn blocked_eigh_agrees_with_jacobi() {
        for &(n, seed) in &[(40usize, 31u64), (70, 32)] {
            let a = rand_sym(n, seed);
            let e1 = eigh_tridiag_path(TridiagPath::Blocked, &a);
            let e2 = eigh_jacobi(&a);
            for (x, y) in e1.eigenvalues.iter().zip(&e2.eigenvalues) {
                assert!((x - y).abs() < 1e-9, "{x} vs {y} (n={n})");
            }
            // Eigenvectors solve the eigenproblem.
            let av = a.matmul(&e1.eigenvectors);
            let vl = Matrix::from_fn(n, n, |i, j| e1.eigenvectors[(i, j)] * e1.eigenvalues[j]);
            assert!(av.max_abs_diff(&vl) < 1e-9 * (1.0 + n as f64));
        }
    }

    #[test]
    fn blocked_handles_structured_matrices() {
        // Already-tridiagonal input: every reflector is trivial (τ = 0).
        let n = 50;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        check_reduction(&a, TridiagPath::Blocked);
        // Rank-deficient: outer product with repeated eigenvalue 0.
        let u = Matrix::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
        let low = u.matmul_t(&u);
        check_reduction(&low, TridiagPath::Blocked);
    }

    #[test]
    fn tqli_reports_nonconvergence_instead_of_panicking() {
        // NaN-poisoned tridiagonal: the shift arithmetic never produces
        // a negligible off-diagonal, so the iteration budget trips.
        let n = 4;
        let mut d = vec![1.0, f64::NAN, 2.0, 3.0];
        let mut e = vec![0.0, 0.5, 0.5, 0.5];
        let mut z = Matrix::eye(n);
        let err = tqli(&mut d, &mut e, &mut z);
        assert!(err.is_err());
        let msg = err.unwrap_err().to_string();
        assert!(msg.contains("failed to converge"), "{msg}");
    }

    #[test]
    fn eigh_tridiag_falls_back_to_jacobi_on_zero_matrix() {
        // Degenerate-but-valid input down the blocked path.
        let a = Matrix::zeros(64, 64);
        let e = eigh_tridiag_path(TridiagPath::Blocked, &a);
        assert!(e.eigenvalues.iter().all(|&w| w == 0.0));
        let vtv = e.eigenvectors.t_matmul(&e.eigenvectors);
        assert!(vtv.max_abs_diff(&Matrix::eye(64)) < 1e-12);
    }
}
