//! Level-1 (vector) kernels.
//!
//! These are the `DAXPY`-class operations whose modest memory-bound
//! throughput on the Cray-X1 (~2 GFlop/s per MSP out of cache, vs 10–11 for
//! DGEMM) is the quantitative motivation for the paper's DGEMM-based σ
//! algorithm. They are written as straightforward slice loops; LLVM
//! auto-vectorizes them, and the xsim machine model charges them at the
//! calibrated level-1 rate regardless.

/// `y += a * x`.
#[inline]
pub fn daxpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "daxpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Dot product `xᵀ y`.
#[inline]
pub fn ddot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "ddot length mismatch");
    // Four partial sums break the serial dependence chain and let LLVM use
    // packed adds; also slightly better rounding than a single accumulator.
    let mut s = [0.0f64; 4];
    let chunks = x.len() / 4;
    for k in 0..chunks {
        let i = 4 * k;
        s[0] += x[i] * y[i];
        s[1] += x[i + 1] * y[i + 1];
        s[2] += x[i + 2] * y[i + 2];
        s[3] += x[i + 3] * y[i + 3];
    }
    let mut tail = 0.0;
    for i in 4 * chunks..x.len() {
        tail += x[i] * y[i];
    }
    s[0] + s[1] + s[2] + s[3] + tail
}

/// Euclidean norm `‖x‖₂`, with scaling to avoid overflow/underflow.
pub fn dnrm2(x: &[f64]) -> f64 {
    let amax = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if amax == 0.0 || !amax.is_finite() {
        return amax;
    }
    let mut ssq = 0.0;
    for &v in x {
        let t = v / amax;
        ssq += t * t;
    }
    amax * ssq.sqrt()
}

/// `x *= a`.
#[inline]
pub fn dscal(a: f64, x: &mut [f64]) {
    for v in x {
        *v *= a;
    }
}

/// `y = x`.
#[inline]
pub fn dcopy(x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "dcopy length mismatch");
    y.copy_from_slice(x);
}

/// Sum of absolute values `‖x‖₁`.
pub fn dasum(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Index of the element with the largest absolute value (0 for empty input).
pub fn idamax(x: &[f64]) -> usize {
    let mut best = 0;
    let mut bv = f64::NEG_INFINITY;
    for (i, &v) in x.iter().enumerate() {
        if v.abs() > bv {
            bv = v.abs();
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daxpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        daxpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn ddot_handles_tail() {
        // length 7 exercises both the unrolled body and the tail
        let x: Vec<f64> = (1..=7).map(|i| i as f64).collect();
        let y: Vec<f64> = (1..=7).map(|i| (i * i) as f64).collect();
        let expect: f64 = (1..=7).map(|i| (i * i * i) as f64).sum();
        assert_eq!(ddot(&x, &y), expect);
    }

    #[test]
    fn dnrm2_scaling_safe() {
        let x = [3e300, 4e300];
        assert!((dnrm2(&x) - 5e300).abs() / 5e300 < 1e-14);
        let y = [3e-300, 4e-300];
        assert!((dnrm2(&y) - 5e-300).abs() / 5e-300 < 1e-14);
        assert_eq!(dnrm2(&[]), 0.0);
        assert_eq!(dnrm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn dscal_dcopy() {
        let mut x = [1.0, -2.0];
        dscal(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
        let mut y = [0.0, 0.0];
        dcopy(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn dasum_idamax() {
        let x = [1.0, -5.0, 3.0, 4.99];
        assert_eq!(dasum(&x), 13.99);
        assert_eq!(idamax(&x), 1);
        assert_eq!(idamax(&[]), 0);
    }
}
