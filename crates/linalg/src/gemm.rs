//! Blocked, cache-aware general matrix multiply.
//!
//! `dgemm` computes `C := alpha * op(A) * op(B) + beta * C`, the single
//! kernel the paper's σ algorithm funnels >95 % of its flops through.
//! The implementation follows the classic Goto/BLIS structure:
//!
//! * the `k` dimension is tiled by `KC`, the `m` dimension by `MC`, so the
//!   packed A panel (`MC×KC`) stays resident in cache,
//! * A and op(B) are packed into microtile-contiguous buffers, which also
//!   makes the transposed cases stride-free,
//! * an `MR×NR = 4×4` register microkernel does the flops with no bounds
//!   checks in the inner loop.
//!
//! Correctness is established by exhaustive small-size tests and property
//! tests against [`dgemm_naive`].

use crate::matrix::Matrix;

/// Transpose flag for [`dgemm`] operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

const MR: usize = 4;
const NR: usize = 4;
const MC: usize = 128;
const KC: usize = 256;

/// Reference implementation: straightforward triple loop.
///
/// `C := alpha * op(A) * op(B) + beta * C`. Used as the test oracle and as
/// the "unoptimized kernel" end of the performance ablation.
pub fn dgemm_naive(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, k, n) = check_dims(transa, transb, a, b, c);
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0;
            for l in 0..k {
                let av = match transa {
                    Trans::No => a[(i, l)],
                    Trans::Yes => a[(l, i)],
                };
                let bv = match transb {
                    Trans::No => b[(l, j)],
                    Trans::Yes => b[(j, l)],
                };
                acc += av * bv;
            }
            c[(i, j)] = alpha * acc + beta * c[(i, j)];
        }
    }
}

fn check_dims(
    transa: Trans,
    transb: Trans,
    a: &Matrix,
    b: &Matrix,
    c: &Matrix,
) -> (usize, usize, usize) {
    let (m, ka) = match transa {
        Trans::No => (a.nrows(), a.ncols()),
        Trans::Yes => (a.ncols(), a.nrows()),
    };
    let (kb, n) = match transb {
        Trans::No => (b.nrows(), b.ncols()),
        Trans::Yes => (b.ncols(), b.nrows()),
    };
    assert_eq!(ka, kb, "dgemm inner dimensions differ: {ka} vs {kb}");
    assert_eq!(c.nrows(), m, "dgemm C row count mismatch");
    assert_eq!(c.ncols(), n, "dgemm C column count mismatch");
    (m, ka, n)
}

/// Blocked matrix multiply `C := alpha * op(A) * op(B) + beta * C`.
pub fn dgemm(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, k, n) = check_dims(transa, transb, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    if beta != 1.0 {
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale(beta);
        }
    }
    if k == 0 || alpha == 0.0 {
        return;
    }

    // Packed panels, reused across blocks.
    let mut apack = vec![0.0f64; MC * KC];
    let mut bpack = vec![0.0f64; KC * n.div_ceil(NR) * NR];

    let cm = c.nrows();
    let cdata = c.as_mut_slice();

    let mut l0 = 0;
    while l0 < k {
        let kc = KC.min(k - l0);
        pack_b(transb, b, l0, kc, n, &mut bpack);
        let mut i0 = 0;
        while i0 < m {
            let mc = MC.min(m - i0);
            pack_a(transa, a, i0, mc, l0, kc, &mut apack);
            // Macro kernel: loop microtiles.
            let mut jr = 0;
            while jr < n {
                let nr = NR.min(n - jr);
                let bcol = &bpack[jr / NR * (KC * NR)..];
                let mut ir = 0;
                while ir < mc {
                    let mr = MR.min(mc - ir);
                    let atile = &apack[ir / MR * (KC * MR)..];
                    if mr == MR && nr == NR {
                        // SAFETY-free fast path: full 4×4 microtile.
                        micro_4x4(kc, alpha, atile, bcol, cdata, i0 + ir, jr, cm);
                    } else {
                        micro_edge(kc, alpha, atile, bcol, cdata, i0 + ir, jr, cm, mr, nr);
                    }
                    ir += MR;
                }
                jr += NR;
            }
            i0 += MC;
        }
        l0 += KC;
    }
}

/// Pack `mc×kc` block of op(A) starting at (i0, l0) into microtile panels:
/// panel `p` holds rows `[p*MR, p*MR+MR)` stored k-major
/// (`apack[p*KC*MR + l*MR + r]`), zero-padded in the row direction.
fn pack_a(
    transa: Trans,
    a: &Matrix,
    i0: usize,
    mc: usize,
    l0: usize,
    kc: usize,
    apack: &mut [f64],
) {
    let npanels = mc.div_ceil(MR);
    for p in 0..npanels {
        let base = p * (KC * MR);
        let rmax = MR.min(mc - p * MR);
        for l in 0..kc {
            for r in 0..MR {
                let v = if r < rmax {
                    let i = i0 + p * MR + r;
                    match transa {
                        Trans::No => a[(i, l0 + l)],
                        Trans::Yes => a[(l0 + l, i)],
                    }
                } else {
                    0.0
                };
                apack[base + l * MR + r] = v;
            }
        }
    }
}

/// Pack `kc×n` block of op(B) starting at row l0 into column microtiles:
/// panel `q` holds columns `[q*NR, q*NR+NR)` stored k-major
/// (`bpack[q*KC*NR + l*NR + s]`), zero-padded in the column direction.
fn pack_b(transb: Trans, b: &Matrix, l0: usize, kc: usize, n: usize, bpack: &mut [f64]) {
    let npanels = n.div_ceil(NR);
    for q in 0..npanels {
        let base = q * (KC * NR);
        let smax = NR.min(n - q * NR);
        for l in 0..kc {
            for s in 0..NR {
                let v = if s < smax {
                    let j = q * NR + s;
                    match transb {
                        Trans::No => b[(l0 + l, j)],
                        Trans::Yes => b[(j, l0 + l)],
                    }
                } else {
                    0.0
                };
                bpack[base + l * NR + s] = v;
            }
        }
    }
}

/// 4×4 register microkernel: `C[i0..i0+4, j0..j0+4] += alpha * Apanel * Bpanel`.
#[inline(always)]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn micro_4x4(
    kc: usize,
    alpha: f64,
    at: &[f64],
    bt: &[f64],
    c: &mut [f64],
    i0: usize,
    j0: usize,
    cm: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    // The panels are contiguous k-major tiles; index arithmetic is exact.
    for l in 0..kc {
        let ab = l * MR;
        let bb = l * NR;
        // SAFETY: `at` was packed with capacity >= kc*MR, so indices
        // ab..ab+MR are in bounds for every l < kc.
        let (a0, a1, a2, a3) = unsafe {
            (
                *at.get_unchecked(ab),
                *at.get_unchecked(ab + 1),
                *at.get_unchecked(ab + 2),
                *at.get_unchecked(ab + 3),
            )
        };
        for s in 0..NR {
            // SAFETY: `bt` was packed with capacity >= kc*NR; s < NR.
            let bv = unsafe { *bt.get_unchecked(bb + s) };
            acc[0][s] += a0 * bv;
            acc[1][s] += a1 * bv;
            acc[2][s] += a2 * bv;
            acc[3][s] += a3 * bv;
        }
    }
    for s in 0..NR {
        let cbase = (j0 + s) * cm + i0;
        for r in 0..MR {
            // SAFETY: caller guarantees the full 4×4 tile is inside C.
            unsafe {
                *c.get_unchecked_mut(cbase + r) += alpha * acc[r][s];
            }
        }
    }
}

/// Edge microkernel for partial tiles (mr<4 or nr<4); bounds-checked.
#[allow(clippy::too_many_arguments)]
fn micro_edge(
    kc: usize,
    alpha: f64,
    at: &[f64],
    bt: &[f64],
    c: &mut [f64],
    i0: usize,
    j0: usize,
    cm: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for l in 0..kc {
        let ab = l * MR;
        let bb = l * NR;
        for r in 0..mr {
            let av = at[ab + r];
            for s in 0..nr {
                acc[r][s] += av * bt[bb + s];
            }
        }
    }
    for s in 0..nr {
        for r in 0..mr {
            c[(j0 + s) * cm + i0 + r] += alpha * acc[r][s];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_mat(nr: usize, nc: usize, seed: u64) -> Matrix {
        // Small deterministic LCG so the tests need no external RNG.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(nr, nc, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
    }

    fn check_case(
        transa: Trans,
        transb: Trans,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        beta: f64,
    ) {
        let a = match transa {
            Trans::No => rand_mat(m, k, 1 + m as u64),
            Trans::Yes => rand_mat(k, m, 2 + n as u64),
        };
        let b = match transb {
            Trans::No => rand_mat(k, n, 3 + k as u64),
            Trans::Yes => rand_mat(n, k, 4 + m as u64 + n as u64),
        };
        let c0 = rand_mat(m, n, 99);
        let mut c_fast = c0.clone();
        let mut c_ref = c0.clone();
        dgemm(transa, transb, alpha, &a, &b, beta, &mut c_fast);
        dgemm_naive(transa, transb, alpha, &a, &b, beta, &mut c_ref);
        let diff = c_fast.max_abs_diff(&c_ref);
        assert!(
            diff < 1e-12 * (k.max(1) as f64),
            "diff {diff} for m={m} n={n} k={k} {transa:?} {transb:?}"
        );
    }

    #[test]
    fn matches_naive_small_exhaustive() {
        for &m in &[1usize, 2, 3, 4, 5, 7] {
            for &n in &[1usize, 2, 4, 5, 9] {
                for &k in &[0usize, 1, 3, 8] {
                    check_case(Trans::No, Trans::No, m, n, k, 1.0, 0.0);
                }
            }
        }
    }

    #[test]
    fn matches_naive_transposes() {
        for &(ta, tb) in &[
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            check_case(ta, tb, 13, 11, 17, 1.0, 0.0);
            check_case(ta, tb, 5, 6, 7, -0.5, 2.0);
        }
    }

    #[test]
    fn matches_naive_blocked_sizes() {
        // Cross the MC/KC block boundaries.
        check_case(Trans::No, Trans::No, 130, 37, 260, 1.0, 0.0);
        check_case(Trans::No, Trans::No, 128, 16, 256, 2.0, 1.0);
        check_case(Trans::Yes, Trans::No, 129, 5, 257, 1.0, -1.0);
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = Matrix::eye(3);
        let b = rand_mat(3, 3, 7);
        let mut c = rand_mat(3, 3, 8);
        let c0 = c.clone();
        // alpha = 0, beta = 1: C unchanged even with garbage dims in k loop
        dgemm(Trans::No, Trans::No, 0.0, &a, &b, 1.0, &mut c);
        assert_eq!(c, c0);
        // alpha = 1, beta = 0: C = A*B = B
        dgemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&b) < 1e-15);
    }

    #[test]
    fn empty_dims() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 0);
        let mut c = Matrix::zeros(0, 0);
        dgemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
        // k = 0 path: C scaled by beta only.
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::eye(2);
        dgemm(Trans::No, Trans::No, 1.0, &a, &b, 3.0, &mut c);
        assert_eq!(c[(0, 0)], 3.0);
        assert_eq!(c[(0, 1)], 0.0);
    }
}
