//! Blocked, cache-aware, multithreaded general matrix multiply.
//!
//! `dgemm` computes `C := alpha * op(A) * op(B) + beta * C`, the single
//! kernel the paper's σ algorithm funnels >95 % of its flops through.
//! The implementation follows the full Goto/BLIS five-loop structure:
//!
//! * the `n` dimension is tiled by `NC` (macro column chunks), the `k`
//!   dimension by `KC`, the `m` dimension by `MC`, so the packed A block
//!   (`MC×KC`) stays cache-resident while a `KC×NC` slice of packed B
//!   streams through,
//! * A and op(B) are packed into microtile-contiguous buffers drawn from
//!   the [`crate::arena`] scratch pool (no per-call allocation after
//!   warm-up), which also makes the transposed cases stride-free,
//! * an `MR×NR = 8×4` register microkernel does the flops with no bounds
//!   checks in the inner loop, shaped so the autovectorizer turns each
//!   row update into one 4-wide FMA,
//! * the macro kernel is parallelized over C tiles with std scoped
//!   threads: op(B) is packed once and shared read-only, each worker
//!   packs its own A blocks, and every C tile is owned by exactly one
//!   work item.
//!
//! **Determinism:** the result is bitwise identical at any thread count.
//! A C tile accumulates its `KC` blocks in ascending `l0` order inside a
//! single work item, and the per-tile arithmetic never depends on how
//! items are partitioned or scheduled — threading only changes *which*
//! thread runs an item, never the order of floating-point operations
//! within it. The `fci-linalg` property suite and the `fci-check`
//! determinism harness both assert this.
//!
//! Small multiplies (the mixed-spin `V_K·D` products are often tiny)
//! skip packing and threading entirely via an unpacked fast path; the
//! crossover is set from the in-repo `gemm_sweep --autotune` bench.
//!
//! **Persistent packed operands:** when the same A operand multiplies
//! many different B's (the σ build reuses its coupling matrices every
//! Davidson iteration), [`PackedA::pack`] packs op(A) once into an
//! arena-backed handle and [`dgemm_prepacked`] consumes it directly,
//! skipping the per-call `pack_a` entirely. The persistent layout is
//! byte-identical to what the on-the-fly path feeds the microkernel
//! (tight `kc·MR` panels), so results are bitwise equal to [`dgemm`].
//! [`gemm_prefers_packed`] tells callers whether a shape would take the
//! packed path at all — below the crossover the handle would be dead
//! weight.
//!
//! A mixed-precision variant ([`GemmPath::PackedF32`]) packs both
//! operands in f32 — halving pack bandwidth and cache footprint — while
//! accumulating in f64. It is measured in `gemm_sweep` but never chosen
//! by [`GemmPath::Auto`]: the f32 rounding of the inputs costs ~1e-7
//! relative accuracy, unacceptable for production σ builds.
//!
//! Correctness is established by exhaustive small-size tests and property
//! tests against [`dgemm_naive`].

use crate::arena;
use crate::matrix::Matrix;
use std::sync::OnceLock;

/// Transpose flag for [`dgemm`] operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Microkernel rows (one panel of packed A).
const MR: usize = 8;
/// Microkernel columns (one panel of packed B).
const NR: usize = 4;
/// Rows per packed A block (multiple of `MR`; `MC·KC` doubles ≈ 256 KB,
/// sized to sit in L2 while a B slice streams through L1).
const MC: usize = 128;
/// Depth per packed block.
const KC: usize = 256;
/// Columns per macro chunk of packed B (multiple of `NR`).
const NC: usize = 512;

/// Below this many flops (`2·m·n·k`) the unpacked small path wins; the
/// `gemm_sweep --autotune` bench measures the crossover between 48³
/// (small still ahead) and 56³ (packed ahead) on the dev host, so the
/// threshold sits at the midpoint 52³ (see DESIGN.md §11).
const SMALL_FLOPS: usize = 2 * 52 * 52 * 52;

/// Do not spawn worker threads unless the multiply has at least this
/// many flops (thread startup ≈ tens of µs; 2·96³ ≈ 1.8 Mflop runs in
/// that same range single-threaded, so smaller problems stay serial).
const PAR_MIN_FLOPS: usize = 2 * 96 * 96 * 96;

/// Kernel-path override, used by the autotune/sweep benches to measure
/// each path in isolation. Production code uses [`GemmPath::Auto`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmPath {
    /// Pick small vs packed by the measured flop crossover.
    Auto,
    /// Force the unpacked small-matrix path.
    Small,
    /// Force the packed blocked path.
    Packed,
    /// Force the mixed-precision packed path: operands packed in f32,
    /// accumulation in f64. Serial, bench-only — never chosen by `Auto`
    /// (see module docs); `gemm_sweep` measures it against `Packed`.
    PackedF32,
}

/// Default GEMM worker-thread count: `FCIX_GEMM_THREADS` if set (≥1),
/// otherwise the host's available parallelism. Resolved once.
pub fn gemm_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("FCIX_GEMM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Reference implementation: straightforward triple loop.
///
/// `C := alpha * op(A) * op(B) + beta * C`. Used as the test oracle and as
/// the "unoptimized kernel" end of the performance ablation.
pub fn dgemm_naive(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, k, n) = check_dims(transa, transb, a, b, c);
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0;
            for l in 0..k {
                let av = match transa {
                    Trans::No => a[(i, l)],
                    Trans::Yes => a[(l, i)],
                };
                let bv = match transb {
                    Trans::No => b[(l, j)],
                    Trans::Yes => b[(j, l)],
                };
                acc += av * bv;
            }
            c[(i, j)] = alpha * acc + beta * c[(i, j)];
        }
    }
}

fn check_dims(
    transa: Trans,
    transb: Trans,
    a: &Matrix,
    b: &Matrix,
    c: &Matrix,
) -> (usize, usize, usize) {
    let (m, ka) = match transa {
        Trans::No => (a.nrows(), a.ncols()),
        Trans::Yes => (a.ncols(), a.nrows()),
    };
    let (kb, n) = match transb {
        Trans::No => (b.nrows(), b.ncols()),
        Trans::Yes => (b.ncols(), b.nrows()),
    };
    assert_eq!(ka, kb, "dgemm inner dimensions differ: {ka} vs {kb}");
    assert_eq!(c.nrows(), m, "dgemm C row count mismatch");
    assert_eq!(c.ncols(), n, "dgemm C column count mismatch");
    (m, ka, n)
}

/// Blocked matrix multiply `C := alpha * op(A) * op(B) + beta * C`,
/// using the default worker-thread count ([`gemm_threads`]).
pub fn dgemm(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    dgemm_with_threads(gemm_threads(), transa, transb, alpha, a, b, beta, c);
}

/// [`dgemm`] with an explicit worker-thread count.
///
/// The result is bitwise identical for every `nthreads ≥ 1` (see the
/// module docs for the argument); `nthreads` only bounds how many std
/// scoped threads the macro kernel may use.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_with_threads(
    nthreads: usize,
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    dgemm_path(
        GemmPath::Auto,
        nthreads,
        transa,
        transb,
        alpha,
        a,
        b,
        beta,
        c,
    );
}

/// [`dgemm`] with an explicit kernel path and thread count (bench hook).
#[allow(clippy::too_many_arguments)]
pub fn dgemm_path(
    path: GemmPath,
    nthreads: usize,
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, k, n) = check_dims(transa, transb, a, b, c);
    // Fast exits in BLAS order: an empty C means nothing at all to do —
    // the `beta` pass must not run (and `scale` on an empty matrix would
    // be wasted work anyway).
    if m == 0 || n == 0 {
        return;
    }
    // `C := beta·C` happens even when the product term vanishes
    // (`alpha == 0` or `k == 0`): that is the BLAS contract. `beta == 1`
    // skips the pass entirely — C must not be touched.
    if beta != 1.0 {
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale(beta);
        }
    }
    if k == 0 || alpha == 0.0 {
        return;
    }
    let small = match path {
        GemmPath::Auto => 2 * m * n * k <= SMALL_FLOPS,
        GemmPath::Small => true,
        GemmPath::Packed | GemmPath::PackedF32 => false,
    };
    // Host-time probe for per-shape throughput metrics; one relaxed
    // atomic load when nobody is observing. This is real (host) kernel
    // time by design — linalg sits below the simulated-clock layer.
    let timer = crate::probe::active().then(std::time::Instant::now); // lint: allow(wallclock) — real host kernel time by design
    if small {
        small_dgemm(transa, transb, alpha, a, b, c, m, k, n);
    } else if path == GemmPath::PackedF32 {
        packed_dgemm_f32(transa, transb, alpha, a, b, c, m, k, n);
    } else {
        packed_dgemm(nthreads, transa, transb, alpha, a, b, c, m, k, n);
    }
    if let Some(t0) = timer {
        crate::probe::emit(m, n, k, t0.elapsed().as_secs_f64());
    }
}

// ---------------------------------------------------------------------
// Small-matrix fast path: no packing, no threads, no scratch.
// ---------------------------------------------------------------------

/// Unpacked kernel for small products. For untransposed A the inner loop
/// is an axpy over a contiguous A column (vectorizes cleanly); for
/// transposed A it is a dot product over a contiguous A column. Runs on
/// the calling thread, allocates nothing.
#[allow(clippy::too_many_arguments)]
fn small_dgemm(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    m: usize,
    k: usize,
    n: usize,
) {
    let cm = c.nrows();
    let cs = c.as_mut_slice();
    let ad = a.as_slice();
    let am = a.nrows();
    let bd = b.as_slice();
    let bm = b.nrows();
    match transa {
        Trans::No => {
            // C[:,j] += Σ_l (alpha·op(B)[l,j]) · A[:,l]
            for j in 0..n {
                let cj = &mut cs[j * cm..j * cm + m];
                for l in 0..k {
                    let bv = match transb {
                        Trans::No => bd[l + j * bm],
                        Trans::Yes => bd[j + l * bm],
                    };
                    let w = alpha * bv;
                    if w == 0.0 {
                        continue;
                    }
                    let al = &ad[l * am..l * am + m];
                    for (ci, &ai) in cj.iter_mut().zip(al) {
                        *ci = fmadd(w, ai, *ci);
                    }
                }
            }
        }
        Trans::Yes => {
            // C[i,j] += alpha · ⟨A[:,i], op(B)[:,j]⟩ (A column contiguous).
            for j in 0..n {
                for i in 0..m {
                    let acol = &ad[i * am..i * am + k];
                    let mut acc = 0.0;
                    match transb {
                        Trans::No => {
                            let bcol = &bd[j * bm..j * bm + k];
                            for (&x, &y) in acol.iter().zip(bcol) {
                                acc = fmadd(x, y, acc);
                            }
                        }
                        Trans::Yes => {
                            for (l, &x) in acol.iter().enumerate() {
                                acc = fmadd(x, bd[j + l * bm], acc);
                            }
                        }
                    }
                    cs[j * cm + i] += alpha * acc;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Packed blocked path (Goto/BLIS five-loop structure, threaded).
// ---------------------------------------------------------------------

/// Raw-pointer view of the C buffer shared by worker threads.
///
/// Every work item owns a disjoint set of C tiles (a row block × a
/// column chunk), so no element is ever written by two threads; debug
/// builds bounds-check every store.
#[derive(Clone, Copy)]
struct COut {
    ptr: *mut f64,
    len: usize,
}

// SAFETY: work items never write overlapping C elements (each tile is
// owned by exactly one item, and items are partitioned over threads).
unsafe impl Send for COut {}
// SAFETY: as above — concurrent access is to disjoint elements only.
unsafe impl Sync for COut {}

impl COut {
    /// Accumulate `v` into element `idx`.
    ///
    /// # Safety
    /// `idx < self.len`, and no other thread writes `idx` concurrently.
    #[inline(always)]
    // SAFETY: contract documented above; the body's only unsafe op is
    // the raw-pointer accumulate that contract covers.
    unsafe fn add(self, idx: usize, v: f64) {
        debug_assert!(idx < self.len);
        // SAFETY: caller contract (disjoint-tile ownership).
        unsafe { *self.ptr.add(idx) += v };
    }
}

/// One unit of macro-kernel work: C rows `i0..i0+mc` × B panels
/// `q_lo..q_hi` (each panel is `NR` columns).
#[derive(Clone, Copy)]
struct WorkItem {
    i0: usize,
    mc: usize,
    q_lo: usize,
    q_hi: usize,
}

/// Work-item partition for the threaded macro kernel: MC row blocks ×
/// column chunks of B panels. Shared by the on-the-fly and prepacked
/// paths so both produce identical tile ownership — and therefore an
/// identical per-tile summation order (the bitwise-equality contract
/// between [`dgemm`] and [`dgemm_prepacked`]).
struct Plan {
    mblocks: usize,
    npanels: usize,
    nchunks: usize,
    nitems: usize,
    nt: usize,
}

fn plan(m: usize, n: usize, k: usize, nthreads: usize) -> Plan {
    // The base chunking follows NC; when that yields fewer items than
    // threads, chunks are split further (per-tile arithmetic — and hence
    // the result — is independent of the partition; see module docs).
    let npanels = n.div_ceil(NR);
    let mblocks = m.div_ceil(MC);
    let nthreads = nthreads.max(1);
    let par = nthreads > 1 && 2 * m * n * k >= PAR_MIN_FLOPS;
    let target_items = if par { nthreads } else { 1 };
    let mut nchunks = n.div_ceil(NC);
    if mblocks * nchunks < target_items {
        nchunks = npanels.min(target_items.div_ceil(mblocks));
    }
    let nitems = mblocks * nchunks;
    let nt = if par { nthreads.min(nitems) } else { 1 };
    Plan {
        mblocks,
        npanels,
        nchunks,
        nitems,
        nt,
    }
}

impl Plan {
    /// Work item `idx`: row block `idx % mblocks` of column chunk
    /// `idx / mblocks`. Chunk boundaries round-robin the B panels
    /// evenly; a chunk can be empty only when `nchunks > npanels`.
    fn item(&self, idx: usize, m: usize) -> WorkItem {
        let ci = idx / self.mblocks;
        let ib = idx % self.mblocks;
        let i0 = ib * MC;
        WorkItem {
            i0,
            mc: MC.min(m - i0),
            q_lo: ci * self.npanels / self.nchunks,
            q_hi: (ci + 1) * self.npanels / self.nchunks,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn packed_dgemm(
    nthreads: usize,
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    m: usize,
    k: usize,
    n: usize,
) {
    // Pack all of op(B) once, shared read-only by every worker. Panel
    // `q` holds columns `[q·NR, q·NR+NR)` k-major with stride NR
    // (`bpack[q·k·NR + l·NR + s]`), zero-padded in the column direction.
    let npanels = n.div_ceil(NR);
    let mut bguard = arena::acquire(npanels * k * NR);
    let bpack: &mut [f64] = bguard.as_mut_slice();
    pack_b(transb, b, k, n, bpack);
    let bpack: &[f64] = bpack;

    let cm = c.nrows();
    let cs = c.as_mut_slice();
    let cout = COut {
        ptr: cs.as_mut_ptr(),
        len: cs.len(),
    };

    // Work items are enumerated by index (never materialized, so this
    // path stays allocation-free).
    let pl = plan(m, n, k, nthreads);
    if pl.nt <= 1 {
        let mut aguard = arena::acquire(MC * KC);
        for idx in 0..pl.nitems {
            let it = pl.item(idx, m);
            if it.q_lo < it.q_hi {
                run_item(
                    transa,
                    a,
                    alpha,
                    bpack,
                    k,
                    n,
                    cout,
                    cm,
                    it,
                    aguard.as_mut_slice(),
                );
            }
        }
    } else {
        std::thread::scope(|scope| {
            for t in 0..pl.nt {
                let pl = &pl;
                scope.spawn(move || {
                    // Per-thread A packing buffer from the shared pool.
                    let mut aguard = arena::acquire(MC * KC);
                    let apack = aguard.as_mut_slice();
                    let mut idx = t;
                    while idx < pl.nitems {
                        let it = pl.item(idx, m);
                        if it.q_lo < it.q_hi {
                            run_item(transa, a, alpha, bpack, k, n, cout, cm, it, apack);
                        }
                        idx += pl.nt;
                    }
                });
            }
        });
    }
}

/// Macro kernel for one work item: loop KC blocks in ascending `l0`,
/// pack the A block, then sweep the item's B panels and MR tiles.
#[allow(clippy::too_many_arguments)]
fn run_item(
    transa: Trans,
    a: &Matrix,
    alpha: f64,
    bpack: &[f64],
    k: usize,
    n: usize,
    cout: COut,
    cm: usize,
    it: WorkItem,
    apack: &mut [f64],
) {
    let mut l0 = 0;
    while l0 < k {
        let kc = KC.min(k - l0);
        pack_a(transa, a, it.i0, it.mc, l0, kc, apack);
        sweep_panels(alpha, apack, bpack, k, n, l0, kc, cout, cm, it);
        l0 += KC;
    }
}

/// Inner two loops of the macro kernel for one packed KC block: sweep
/// the item's B panels × MR tiles. `apack` holds the item's A rows for
/// depths `[l0, l0+kc)` in tight `kc·MR` panels (on-the-fly or a
/// [`PackedA`] block — byte-identical layouts, so both callers hit the
/// microkernel with the same inputs in the same order).
#[allow(clippy::too_many_arguments)]
fn sweep_panels(
    alpha: f64,
    apack: &[f64],
    bpack: &[f64],
    k: usize,
    n: usize,
    l0: usize,
    kc: usize,
    cout: COut,
    cm: usize,
    it: WorkItem,
) {
    for q in it.q_lo..it.q_hi {
        let jr = q * NR;
        let nr = NR.min(n - jr);
        let bt = &bpack[q * (k * NR) + l0 * NR..][..kc * NR];
        let mut ir = 0;
        while ir < it.mc {
            let mr = MR.min(it.mc - ir);
            let at = &apack[(ir / MR) * (kc * MR)..][..kc * MR];
            if mr == MR && nr == NR {
                micro_8x4(kc, alpha, at, bt, cout, it.i0 + ir, jr, cm);
            } else {
                micro_edge(kc, alpha, at, bt, cout, it.i0 + ir, jr, cm, mr, nr);
            }
            ir += MR;
        }
    }
}

/// Pack an `mc×kc` block of op(A) starting at (i0, l0) into microtile
/// panels: panel `p` holds rows `[p·MR, p·MR+MR)` stored k-major
/// (`apack[p·kc·MR + l·MR + r]`), zero-padded in the row direction.
/// Panels are **tight** (stride `kc·MR`, not `KC·MR`), which is what
/// lets [`PackedA`] store all KC stripes of op(A) back to back with a
/// purely arithmetic offset.
fn pack_a(
    transa: Trans,
    a: &Matrix,
    i0: usize,
    mc: usize,
    l0: usize,
    kc: usize,
    apack: &mut [f64],
) {
    let npanels = mc.div_ceil(MR);
    for p in 0..npanels {
        let base = p * (kc * MR);
        let rmax = MR.min(mc - p * MR);
        for l in 0..kc {
            for r in 0..MR {
                let v = if r < rmax {
                    let i = i0 + p * MR + r;
                    match transa {
                        Trans::No => a[(i, l0 + l)],
                        Trans::Yes => a[(l0 + l, i)],
                    }
                } else {
                    0.0
                };
                apack[base + l * MR + r] = v;
            }
        }
    }
}

/// Pack all of op(B) (`k×n`) into column microtiles: panel `q` holds
/// columns `[q·NR, q·NR+NR)` stored k-major with stride NR
/// (`bpack[q·k·NR + l·NR + s]`), zero-padded in the column direction.
fn pack_b(transb: Trans, b: &Matrix, k: usize, n: usize, bpack: &mut [f64]) {
    let npanels = n.div_ceil(NR);
    for q in 0..npanels {
        let base = q * (k * NR);
        let smax = NR.min(n - q * NR);
        for l in 0..k {
            for s in 0..NR {
                let v = if s < smax {
                    let j = q * NR + s;
                    match transb {
                        Trans::No => b[(l, j)],
                        Trans::Yes => b[(j, l)],
                    }
                } else {
                    0.0
                };
                bpack[base + l * NR + s] = v;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Persistent packed A operands.
// ---------------------------------------------------------------------

/// Whether [`dgemm`]'s auto dispatch would take the packed path for an
/// `m×n×k` product — i.e. whether preparing a [`PackedA`] for this
/// shape can pay off at all. Below the crossover `dgemm` uses the
/// unpacked small path, which never reads a packed operand, so a handle
/// would be dead weight.
#[inline]
pub fn gemm_prefers_packed(m: usize, n: usize, k: usize) -> bool {
    m > 0 && n > 0 && k > 0 && 2 * m * n * k > SMALL_FLOPS
}

/// op(A) packed once into the microkernel layout, for reuse across many
/// [`dgemm_prepacked`] calls.
///
/// Layout: KC stripes back to back. Stripe `l0` (a multiple of `KC`,
/// depth `kc = min(KC, k−l0)`) occupies `padded_m·kc` doubles starting
/// at offset `padded_m·l0`, where `padded_m = ⌈m/MR⌉·MR` — valid
/// because every stripe before the last has depth exactly `KC`. Within
/// a stripe, row panel `p` sits at `p·kc·MR`, exactly as [`pack_a`]
/// lays it out. The buffer comes from the [`crate::arena`] pool and
/// returns there on drop.
///
/// The handle borrows nothing: it is an owned snapshot of op(A) at pack
/// time. Callers caching one across solves must invalidate it when the
/// source matrix changes (the σ caches key on `Hamiltonian::id`).
pub struct PackedA {
    m: usize,
    k: usize,
    guard: arena::ScratchGuard,
    packs: usize,
}

impl PackedA {
    /// Pack all of op(A). One pass over the source; the returned handle
    /// feeds [`dgemm_prepacked`] any number of times.
    pub fn pack(transa: Trans, a: &Matrix) -> PackedA {
        let (m, k) = match transa {
            Trans::No => (a.nrows(), a.ncols()),
            Trans::Yes => (a.ncols(), a.nrows()),
        };
        let padded_m = m.div_ceil(MR) * MR;
        let mut guard = arena::acquire(padded_m * k);
        let buf = guard.as_mut_slice();
        let mut l0 = 0;
        while l0 < k {
            let kc = KC.min(k - l0);
            pack_a(
                transa,
                a,
                0,
                m,
                l0,
                kc,
                &mut buf[padded_m * l0..padded_m * (l0 + kc)],
            );
            l0 += KC;
        }
        PackedA {
            m,
            k,
            guard,
            packs: 1,
        }
    }

    /// Rows of op(A).
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Depth (columns of op(A)).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// How many times this operand has been packed (always 1 for a live
    /// handle — the repack-elimination tests sum this over a cache to
    /// assert each operand was packed exactly once per lifetime).
    #[inline]
    pub fn packs(&self) -> usize {
        self.packs
    }

    /// Heap footprint of the packed buffer in bytes (cache budgeting).
    #[inline]
    pub fn bytes(&self) -> usize {
        self.m.div_ceil(MR) * MR * self.k * std::mem::size_of::<f64>()
    }

    /// The packed panels covering rows `i0..i0+mc` of the KC stripe at
    /// depth `l0` (both MR/KC-aligned by construction of the work plan).
    #[inline]
    fn block(&self, i0: usize, mc: usize, l0: usize, kc: usize) -> &[f64] {
        let padded_m = self.m.div_ceil(MR) * MR;
        let base = padded_m * l0 + (i0 / MR) * (kc * MR);
        &self.guard.as_slice()[base..base + mc.div_ceil(MR) * (kc * MR)]
    }
}

/// `C := alpha · packed(A) · op(B) + beta · C` with a pre-packed A.
///
/// Identical semantics, partition, and per-tile summation order to
/// [`dgemm_with_threads`] on the packed path — the result is **bitwise
/// equal** at every thread count — but the per-call A packing traffic is
/// gone; only op(B) is packed. This is the σ-build hot call: the same
/// coupling operand multiplies a fresh B every Davidson iteration.
pub fn dgemm_prepacked(
    nthreads: usize,
    alpha: f64,
    pa: &PackedA,
    transb: Trans,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, k) = (pa.m, pa.k);
    let (kb, n) = match transb {
        Trans::No => (b.nrows(), b.ncols()),
        Trans::Yes => (b.ncols(), b.nrows()),
    };
    assert_eq!(
        k, kb,
        "dgemm_prepacked inner dimensions differ: {k} vs {kb}"
    );
    assert_eq!(c.nrows(), m, "dgemm_prepacked C row count mismatch");
    assert_eq!(c.ncols(), n, "dgemm_prepacked C column count mismatch");
    // Same fast-exit / beta-pass ordering as `dgemm_path` (BLAS contract).
    if m == 0 || n == 0 {
        return;
    }
    if beta != 1.0 {
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale(beta);
        }
    }
    if k == 0 || alpha == 0.0 {
        return;
    }
    let timer = crate::probe::active().then(std::time::Instant::now); // lint: allow(wallclock) — real host kernel time by design

    let npanels = n.div_ceil(NR);
    let mut bguard = arena::acquire(npanels * k * NR);
    let bpack: &mut [f64] = bguard.as_mut_slice();
    pack_b(transb, b, k, n, bpack);
    let bpack: &[f64] = bpack;

    let cm = c.nrows();
    let cs = c.as_mut_slice();
    let cout = COut {
        ptr: cs.as_mut_ptr(),
        len: cs.len(),
    };

    let pl = plan(m, n, k, nthreads);
    if pl.nt <= 1 {
        for idx in 0..pl.nitems {
            let it = pl.item(idx, m);
            if it.q_lo < it.q_hi {
                run_item_prepacked(pa, alpha, bpack, k, n, cout, cm, it);
            }
        }
    } else {
        std::thread::scope(|scope| {
            for t in 0..pl.nt {
                let pl = &pl;
                scope.spawn(move || {
                    let mut idx = t;
                    while idx < pl.nitems {
                        let it = pl.item(idx, m);
                        if it.q_lo < it.q_hi {
                            run_item_prepacked(pa, alpha, bpack, k, n, cout, cm, it);
                        }
                        idx += pl.nt;
                    }
                });
            }
        });
    }

    if let Some(t0) = timer {
        crate::probe::emit(m, n, k, t0.elapsed().as_secs_f64());
    }
}

/// Macro kernel for one work item against a persistent [`PackedA`]:
/// same ascending-`l0` block loop as [`run_item`], but the A panels are
/// read straight out of the handle — no packing.
#[allow(clippy::too_many_arguments)]
fn run_item_prepacked(
    pa: &PackedA,
    alpha: f64,
    bpack: &[f64],
    k: usize,
    n: usize,
    cout: COut,
    cm: usize,
    it: WorkItem,
) {
    let mut l0 = 0;
    while l0 < k {
        let kc = KC.min(k - l0);
        let apack = pa.block(it.i0, it.mc, l0, kc);
        sweep_panels(alpha, apack, bpack, k, n, l0, kc, cout, cm, it);
        l0 += KC;
    }
}

// ---------------------------------------------------------------------
// Mixed-precision packed path (bench-only; see module docs).
// ---------------------------------------------------------------------

/// Packed blocked multiply with f32 operand packing and f64
/// accumulation. Serial (it exists to measure the memory-traffic side
/// of the precision trade, not to win races); structure mirrors the
/// five-loop f64 path with the thread plan collapsed to one item chain.
#[allow(clippy::too_many_arguments)]
fn packed_dgemm_f32(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    m: usize,
    k: usize,
    n: usize,
) {
    let npanels = n.div_ceil(NR);
    let mut bguard = arena::acquire_f32(npanels * k * NR);
    let bpack: &mut [f32] = bguard.as_mut_slice();
    pack_b_f32(transb, b, k, n, bpack);
    let bpack: &[f32] = bpack;

    let cm = c.nrows();
    let cs = c.as_mut_slice();
    let cout = COut {
        ptr: cs.as_mut_ptr(),
        len: cs.len(),
    };

    let mut aguard = arena::acquire_f32(MC * KC);
    let apack = aguard.as_mut_slice();
    let mut i0 = 0;
    while i0 < m {
        let mc = MC.min(m - i0);
        let mut l0 = 0;
        while l0 < k {
            let kc = KC.min(k - l0);
            pack_a_f32(transa, a, i0, mc, l0, kc, apack);
            for q in 0..npanels {
                let jr = q * NR;
                let nr = NR.min(n - jr);
                let bt = &bpack[q * (k * NR) + l0 * NR..][..kc * NR];
                let mut ir = 0;
                while ir < mc {
                    let mr = MR.min(mc - ir);
                    let at = &apack[(ir / MR) * (kc * MR)..][..kc * MR];
                    if mr == MR && nr == NR {
                        micro_8x4_f32(kc, alpha, at, bt, cout, i0 + ir, jr, cm);
                    } else {
                        micro_edge_f32(kc, alpha, at, bt, cout, i0 + ir, jr, cm, mr, nr);
                    }
                    ir += MR;
                }
            }
            l0 += KC;
        }
        i0 += MC;
    }
}

/// [`pack_a`] with the operand rounded to f32 (same tight `kc·MR`
/// panel layout).
fn pack_a_f32(
    transa: Trans,
    a: &Matrix,
    i0: usize,
    mc: usize,
    l0: usize,
    kc: usize,
    apack: &mut [f32],
) {
    let npanels = mc.div_ceil(MR);
    for p in 0..npanels {
        let base = p * (kc * MR);
        let rmax = MR.min(mc - p * MR);
        for l in 0..kc {
            for r in 0..MR {
                let v = if r < rmax {
                    let i = i0 + p * MR + r;
                    match transa {
                        Trans::No => a[(i, l0 + l)],
                        Trans::Yes => a[(l0 + l, i)],
                    }
                } else {
                    0.0
                };
                apack[base + l * MR + r] = v as f32;
            }
        }
    }
}

/// [`pack_b`] with the operand rounded to f32 (same panel layout).
fn pack_b_f32(transb: Trans, b: &Matrix, k: usize, n: usize, bpack: &mut [f32]) {
    let npanels = n.div_ceil(NR);
    for q in 0..npanels {
        let base = q * (k * NR);
        let smax = NR.min(n - q * NR);
        for l in 0..k {
            for s in 0..NR {
                let v = if s < smax {
                    let j = q * NR + s;
                    match transb {
                        Trans::No => b[(l, j)],
                        Trans::Yes => b[(j, l)],
                    }
                } else {
                    0.0
                };
                bpack[base + l * NR + s] = v as f32;
            }
        }
    }
}

/// [`micro_8x4`] over f32 panels: each element is promoted to f64 at
/// load; all multiplies and the accumulator stay in f64, so the only
/// precision loss is the initial operand rounding.
#[inline(always)]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn micro_8x4_f32(
    kc: usize,
    alpha: f64,
    at: &[f32],
    bt: &[f32],
    c: COut,
    i0: usize,
    j0: usize,
    cm: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for l in 0..kc {
        let ab = l * MR;
        let bb = l * NR;
        // SAFETY: `bt` was sliced to length >= kc*NR, so bb..bb+NR is in
        // bounds for every l < kc.
        let bv: [f64; NR] = std::array::from_fn(|s| unsafe { *bt.get_unchecked(bb + s) } as f64);
        for r in 0..MR {
            // SAFETY: `at` was sliced to length >= kc*MR; ab+r < kc*MR.
            let ar = unsafe { *at.get_unchecked(ab + r) } as f64;
            for s in 0..NR {
                acc[r][s] = fmadd(ar, bv[s], acc[r][s]);
            }
        }
    }
    for s in 0..NR {
        let cbase = (j0 + s) * cm + i0;
        for r in 0..MR {
            // SAFETY: the caller guarantees the full 8×4 tile lies inside
            // C (serial path: no concurrent writers at all).
            unsafe { c.add(cbase + r, alpha * acc[r][s]) };
        }
    }
}

/// [`micro_edge`] over f32 panels (bounds-checked; partial tiles).
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn micro_edge_f32(
    kc: usize,
    alpha: f64,
    at: &[f32],
    bt: &[f32],
    c: COut,
    i0: usize,
    j0: usize,
    cm: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for l in 0..kc {
        let ab = l * MR;
        let bb = l * NR;
        for r in 0..mr {
            let av = at[ab + r] as f64;
            for s in 0..nr {
                acc[r][s] += av * (bt[bb + s] as f64);
            }
        }
    }
    for s in 0..nr {
        let cbase = (j0 + s) * cm + i0;
        for r in 0..mr {
            // SAFETY: r < mr and s < nr keep the store inside the partial
            // tile, which lies inside C (serial path).
            unsafe { c.add(cbase + r, alpha * acc[r][s]) };
        }
    }
}

/// Fused multiply-add when the build target has hardware FMA, plain
/// multiply+add otherwise. `mul_add` without hardware support lowers to
/// a libm call — catastrophically slow in a microkernel — so the fusion
/// is compile-time gated, never probed at runtime. Which form is chosen
/// is fixed per build, so thread-count determinism is unaffected.
#[inline(always)]
fn fmadd(a: f64, b: f64, c: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        c + a * b
    }
}

/// 8×4 register microkernel:
/// `C[i0..i0+8, j0..j0+4] += alpha · Apanel · Bpanel`.
///
/// The accumulator is `MR` rows of `NR`-wide vectors; each `l` step
/// broadcasts one A element per row against the 4-wide B vector, which
/// the autovectorizer lowers to one FMA per row (8 vector registers of
/// accumulators + 1 of B — fits any 16-register vector ISA).
#[inline(always)]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn micro_8x4(
    kc: usize,
    alpha: f64,
    at: &[f64],
    bt: &[f64],
    c: COut,
    i0: usize,
    j0: usize,
    cm: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    // The panels are contiguous k-major tiles; index arithmetic is exact.
    for l in 0..kc {
        let ab = l * MR;
        let bb = l * NR;
        // SAFETY: `bt` was sliced to length >= kc*NR, so bb..bb+NR is in
        // bounds for every l < kc.
        let bv: [f64; NR] = std::array::from_fn(|s| unsafe { *bt.get_unchecked(bb + s) });
        for r in 0..MR {
            // SAFETY: `at` was sliced to length >= kc*MR; ab+r < kc*MR.
            let ar = unsafe { *at.get_unchecked(ab + r) };
            for s in 0..NR {
                acc[r][s] = fmadd(ar, bv[s], acc[r][s]);
            }
        }
    }
    for s in 0..NR {
        let cbase = (j0 + s) * cm + i0;
        for r in 0..MR {
            // SAFETY: the caller guarantees the full 8×4 tile lies inside
            // C and is owned by this work item (disjoint from all other
            // concurrent writers).
            unsafe { c.add(cbase + r, alpha * acc[r][s]) };
        }
    }
}

/// Edge microkernel for partial tiles (mr<8 or nr<4); bounds-checked
/// reads from the packed panels, tile-ownership-checked writes to C.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn micro_edge(
    kc: usize,
    alpha: f64,
    at: &[f64],
    bt: &[f64],
    c: COut,
    i0: usize,
    j0: usize,
    cm: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for l in 0..kc {
        let ab = l * MR;
        let bb = l * NR;
        for r in 0..mr {
            let av = at[ab + r];
            for s in 0..nr {
                acc[r][s] += av * bt[bb + s];
            }
        }
    }
    for s in 0..nr {
        let cbase = (j0 + s) * cm + i0;
        for r in 0..mr {
            // SAFETY: r < mr and s < nr keep the store inside the partial
            // tile, which lies inside C and is owned by this work item.
            unsafe { c.add(cbase + r, alpha * acc[r][s]) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_mat(nr: usize, nc: usize, seed: u64) -> Matrix {
        // Small deterministic LCG so the tests need no external RNG.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(nr, nc, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
    }

    fn check_case(
        transa: Trans,
        transb: Trans,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        beta: f64,
    ) {
        let a = match transa {
            Trans::No => rand_mat(m, k, 1 + m as u64),
            Trans::Yes => rand_mat(k, m, 2 + n as u64),
        };
        let b = match transb {
            Trans::No => rand_mat(k, n, 3 + k as u64),
            Trans::Yes => rand_mat(n, k, 4 + m as u64 + n as u64),
        };
        let c0 = rand_mat(m, n, 99);
        let mut c_fast = c0.clone();
        let mut c_ref = c0.clone();
        dgemm(transa, transb, alpha, &a, &b, beta, &mut c_fast);
        dgemm_naive(transa, transb, alpha, &a, &b, beta, &mut c_ref);
        let diff = c_fast.max_abs_diff(&c_ref);
        assert!(
            diff < 1e-12 * (k.max(1) as f64),
            "diff {diff} for m={m} n={n} k={k} {transa:?} {transb:?}"
        );
        // The packed path must agree with the auto-selected path too
        // (the small path is exercised by the auto calls above).
        let mut c_packed = c0.clone();
        dgemm_path(
            GemmPath::Packed,
            1,
            transa,
            transb,
            alpha,
            &a,
            &b,
            beta,
            &mut c_packed,
        );
        let diff = c_packed.max_abs_diff(&c_ref);
        assert!(
            diff < 1e-12 * (k.max(1) as f64),
            "packed diff {diff} for m={m} n={n} k={k} {transa:?} {transb:?}"
        );
    }

    #[test]
    fn matches_naive_small_exhaustive() {
        for &m in &[1usize, 2, 3, 4, 5, 7, 8, 9] {
            for &n in &[1usize, 2, 4, 5, 9] {
                for &k in &[0usize, 1, 3, 8] {
                    check_case(Trans::No, Trans::No, m, n, k, 1.0, 0.0);
                }
            }
        }
    }

    #[test]
    fn matches_naive_transposes() {
        for &(ta, tb) in &[
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            check_case(ta, tb, 13, 11, 17, 1.0, 0.0);
            check_case(ta, tb, 5, 6, 7, -0.5, 2.0);
        }
    }

    #[test]
    fn matches_naive_blocked_sizes() {
        // Cross the MC/KC/NC block boundaries and the MR=8 edge cases.
        check_case(Trans::No, Trans::No, 130, 37, 260, 1.0, 0.0);
        check_case(Trans::No, Trans::No, 128, 16, 256, 2.0, 1.0);
        check_case(Trans::Yes, Trans::No, 129, 5, 257, 1.0, -1.0);
        check_case(Trans::No, Trans::Yes, 136, 12, 256, 1.0, 0.5);
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = Matrix::eye(3);
        let b = rand_mat(3, 3, 7);
        let mut c = rand_mat(3, 3, 8);
        let c0 = c.clone();
        // alpha = 0, beta = 1: C unchanged even with garbage dims in k loop
        dgemm(Trans::No, Trans::No, 0.0, &a, &b, 1.0, &mut c);
        assert_eq!(c, c0);
        // alpha = 1, beta = 0: C = A*B = B
        dgemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&b) < 1e-15);
    }

    #[test]
    fn empty_dims() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 0);
        let mut c = Matrix::zeros(0, 0);
        dgemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
        // k = 0 path: C scaled by beta only.
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::eye(2);
        dgemm(Trans::No, Trans::No, 1.0, &a, &b, 3.0, &mut c);
        assert_eq!(c[(0, 0)], 3.0);
        assert_eq!(c[(0, 1)], 0.0);
    }

    #[test]
    fn beta_scaling_with_zero_k_on_transposed_operands() {
        // Regression (PR 4 satellite): `k == 0` with `beta != 1` must
        // still scale C — and must do so for every transpose combination,
        // where the operand shapes are "0 on the other side".
        for &(ta, tb) in &[
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            let a = match ta {
                Trans::No => Matrix::zeros(3, 0),
                Trans::Yes => Matrix::zeros(0, 3),
            };
            let b = match tb {
                Trans::No => Matrix::zeros(0, 2),
                Trans::Yes => Matrix::zeros(2, 0),
            };
            let mut c = Matrix::from_fn(3, 2, |i, j| 1.0 + (i + 3 * j) as f64);
            let expect = Matrix::from_fn(3, 2, |i, j| -2.0 * (1.0 + (i + 3 * j) as f64));
            dgemm(ta, tb, 5.0, &a, &b, -2.0, &mut c);
            assert_eq!(c, expect, "beta pass wrong for {ta:?} {tb:?}");
        }
        // beta == 1, k == 0: C untouched bit for bit.
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::from_fn(2, 2, |i, j| -0.0 + (i * 2 + j) as f64);
        let c0 = c.clone();
        dgemm(Trans::No, Trans::No, 2.0, &a, &b, 1.0, &mut c);
        assert_eq!(c, c0);
    }

    #[test]
    fn forced_paths_agree() {
        let a = rand_mat(33, 20, 5);
        let b = rand_mat(20, 14, 6);
        let c0 = rand_mat(33, 14, 7);
        let mut c_small = c0.clone();
        let mut c_packed = c0.clone();
        dgemm_path(
            GemmPath::Small,
            1,
            Trans::No,
            Trans::No,
            1.5,
            &a,
            &b,
            0.25,
            &mut c_small,
        );
        dgemm_path(
            GemmPath::Packed,
            1,
            Trans::No,
            Trans::No,
            1.5,
            &a,
            &b,
            0.25,
            &mut c_packed,
        );
        assert!(c_small.max_abs_diff(&c_packed) < 1e-12 * 20.0);
    }

    #[test]
    fn prepacked_matches_packed_bitwise() {
        // The prepacked path must be *bitwise* equal to the on-the-fly
        // packed path at every thread count — it feeds the microkernel
        // the same panel bytes through the same work plan.
        for &(ta, m, n, k) in &[
            (Trans::No, 80usize, 45usize, 80usize), // the σ repack shape class
            (Trans::Yes, 130, 37, 260),             // crosses MC and KC
            (Trans::No, 8, 4, 600),                 // multi-stripe, single tile
            (Trans::No, 129, 5, 257),               // edge tiles everywhere
        ] {
            let a = match ta {
                Trans::No => rand_mat(m, k, 21 + m as u64),
                Trans::Yes => rand_mat(k, m, 22 + n as u64),
            };
            let b = rand_mat(k, n, 23);
            let c0 = rand_mat(m, n, 24);
            let mut c_ref = c0.clone();
            dgemm_path(
                GemmPath::Packed,
                1,
                ta,
                Trans::No,
                1.25,
                &a,
                &b,
                -0.5,
                &mut c_ref,
            );
            let pa = PackedA::pack(ta, &a);
            assert_eq!(pa.packs(), 1);
            assert_eq!((pa.m(), pa.k()), (m, k));
            for &nt in &[1usize, 2, 4] {
                let mut c = c0.clone();
                dgemm_prepacked(nt, 1.25, &pa, Trans::No, &b, -0.5, &mut c);
                assert_eq!(c, c_ref, "{ta:?} m={m} n={n} k={k} nt={nt}");
            }
        }
        // Transposed B and alpha/beta corners through the same handle.
        let a = rand_mat(70, 90, 41);
        let bt = rand_mat(30, 90, 42);
        let c0 = rand_mat(70, 30, 43);
        let pa = PackedA::pack(Trans::No, &a);
        let mut c_ref = c0.clone();
        dgemm_path(
            GemmPath::Packed,
            1,
            Trans::No,
            Trans::Yes,
            2.0,
            &a,
            &bt,
            1.0,
            &mut c_ref,
        );
        let mut c = c0.clone();
        dgemm_prepacked(1, 2.0, &pa, Trans::Yes, &bt, 1.0, &mut c);
        assert_eq!(c, c_ref);
        // alpha == 0: beta pass only, bitwise.
        let mut c = c0.clone();
        dgemm_prepacked(1, 0.0, &pa, Trans::Yes, &bt, -3.0, &mut c);
        let expect = Matrix::from_fn(70, 30, |i, j| -3.0 * c0[(i, j)]);
        assert_eq!(c, expect);
    }

    #[test]
    fn gemm_prefers_packed_tracks_auto_crossover() {
        assert!(!gemm_prefers_packed(0, 10, 10));
        assert!(!gemm_prefers_packed(10, 10, 10));
        assert!(!gemm_prefers_packed(52, 52, 52)); // exactly SMALL_FLOPS: small path
        assert!(gemm_prefers_packed(53, 53, 53));
        assert!(gemm_prefers_packed(80, 45, 80));
    }

    #[test]
    fn packed_f32_path_is_close_to_f64() {
        // f32 operand rounding costs ~1e-7 relative per element; with
        // k ≈ 100 inputs in [-0.5, 0.5] the worst-case accumulated error
        // sits well under 1e-5 — and must be nonzero (the operands really
        // were rounded).
        for &(ta, tb, m, n, k) in &[
            (Trans::No, Trans::No, 97usize, 61usize, 96usize),
            (Trans::Yes, Trans::No, 64, 64, 70),
            (Trans::No, Trans::Yes, 70, 33, 64),
        ] {
            let a = match ta {
                Trans::No => rand_mat(m, k, 31),
                Trans::Yes => rand_mat(k, m, 31),
            };
            let b = match tb {
                Trans::No => rand_mat(k, n, 32),
                Trans::Yes => rand_mat(n, k, 32),
            };
            let c0 = rand_mat(m, n, 33);
            let mut c_ref = c0.clone();
            dgemm_naive(ta, tb, 1.5, &a, &b, 0.25, &mut c_ref);
            let mut c32 = c0.clone();
            dgemm_path(GemmPath::PackedF32, 1, ta, tb, 1.5, &a, &b, 0.25, &mut c32);
            let diff = c32.max_abs_diff(&c_ref);
            assert!(diff < 5e-5, "f32 path error {diff} ({ta:?} {tb:?})");
            assert!(diff > 0.0, "f32 packing should round the operands");
        }
    }
}
