//! Opt-in GEMM observation hook.
//!
//! The metrics plane wants per-shape GEMM throughput, but `fci-linalg`
//! cannot depend on `fci-obs` (it sits below it in the crate graph) and
//! the hot path must stay free of any cost when nobody is watching. The
//! probe is therefore a process-global callback, installed once by the
//! bench/serve layer, guarded by one relaxed atomic load:
//!
//! ```
//! use std::sync::Arc;
//! use fci_linalg::probe;
//!
//! probe::install(Arc::new(|m, n, k, secs| {
//!     let gflops = 2.0 * (m * n * k) as f64 / secs.max(1e-12) / 1e9;
//!     let _ = (m, n, k, gflops); // e.g. registry.observe("gemm.gflops", …)
//! }));
//! probe::set_enabled(true);
//! ```
//!
//! With the probe disabled (the default), [`dgemm`] pays a single
//! `AtomicBool` load — the same budget as the tracer's disabled branch.
//!
//! [`dgemm`]: crate::dgemm

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Observation callback: `(m, n, k, seconds)` for one completed
/// non-trivial `dgemm` dispatch (fast exits are not reported).
pub type GemmObserver = Arc<dyn Fn(usize, usize, usize, f64) + Send + Sync>;

static OBSERVER: OnceLock<GemmObserver> = OnceLock::new();
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Install the process-wide observer. The first call wins (the slot is
/// write-once); returns `false` if an observer was already installed.
/// Installation does not enable the probe — call [`set_enabled`].
pub fn install(obs: GemmObserver) -> bool {
    OBSERVER.set(obs).is_ok()
}

/// Turn observation on or off. A no-op until [`install`] has run; safe
/// to toggle around an A/B measurement (the obs-overhead bench does).
pub fn set_enabled(on: bool) {
    ACTIVE.store(on && OBSERVER.get().is_some(), Ordering::Relaxed);
}

/// Whether the probe is currently recording.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Report one timed GEMM to the installed observer.
#[inline]
pub(crate) fn emit(m: usize, n: usize, k: usize, secs: f64) {
    if let Some(obs) = OBSERVER.get() {
        obs(m, n, k, secs);
    }
}

// ---------------------------------------------------------------------
// Eigensolver channel: same write-once + relaxed-gate pattern, its own
// slot so the serve layer can watch eigh dispatches independently of
// GEMM (the metrics plane records them as separate series).
// ---------------------------------------------------------------------

/// Observation callback: `(n, seconds)` for one completed symmetric
/// eigendecomposition dispatched through [`eigh`](crate::eigh).
pub type EighObserver = Arc<dyn Fn(usize, f64) + Send + Sync>;

static EIGH_OBSERVER: OnceLock<EighObserver> = OnceLock::new();
static EIGH_ACTIVE: AtomicBool = AtomicBool::new(false);

/// Install the process-wide eigensolver observer (write-once; returns
/// `false` if one was already installed). Enable with
/// [`set_eigh_enabled`].
pub fn install_eigh(obs: EighObserver) -> bool {
    EIGH_OBSERVER.set(obs).is_ok()
}

/// Turn eigensolver observation on or off (no-op until
/// [`install_eigh`] has run).
pub fn set_eigh_enabled(on: bool) {
    EIGH_ACTIVE.store(on && EIGH_OBSERVER.get().is_some(), Ordering::Relaxed);
}

/// Whether the eigensolver probe is currently recording.
#[inline]
pub fn eigh_active() -> bool {
    EIGH_ACTIVE.load(Ordering::Relaxed)
}

/// Report one timed eigendecomposition to the installed observer.
#[inline]
pub(crate) fn emit_eigh(n: usize, secs: f64) {
    if let Some(obs) = EIGH_OBSERVER.get() {
        obs(n, secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn eigh_probe_gates_and_reports() {
        static EIGH_HITS: AtomicUsize = AtomicUsize::new(0);
        assert!(!eigh_active());
        set_eigh_enabled(true); // no observer yet: stays off
        assert!(!eigh_active());
        assert!(install_eigh(Arc::new(|n, _secs| {
            EIGH_HITS.fetch_add(n, Ordering::Relaxed);
        })));
        assert!(!install_eigh(Arc::new(|_, _| {})), "slot is write-once");
        set_eigh_enabled(true);
        assert!(eigh_active());
        let a = crate::Matrix::from_fn(3, 3, |i, j| if i == j { 1.0 + i as f64 } else { 0.1 });
        let _ = crate::eigh(&a);
        assert_eq!(EIGH_HITS.load(Ordering::Relaxed), 3);
        set_eigh_enabled(false);
        let _ = crate::eigh(&a);
        assert_eq!(EIGH_HITS.load(Ordering::Relaxed), 3, "off means off");
    }

    #[test]
    fn probe_gates_and_reports() {
        // Process-global state: this is the only test that touches it.
        static HITS: AtomicUsize = AtomicUsize::new(0);
        assert!(!active());
        set_enabled(true); // no observer yet: stays off
        assert!(!active());
        assert!(install(Arc::new(|m, n, k, _secs| {
            HITS.fetch_add(m * n * k, Ordering::Relaxed);
        })));
        assert!(!install(Arc::new(|_, _, _, _| {})), "slot is write-once");
        set_enabled(true);
        assert!(active());
        let a = crate::Matrix::from_fn(4, 3, |i, j| (i + j) as f64);
        let b = crate::Matrix::from_fn(3, 2, |i, j| (i * j) as f64);
        let mut c = crate::Matrix::zeros(4, 2);
        crate::dgemm(crate::Trans::No, crate::Trans::No, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(HITS.load(Ordering::Relaxed), 4 * 2 * 3);
        set_enabled(false);
        crate::dgemm(crate::Trans::No, crate::Trans::No, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(HITS.load(Ordering::Relaxed), 4 * 2 * 3, "off means off");
    }
}
