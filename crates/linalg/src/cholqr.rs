//! Cholesky-QR orthonormalization.
//!
//! Orthonormalizing a block of k vectors with modified Gram-Schmidt costs
//! O(k²) dependent dot/axpy passes — every one a latency-bound level-1
//! sweep (and, for distributed CI vectors, a synchronization point per
//! pair). Cholesky-QR reshapes the whole job into GEMM:
//!
//! 1. `G = VᵀV` — one syrk-shaped GEMM reduction,
//! 2. `G = L·Lᵀ` — a k×k Cholesky factorization (k is the subspace
//!    dimension, ≤ a few dozen: negligible),
//! 3. `V ← V·L⁻ᵀ` — one triangular solve applied column-block-wise.
//!
//! One pass leaves an orthogonality error ∝ κ(V)²·ε, so the standard
//! remedy — and what [`cholqr2`] implements — is to run the pass twice
//! ("CholeskyQR2"), which is unconditionally stable whenever the first
//! Cholesky succeeds. A failed factorization (numerically rank-deficient
//! block) is reported as [`CholError`] so callers can fall back to MGS,
//! which can drop dependent vectors one at a time.
//!
//! `fci-core::multiroot` drives steps 1 and 3 over distributed vectors
//! (per-rank local blocks, GEMM-shaped), using [`cholesky_lower`] and
//! [`trsm_right_ltrans`] from here; [`cholqr2`] is the dense
//! single-matrix form used for plain `Matrix` blocks and as the test
//! oracle.

use crate::matrix::Matrix;
use std::fmt;

/// Failure of the Cholesky factorization: the Gram matrix is not
/// numerically positive definite (the vector block is rank-deficient).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CholError {
    /// Column at which the factorization broke down.
    pub index: usize,
    /// The offending pivot value.
    pub pivot: f64,
}

impl fmt::Display for CholError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cholesky breakdown at column {}: pivot {:e} not positive",
            self.index, self.pivot
        )
    }
}

impl std::error::Error for CholError {}

/// In-place Cholesky factorization `A = L·Lᵀ` of a symmetric
/// positive-definite matrix.
///
/// Reads the **lower** triangle of `a` and overwrites it with `L`; the
/// strictly-upper triangle is left untouched (callers use
/// [`trsm_right_ltrans`], which reads only the lower part). Fails with
/// [`CholError`] when a pivot falls below `n·ε` times the largest input
/// diagonal — the practical signature of a rank-deficient Gram matrix.
pub fn cholesky_lower(a: &mut Matrix) -> Result<(), CholError> {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "cholesky_lower requires a square matrix");
    if n == 0 {
        return Ok(());
    }
    let mut diag_max = 0.0f64;
    for j in 0..n {
        diag_max = diag_max.max(a[(j, j)].abs());
    }
    let min_pivot = (n as f64) * f64::EPSILON * diag_max;
    let s = a.as_mut_slice();
    for j in 0..n {
        // Left-looking column update: a[j.., j] −= Σ_{p<j} L[j,p]·L[j.., p]
        // (contiguous column axpys in the column-major layout).
        for p in 0..j {
            let ljp = s[p * n + j];
            if ljp != 0.0 {
                let (lo, hi) = s.split_at_mut(j * n);
                let cp = &lo[p * n + j..p * n + n];
                let cj = &mut hi[j..n];
                for (x, &y) in cj.iter_mut().zip(cp) {
                    *x -= ljp * y;
                }
            }
        }
        let pj = s[j * n + j];
        if !pj.is_finite() || pj <= min_pivot {
            return Err(CholError {
                index: j,
                pivot: pj,
            });
        }
        // Scale the column (diagonal included) by 1/√pivot:
        // L[j,j] = √pj, L[i>j, j] = a[i,j]/√pj.
        let inv = 1.0 / pj.sqrt();
        for x in &mut s[j * n + j..j * n + n] {
            *x *= inv;
        }
    }
    Ok(())
}

/// In-place triangular solve `M ← M·L⁻ᵀ` for lower-triangular `L`.
///
/// Forward column substitution: column `j` of the result is
/// `(M[:,j] − Σ_{p<j} R[:,p]·L[j,p]) / L[j,j]`, so each column is an
/// axpy sweep over already-finished columns — contiguous, GEMM-adjacent
/// memory traffic. Reads only the lower triangle of `L`.
pub fn trsm_right_ltrans(l: &Matrix, m: &mut Matrix) {
    let k = l.nrows();
    assert_eq!(k, l.ncols(), "trsm_right_ltrans requires square L");
    assert_eq!(m.ncols(), k, "trsm_right_ltrans dimension mismatch");
    let rows = m.nrows();
    let md = m.as_mut_slice();
    for j in 0..k {
        for p in 0..j {
            let c = l[(j, p)];
            if c != 0.0 {
                let (lo, hi) = md.split_at_mut(j * rows);
                let xp = &lo[p * rows..p * rows + rows];
                let xj = &mut hi[..rows];
                for (x, &y) in xj.iter_mut().zip(xp) {
                    *x -= c * y;
                }
            }
        }
        let inv = 1.0 / l[(j, j)];
        for x in &mut md[j * rows..j * rows + rows] {
            *x *= inv;
        }
    }
}

/// CholeskyQR2: orthonormalize the columns of `v` in place.
///
/// Two passes of Gram → Cholesky → triangular solve; after the second
/// pass the columns are orthonormal to working precision provided the
/// first factorization succeeds. On [`CholError`] (rank-deficient
/// block), `v` may hold a partially transformed block — callers fall
/// back to MGS on their own copy.
pub fn cholqr2(v: &mut Matrix) -> Result<(), CholError> {
    for _ in 0..2 {
        let mut g = v.t_matmul(v);
        cholesky_lower(&mut g)?;
        trsm_right_ltrans(&g, v);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_mat(nr: usize, nc: usize, seed: u64) -> Matrix {
        let mut st = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
        Matrix::from_fn(nr, nc, |_, _| {
            st = st
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((st >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
    }

    #[test]
    fn cholesky_recovers_known_factor() {
        // Build A = L·Lᵀ from a random unit-ish lower factor and check
        // the factorization reproduces it.
        let n = 8;
        let l0 = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.5 + (i as f64) * 0.1
            } else if i > j {
                0.3 / (1.0 + (i - j) as f64)
            } else {
                0.0
            }
        });
        let mut a = l0.matmul_t(&l0);
        cholesky_lower(&mut a).expect("SPD input");
        for j in 0..n {
            for i in j..n {
                assert!(
                    (a[(i, j)] - l0[(i, j)]).abs() < 1e-12,
                    "L mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn cholesky_rejects_rank_deficient() {
        // Gram matrix of two identical vectors is singular.
        let v = Matrix::from_fn(6, 2, |i, _| (i as f64) + 1.0);
        let mut g = v.t_matmul(&v);
        let err = cholesky_lower(&mut g).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.to_string().contains("pivot"));
        // Outright indefinite input fails at the first bad pivot.
        let mut bad = Matrix::from_fn(2, 2, |i, j| if i == j { -1.0 } else { 0.0 });
        assert!(cholesky_lower(&mut bad).is_err());
    }

    #[test]
    fn trsm_inverts_cholesky_transform() {
        // For any SPD G = LLᵀ, (M·L⁻ᵀ)·Lᵀ = M.
        let n = 5;
        let m0 = rand_mat(9, n, 3);
        let mut g = m0.t_matmul(&m0);
        // Make it safely SPD.
        for i in 0..n {
            g[(i, i)] += 1.0;
        }
        let mut l = g.clone();
        cholesky_lower(&mut l).unwrap();
        // Zero the strictly-upper garbage for the multiply check.
        let lt = Matrix::from_fn(n, n, |i, j| if i >= j { l[(i, j)] } else { 0.0 });
        let mut m = m0.clone();
        trsm_right_ltrans(&l, &mut m);
        let back = m.matmul_t(&lt);
        assert!(back.max_abs_diff(&m0) < 1e-11);
    }

    #[test]
    fn cholqr2_orthonormalizes() {
        for &(rows, cols, seed) in &[(20usize, 4usize, 1u64), (64, 12, 2), (7, 7, 3)] {
            let mut v = rand_mat(rows, cols, seed);
            let v0 = v.clone();
            cholqr2(&mut v).expect("full-rank random block");
            let vtv = v.t_matmul(&v);
            assert!(
                vtv.max_abs_diff(&Matrix::eye(cols)) < 1e-12,
                "not orthonormal ({rows}x{cols})"
            );
            // Same span: V = V0·R for some upper-triangular R means
            // V0 = V·(VᵀV0) exactly reconstructs the input.
            let coeff = v.t_matmul(&v0);
            let back = v.matmul(&coeff);
            assert!(back.max_abs_diff(&v0) < 1e-10, "span changed");
        }
    }

    #[test]
    fn cholqr2_flags_duplicate_columns() {
        let base = rand_mat(10, 1, 9);
        let mut v = Matrix::from_fn(10, 2, |i, _| base[(i, 0)]);
        assert!(cholqr2(&mut v).is_err());
    }

    #[test]
    fn empty_and_single() {
        let mut v = Matrix::zeros(4, 0);
        cholqr2(&mut v).unwrap();
        let mut one = Matrix::from_fn(3, 1, |i, _| (i + 1) as f64);
        cholqr2(&mut one).unwrap();
        let nrm: f64 = one.col(0).iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((nrm - 1.0).abs() < 1e-14);
    }
}
