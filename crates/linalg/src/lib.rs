#![warn(missing_docs)]

//! Dense linear algebra substrate for the fcix workspace.
//!
//! The Cray-X1 FCI program of Gan & Harrison leans on the vendor `DGEMM`
//! (10–11 GFlop/s per MSP for matrices beyond 300×300) as its sole heavy
//! compute kernel, plus level-1 operations (`DAXPY`, dot products, norms)
//! whose comparatively poor out-of-cache throughput (≈2 GFlop/s per MSP)
//! motivates the whole DGEMM-based reformulation of the σ = H·C product.
//!
//! This crate provides the same tool set, built from scratch:
//!
//! * [`Matrix`] — a column-major dense matrix (the layout every routine in
//!   the FCI code assumes; CI coefficient blocks are (β-string × α-string)
//!   column-major matrices),
//! * [`dgemm`] — a blocked, cache-aware general matrix multiply with an
//!   unrolled register microkernel, plus a [`dgemm_naive`] reference and
//!   a persistent packed-operand form ([`PackedA`] / [`dgemm_prepacked`])
//!   for operands reused across many products,
//! * level-1 kernels ([`daxpy`], [`ddot`], [`dnrm2`], [`dscal`]),
//! * a two-stage symmetric eigensolver ([`eigh`]): cyclic Jacobi below
//!   [`EIGH_JACOBI_CUTOFF`], blocked Householder tridiagonalization +
//!   implicit QL above it, and the analytic 2×2 solve ([`eigh_2x2`])
//!   at the heart of the automatically adjusted single-vector method,
//! * Cholesky-QR block orthonormalization ([`cholqr2`] and the
//!   [`cholesky_lower`] / [`trsm_right_ltrans`] building blocks the
//!   distributed multiroot solver drives per rank),
//! * an LU solver ([`lu_solve`]) for DIIS extrapolation.
//!
//! Everything is plain safe Rust except the microkernel's bounds-check-free
//! inner loops, which are encapsulated and exercised by property tests
//! against the naive reference.

pub mod arena;
pub mod blas1;
pub mod cholqr;
pub mod eigen;
pub mod gemm;
pub mod matrix;
pub mod probe;
pub mod solve;
pub mod tridiag;

pub use blas1::{dasum, daxpy, dcopy, ddot, dnrm2, dscal, idamax};
pub use cholqr::{cholesky_lower, cholqr2, trsm_right_ltrans, CholError};
pub use eigen::{eigh, eigh_2x2, eigh_jacobi, Eigh, EIGH_JACOBI_CUTOFF};
pub use gemm::{
    dgemm, dgemm_naive, dgemm_path, dgemm_prepacked, dgemm_with_threads, gemm_prefers_packed,
    gemm_threads, GemmPath, PackedA, Trans,
};
pub use matrix::Matrix;
pub use solve::{lu_factor, lu_solve, LuError};
pub use tridiag::{
    eigh_tridiag, eigh_tridiag_path, reduce_to_tridiag, TqliError, Tridiag, TridiagPath,
};
