//! Symmetric eigensolvers.
//!
//! * [`eigh`] — the front door: dispatches between the robust cyclic
//!   Jacobi solver ([`eigh_jacobi`]) for small matrices and the faster
//!   Householder + implicit-QL route ([`crate::tridiag::eigh_tridiag`])
//!   for larger ones (SCF Fock matrices, Davidson subspaces, dense sector
//!   references).
//! * [`eigh_2x2`] — the analytic 2×2 symmetric solve. The paper's
//!   automatically adjusted single-vector method derives its step length λ
//!   from exactly this 2×2 diagonalization (eqs. 13–15), so it gets a
//!   dedicated, branch-stable routine.

use crate::matrix::Matrix;

/// Eigendecomposition of a symmetric matrix: `a = V diag(w) Vᵀ`.
#[derive(Clone, Debug)]
pub struct Eigh {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors as columns, in the order of `eigenvalues`.
    pub eigenvectors: Matrix,
}

/// Largest matrix order still solved by cyclic Jacobi; above this the
/// two-stage tridiagonal route wins. The `eigh_sweep --quick` bench
/// re-measures the crossover (Jacobi's many O(n³) sweeps lose to
/// tridiagonalization in the low tens on every host measured; the
/// boundary test below pins agreement of the two solvers at the cutoff).
pub const EIGH_JACOBI_CUTOFF: usize = 24;

/// Eigendecomposition of a symmetric matrix.
///
/// Dispatches to cyclic Jacobi ([`eigh_jacobi`]) for matrices up to
/// [`EIGH_JACOBI_CUTOFF`] and to Householder + implicit QL
/// ([`crate::tridiag::eigh_tridiag`]) above it, where the two-stage
/// method is decisively faster. Reads the upper triangle; panics if `a`
/// is not square. When the [`crate::probe`] eigensolver channel is
/// enabled, the dispatch is timed and reported per shape.
pub fn eigh(a: &Matrix) -> Eigh {
    // Host-time probe for per-shape eigensolver metrics; one relaxed
    // atomic load when nobody is observing (same budget as the GEMM
    // probe). This is real host kernel time by design — linalg sits
    // below the simulated-clock layer.
    let timer = crate::probe::eigh_active().then(std::time::Instant::now); // lint: allow(wallclock) — real host kernel time by design
    let out = if a.nrows() > EIGH_JACOBI_CUTOFF {
        crate::tridiag::eigh_tridiag(a)
    } else {
        eigh_jacobi(a)
    };
    if let Some(t0) = timer {
        crate::probe::emit_eigh(a.nrows(), t0.elapsed().as_secs_f64());
    }
    out
}

/// Cyclic Jacobi diagonalization of a symmetric matrix.
///
/// Panics if `a` is not square; the strictly lower triangle is ignored
/// (the matrix is assumed symmetric and read from the upper triangle).
pub fn eigh_jacobi(a: &Matrix) -> Eigh {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "eigh requires a square matrix");
    // Work on a symmetrized copy.
    let mut m = Matrix::from_fn(n, n, |i, j| if i <= j { a[(i, j)] } else { a[(j, i)] });
    let mut v = Matrix::eye(n);

    let max_sweeps = 100;
    for _sweep in 0..max_sweeps {
        let mut off = 0.0;
        for j in 0..n {
            for i in 0..j {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-14 * (1.0 + frob(&m)) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq == 0.0 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Stable computation of the rotation (Golub & Van Loan).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation to rows/cols p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort ascending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(i, i)].total_cmp(&m[(j, j)]));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let eigenvectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    Eigh {
        eigenvalues,
        eigenvectors,
    }
}

fn frob(m: &Matrix) -> f64 {
    m.norm()
}

/// Analytic eigendecomposition of the symmetric 2×2 matrix
/// `[[a, b], [b, d]]`.
///
/// Returns `(w_lo, (x, y))`: the lower eigenvalue and its normalized
/// eigenvector. The eigenvector sign is fixed so that `x >= 0`, which makes
/// the λ = y/x mixing ratio used by the single-vector diagonalizer
/// well-defined across iterations.
pub fn eigh_2x2(a: f64, b: f64, d: f64) -> (f64, (f64, f64)) {
    if b == 0.0 {
        return if a <= d {
            (a, (1.0, 0.0))
        } else {
            (d, (0.0, 1.0))
        };
    }
    let tr = a + d;
    let det_disc = ((a - d) * 0.5).hypot(b);
    let w = 0.5 * tr - det_disc; // lower eigenvalue
                                 // Eigenvector from the numerically safer of the two rows.
    let (mut x, mut y) = if (a - w).abs() > (d - w).abs() {
        (-b, a - w)
    } else {
        (d - w, -b)
    };
    let nrm = x.hypot(y);
    x /= nrm;
    y /= nrm;
    if x < 0.0 {
        x = -x;
        y = -y;
    }
    (w, (x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, e: &Eigh) -> f64 {
        // ‖A V − V diag(w)‖
        let av = a.matmul(&e.eigenvectors);
        let n = a.nrows();
        let vw = Matrix::from_fn(n, n, |i, j| e.eigenvectors[(i, j)] * e.eigenvalues[j]);
        av.max_abs_diff(&vw)
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]);
        let e = eigh(&a);
        assert!((e.eigenvalues[0] + 1.0).abs() < 1e-14);
        assert!((e.eigenvalues[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = eigh(&a);
        assert!((e.eigenvalues[0] - 1.0).abs() < 1e-13);
        assert!((e.eigenvalues[1] - 3.0).abs() < 1e-13);
        assert!(residual(&a, &e) < 1e-12);
    }

    #[test]
    fn random_symmetric_consistency() {
        let n = 20;
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let raw = Matrix::from_fn(n, n, |_, _| next());
        let a = Matrix::from_fn(n, n, |i, j| raw[(i, j)] + raw[(j, i)]);
        let e = eigh(&a);
        assert!(residual(&a, &e) < 1e-10, "residual {}", residual(&a, &e));
        // Eigenvalues ascend.
        for k in 1..n {
            assert!(e.eigenvalues[k] >= e.eigenvalues[k - 1]);
        }
        // Eigenvectors orthonormal.
        let vtv = e.eigenvectors.t_matmul(&e.eigenvectors);
        assert!(vtv.max_abs_diff(&Matrix::eye(n)) < 1e-11);
        // Trace preserved.
        let tr_a: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let tr_w: f64 = e.eigenvalues.iter().sum();
        assert!((tr_a - tr_w).abs() < 1e-10);
    }

    #[test]
    fn eigh_2x2_matches_jacobi() {
        for &(a, b, d) in &[
            (1.0, 0.5, 2.0),
            (-3.0, 2.0, 1.0),
            (0.0, 0.0, 0.0),
            (5.0, -4.0, 5.0),
            (2.0, 0.0, 1.0),
        ] {
            let (w, (x, y)) = eigh_2x2(a, b, d);
            let m = Matrix::from_rows(&[&[a, b], &[b, d]]);
            let e = eigh(&m);
            assert!(
                (w - e.eigenvalues[0]).abs() < 1e-13,
                "eigenvalue mismatch for ({a},{b},{d})"
            );
            // Check eigen equation directly.
            assert!((a * x + b * y - w * x).abs() < 1e-12);
            assert!((b * x + d * y - w * y).abs() < 1e-12);
            assert!((x * x + y * y - 1.0).abs() < 1e-12);
            assert!(x >= 0.0);
        }
    }

    #[test]
    fn dispatch_boundary_solvers_agree() {
        // At n = CUTOFF the dispatch picks Jacobi, at CUTOFF+1 the
        // tridiagonal route; both sides of the boundary must agree with
        // the *other* solver to 1e-9 (eigenvalues) so retuning the
        // cutoff can never change physics.
        for &n in &[EIGH_JACOBI_CUTOFF, EIGH_JACOBI_CUTOFF + 1] {
            let mut state = 777u64 + n as u64;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let raw = Matrix::from_fn(n, n, |_, _| next());
            let a = Matrix::from_fn(n, n, |i, j| raw[(i, j)] + raw[(j, i)]);
            let ej = eigh_jacobi(&a);
            let et = crate::tridiag::eigh_tridiag(&a);
            for (x, y) in ej.eigenvalues.iter().zip(&et.eigenvalues) {
                assert!((x - y).abs() < 1e-9, "n={n}: {x} vs {y}");
            }
            // And the dispatched result matches both.
            let ed = eigh(&a);
            for (x, y) in ed.eigenvalues.iter().zip(&ej.eigenvalues) {
                assert!((x - y).abs() < 1e-9, "dispatch n={n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn eigh_1x1_and_identity() {
        let a = Matrix::from_rows(&[&[42.0]]);
        let e = eigh(&a);
        assert_eq!(e.eigenvalues, vec![42.0]);
        let e = eigh(&Matrix::eye(5));
        assert!(e.eigenvalues.iter().all(|&w| (w - 1.0).abs() < 1e-14));
    }
}
