//! Property tests for the blocked GEMM engine (PR 4 satellite):
//!
//! * `dgemm` is **bitwise identical** across thread counts {1, 2, 4, 8},
//! * and agrees with `dgemm_naive` within `1e-12·k`,
//!
//! on 200 random shapes including edge tiles (m, n not multiples of the
//! microkernel MR/NR) and all four transpose combinations.

use fci_linalg::{dgemm_naive, dgemm_with_threads, Matrix, Trans};

/// Deterministic splitmix64 — no external RNG crates in the workspace.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn uniform(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    fn dim(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo + 1)
    }
}

fn rand_mat(rng: &mut Rng, nr: usize, nc: usize) -> Matrix {
    Matrix::from_fn(nr, nc, |_, _| rng.uniform())
}

#[test]
fn bitwise_identical_across_thread_counts_and_close_to_naive() {
    let mut rng = Rng(0x5eed_cafe);
    let transes = [Trans::No, Trans::Yes];
    for case in 0..200 {
        // Mix of tiny (small-path), mid, and block-boundary-crossing
        // shapes; bias toward sizes that leave MR/NR edge tiles.
        let (m, n, k) = match case % 4 {
            0 => (rng.dim(1, 24), rng.dim(1, 24), rng.dim(0, 24)),
            1 => (rng.dim(25, 90), rng.dim(25, 90), rng.dim(1, 90)),
            2 => (rng.dim(120, 170), rng.dim(1, 40), rng.dim(200, 300)),
            _ => (
                8 * rng.dim(1, 16) + rng.dim(1, 7),
                4 * rng.dim(1, 12) + rng.dim(1, 3),
                rng.dim(1, 128),
            ),
        };
        let ta = transes[(case / 4) % 2];
        let tb = transes[(case / 8) % 2];
        let alpha = [1.0, -0.5, 2.25][case % 3];
        let beta = [0.0, 1.0, -1.5][(case / 3) % 3];

        let a = match ta {
            Trans::No => rand_mat(&mut rng, m, k),
            Trans::Yes => rand_mat(&mut rng, k, m),
        };
        let b = match tb {
            Trans::No => rand_mat(&mut rng, k, n),
            Trans::Yes => rand_mat(&mut rng, n, k),
        };
        let c0 = rand_mat(&mut rng, m, n);

        let mut c1 = c0.clone();
        dgemm_with_threads(1, ta, tb, alpha, &a, &b, beta, &mut c1);

        for threads in [2usize, 4, 8] {
            let mut ct = c0.clone();
            dgemm_with_threads(threads, ta, tb, alpha, &a, &b, beta, &mut ct);
            let same = c1
                .as_slice()
                .iter()
                .zip(ct.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(
                same,
                "case {case}: T={threads} differs bitwise from T=1 \
                 (m={m} n={n} k={k} {ta:?} {tb:?} alpha={alpha} beta={beta})"
            );
        }

        let mut c_ref = c0.clone();
        dgemm_naive(ta, tb, alpha, &a, &b, beta, &mut c_ref);
        let diff = c1.max_abs_diff(&c_ref);
        let tol = 1e-12 * (k.max(1) as f64);
        assert!(
            diff <= tol,
            "case {case}: |fast - naive| = {diff} > {tol} \
             (m={m} n={n} k={k} {ta:?} {tb:?} alpha={alpha} beta={beta})"
        );
    }
}
