//! The second-quantized Hamiltonian in the forms the σ kernels consume.
//!
//! The spin-free Hamiltonian (paper eq. 2) decomposes exactly (by normal
//! ordering within each spin) into
//!
//! ```text
//! H = E_core
//!   + Σ_pq h_pq (E^α_pq + E^β_pq)                       (one-electron)
//!   + Σ_{p>r, q>s} G_{(pr),(qs)} a†_p a†_r a_s a_q       (αα and ββ)
//!   + Σ_{pqrs} (pq|rs) E^α_pq E^β_rs                     (αβ)
//! ```
//!
//! with `G_{(pr),(qs)} = (pq|rs) − (ps|rq)`. This module materializes the
//! dense coupling matrices those kernels multiply against:
//!
//! * [`Hamiltonian::g`] — the antisymmetrized pair–pair matrix **G**
//!   (`npair × npair`) used by the same-spin DGEMM routine (paper eq. 8),
//! * [`Hamiltonian::v`] — the full `(pq)×(rs)` integral matrix **V** used
//!   by the mixed-spin routine (paper eq. 5),
//!
//! plus diagonal elements for preconditioning.

use fci_ints::EriTensor;
use fci_linalg::Matrix;
use fci_scf::MoIntegrals;
use fci_strings::pair_index;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-unique Hamiltonian identity counter (see [`Hamiltonian::id`]).
static NEXT_HAM_ID: AtomicU64 = AtomicU64::new(1);

/// Hamiltonian data over an active orbital set.
#[derive(Debug)]
pub struct Hamiltonian {
    /// Number of active orbitals.
    pub n: usize,
    /// Core constant (nuclear repulsion + frozen core).
    pub e_core: f64,
    /// One-electron integrals `h_pq`.
    pub h: Matrix,
    /// Raw two-electron integrals `(pq|rs)` (kept for Slater–Condon).
    pub eri: EriTensor,
    /// Mixed-spin integral matrix `V[(p·n+q), (r·n+s)] = (pq|rs)`.
    pub v: Matrix,
    /// Same-spin antisymmetrized pair matrix
    /// `G[pair(p,r), pair(q,s)] = (pq|rs) − (ps|rq)`, `p>r`, `q>s`.
    pub g: Matrix,
    /// Irrep of each orbital.
    pub orb_sym: Vec<u8>,
    /// Number of irreps.
    pub n_irrep: usize,
    /// Process-unique identity token (see [`Hamiltonian::id`]).
    id: u64,
}

impl Clone for Hamiltonian {
    /// A clone is a *different* Hamiltonian as far as operand caches are
    /// concerned: it gets a fresh [`Hamiltonian::id`], because its
    /// coupling matrices are separate storage the caller may mutate
    /// independently of the original.
    fn clone(&self) -> Self {
        Hamiltonian {
            n: self.n,
            e_core: self.e_core,
            h: self.h.clone(),
            eri: self.eri.clone(),
            v: self.v.clone(),
            g: self.g.clone(),
            orb_sym: self.orb_sym.clone(),
            n_irrep: self.n_irrep,
            id: NEXT_HAM_ID.fetch_add(1, Ordering::Relaxed),
        }
    }
}

impl Hamiltonian {
    /// Process-unique identity token, assigned at construction (clones
    /// included). The σ kernels key their persistent packed-operand
    /// caches on this: a cache entry built for one Hamiltonian is never
    /// replayed against another, and a rebuilt/cloned Hamiltonian
    /// naturally invalidates stale entries.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Build from MO integrals.
    pub fn new(mo: &MoIntegrals) -> Self {
        let n = mo.n_orb;
        let v = Matrix::from_fn(n * n, n * n, |row, col| {
            let (p, q) = (row / n, row % n);
            let (r, s) = (col / n, col % n);
            mo.eri.get(p, q, r, s)
        });
        let npair = n * (n - 1) / 2;
        let mut g = Matrix::zeros(npair, npair);
        for p in 1..n {
            for r in 0..p {
                let row = pair_index(p, r);
                for q in 1..n {
                    for s in 0..q {
                        g[(row, pair_index(q, s))] =
                            mo.eri.get(p, q, r, s) - mo.eri.get(p, s, r, q);
                    }
                }
            }
        }
        Hamiltonian {
            n,
            e_core: mo.e_core,
            h: mo.h.clone(),
            eri: mo.eri.clone(),
            v,
            g,
            orb_sym: mo.orb_sym.clone(),
            n_irrep: mo.n_irrep,
            id: NEXT_HAM_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Diagonal element `⟨D|H|D⟩ − E_core` for the determinant with α
    /// occupation `amask` and β occupation `bmask`.
    pub fn diagonal_element(&self, amask: u64, bmask: u64) -> f64 {
        let aocc = fci_strings::occ_list(amask);
        let bocc = fci_strings::occ_list(bmask);
        let mut e = 0.0;
        for &p in &aocc {
            e += self.h[(p, p)];
        }
        for &p in &bocc {
            e += self.h[(p, p)];
        }
        // Same-spin pairs.
        for occ in [&aocc, &bocc] {
            for (i, &p) in occ.iter().enumerate() {
                for &q in occ.iter().skip(i + 1) {
                    e += self.eri.get(p, p, q, q) - self.eri.get(p, q, q, p);
                }
            }
        }
        // Opposite-spin pairs.
        for &p in &aocc {
            for &q in &bocc {
                e += self.eri.get(p, p, q, q);
            }
        }
        e
    }

    /// Number of ordered orbital pairs `p > r`.
    pub fn npair(&self) -> usize {
        self.n * (self.n - 1) / 2
    }
}

/// A synthetic Hamiltonian with random but *physically structured*
/// integrals: an ascending orbital-energy ladder on the diagonal with
/// weaker random couplings and two-electron terms — the single-reference
/// character of a molecule near equilibrium. Used by tests both for
/// σ-algorithm equivalence (structure-independent) and for diagonalizer
/// convergence (which, as in real FCI codes, presumes a dominant
/// reference determinant; see [`crate::diag`]).
pub fn random_hamiltonian(n: usize, seed: u64) -> Hamiltonian {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let mut h = Matrix::zeros(n, n);
    for p in 0..n {
        for q in 0..=p {
            let v = 0.25 * next();
            h[(p, q)] = v;
            h[(q, p)] = v;
        }
        // Orbital-energy ladder: the lowest determinant dominates.
        h[(p, p)] = -2.0 + 1.5 * p as f64 + 0.3 * next();
    }
    let mut eri = EriTensor::zeros(n);
    for p in 0..n {
        for q in 0..=p {
            for r in 0..=p {
                let smax = if r == p { q } else { r };
                for s in 0..=smax {
                    eri.set(p, q, r, s, 0.3 * next());
                }
            }
        }
    }
    let mo = MoIntegrals {
        n_orb: n,
        h,
        eri,
        e_core: 0.0,
        orb_sym: vec![0; n],
        n_irrep: 1,
    };
    Hamiltonian::new(&mo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v_matrix_symmetries() {
        let ham = random_hamiltonian(4, 7);
        let n = 4;
        for p in 0..n {
            for q in 0..n {
                for r in 0..n {
                    for s in 0..n {
                        let v = ham.v[(p * n + q, r * n + s)];
                        // (pq|rs) = (qp|rs) = (pq|sr) = (rs|pq)
                        assert_eq!(v, ham.v[(q * n + p, r * n + s)]);
                        assert_eq!(v, ham.v[(p * n + q, s * n + r)]);
                        assert_eq!(v, ham.v[(r * n + s, p * n + q)]);
                    }
                }
            }
        }
    }

    #[test]
    fn g_matrix_antisymmetrized() {
        let ham = random_hamiltonian(5, 3);
        // G[(p,r),(q,s)] = (pq|rs) − (ps|rq)
        let (p, r, q, s) = (3usize, 1usize, 4usize, 0usize);
        let expect = ham.eri.get(p, q, r, s) - ham.eri.get(p, s, r, q);
        assert_eq!(ham.g[(pair_index(p, r), pair_index(q, s))], expect);
        // Swapping both pairs (Hermiticity of the real operator):
        // G[(q,s),(p,r)] = (qp|sr) − (qr|sp) = (pq|rs) − (ps|rq)? Only when
        // the exchange term matches: (qr|sp) = (rq|ps) = (ps|rq)? yes by
        // full 8-fold symmetry of real integrals.
        assert!((ham.g[(pair_index(q, s), pair_index(p, r))] - expect).abs() < 1e-15);
    }

    #[test]
    fn diagonal_two_electron_count() {
        // For a two-α-electron determinant in orbitals {0,1}:
        // E = h00 + h11 + (00|11) − (01|10).
        let ham = random_hamiltonian(3, 11);
        let amask = 0b011u64;
        let e = ham.diagonal_element(amask, 0);
        let expect =
            ham.h[(0, 0)] + ham.h[(1, 1)] + ham.eri.get(0, 0, 1, 1) - ham.eri.get(0, 1, 1, 0);
        assert!((e - expect).abs() < 1e-15);
    }

    #[test]
    fn diagonal_mixed_spin_no_exchange() {
        // One α in 0, one β in 1: E = h00 + h11 + (00|11), no exchange.
        let ham = random_hamiltonian(3, 13);
        let e = ham.diagonal_element(0b001, 0b010);
        let expect = ham.h[(0, 0)] + ham.h[(1, 1)] + ham.eri.get(0, 0, 1, 1);
        assert!((e - expect).abs() < 1e-15);
    }

    #[test]
    fn random_hamiltonian_is_reproducible() {
        let a = random_hamiltonian(4, 42);
        let b = random_hamiltonian(4, 42);
        assert_eq!(a.h, b.h);
        assert!(a.v.max_abs_diff(&b.v) == 0.0);
    }

    #[test]
    fn ids_are_unique_including_clones() {
        let a = random_hamiltonian(3, 1);
        let b = random_hamiltonian(3, 1);
        let c = a.clone();
        assert_ne!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_ne!(b.id(), c.id());
    }
}
