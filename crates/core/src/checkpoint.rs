//! CI-vector checkpointing.
//!
//! The paper's motivation for the single-vector diagonalizer is that
//! subspace vectors do not fit in memory and "the I/O bandwidth is so
//! limited that storing the subspace vectors on disk implies a huge waste
//! of computing resources" (§2.2). A production run still checkpoints its
//! *single* current vector once per iteration so a crashed job can resume.
//! This module provides that: a flat little-endian f64 container with a
//! header recording the CI matrix shape, plus restart plumbing
//! ([`crate::diag::diagonalize_from`] accepts the loaded vector).

use fci_ddi::DistMatrix;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"FCIXCKP1";

/// Write a CI vector to `path` (atomic via a temp file + rename).
pub fn save_ci(path: &Path, c: &DistMatrix) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = io::BufWriter::new(std::fs::File::create(&tmp)?);
        f.write_all(MAGIC)?;
        f.write_all(&(c.nrows() as u64).to_le_bytes())?;
        f.write_all(&(c.ncols() as u64).to_le_bytes())?;
        for v in c.to_dense() {
            f.write_all(&v.to_le_bytes())?;
        }
        f.flush()?;
    }
    std::fs::rename(&tmp, path)
}

/// Load a CI vector from `path`, distributing it over `nproc` ranks.
pub fn load_ci(path: &Path, nproc: usize) -> io::Result<DistMatrix> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an fcix checkpoint",
        ));
    }
    let mut b8 = [0u8; 8];
    f.read_exact(&mut b8)?;
    let nrows = u64::from_le_bytes(b8) as usize;
    f.read_exact(&mut b8)?;
    let ncols = u64::from_le_bytes(b8) as usize;
    let mut data = vec![0.0f64; nrows * ncols];
    for v in &mut data {
        f.read_exact(&mut b8)?;
        *v = f64::from_le_bytes(b8);
    }
    // Reject trailing garbage (truncated/corrupted files fail above).
    if f.read(&mut [0u8; 1])? != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trailing bytes in checkpoint",
        ));
    }
    Ok(DistMatrix::from_dense(nrows, ncols, nproc, &data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detspace::DetSpace;
    use crate::diag::{diagonalize, diagonalize_from, DiagMethod, DiagOptions};
    use crate::hamiltonian::random_hamiltonian;
    use crate::sigma::{SigmaCtx, SigmaMethod};
    use crate::taskpool::PoolParams;
    use fci_ddi::{Backend, Ddi};
    use fci_xsim::MachineModel;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("fcix-ckp-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_preserves_vector() {
        let m = DistMatrix::from_dense(
            3,
            4,
            2,
            &(0..12).map(|x| x as f64 * 0.5 - 2.0).collect::<Vec<_>>(),
        );
        let path = tmpdir().join("rt.ckp");
        save_ci(&path, &m).unwrap();
        let back = load_ci(&path, 3).unwrap(); // different rank count is fine
        assert_eq!(back.to_dense(), m.to_dense());
        assert_eq!((back.nrows(), back.ncols()), (3, 4));
    }

    #[test]
    fn rejects_garbage() {
        let path = tmpdir().join("bad.ckp");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        assert!(load_ci(&path, 1).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let m = DistMatrix::from_dense(5, 5, 1, &[1.0; 25]);
        let path = tmpdir().join("trunc.ckp");
        save_ci(&path, &m).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 9]).unwrap();
        assert!(load_ci(&path, 1).is_err());
    }

    #[test]
    fn restart_resumes_convergence() {
        // Interrupt after a few iterations, checkpoint, reload, resume:
        // the combined iteration count must come out close to the
        // uninterrupted run and reach the same energy.
        let ham = random_hamiltonian(5, 41);
        let space = DetSpace::c1(5, 2, 2);
        let ddi = Ddi::new(2, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let full = diagonalize(
            &ctx,
            SigmaMethod::Dgemm,
            DiagMethod::AutoAdjust,
            &DiagOptions::default(),
        );
        assert!(full.converged);

        let partial = diagonalize(
            &ctx,
            SigmaMethod::Dgemm,
            DiagMethod::AutoAdjust,
            &DiagOptions {
                max_iter: 4,
                ..Default::default()
            },
        );
        assert!(!partial.converged);
        let path = tmpdir().join("restart.ckp");
        save_ci(&path, &partial.c).unwrap();
        let c0 = load_ci(&path, 2).unwrap();
        let resumed = diagonalize_from(
            &ctx,
            SigmaMethod::Dgemm,
            DiagMethod::AutoAdjust,
            &DiagOptions::default(),
            c0,
        );
        assert!(resumed.converged);
        assert!((resumed.e_elec - full.e_elec).abs() < 1e-8);
        // The resumed run re-estimates λ from scratch, which can cost an
        // iteration or two relative to the uninterrupted run.
        assert!(
            resumed.iterations <= full.iterations + 2,
            "restart lost progress: {} vs {}",
            resumed.iterations,
            full.iterations
        );
    }
}
