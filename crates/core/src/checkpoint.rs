//! CI-vector checkpointing.
//!
//! The paper's motivation for the single-vector diagonalizer is that
//! subspace vectors do not fit in memory and "the I/O bandwidth is so
//! limited that storing the subspace vectors on disk implies a huge waste
//! of computing resources" (§2.2). A production run still checkpoints its
//! *single* current vector once per iteration so a crashed job can resume.
//! This module provides that: a flat little-endian f64 container with a
//! header recording the CI matrix shape, plus restart plumbing
//! ([`crate::diag::diagonalize_from`] accepts the loaded vector).

use fci_ddi::DistMatrix;
use fci_fault::Crc32;
use std::io::{self, Read, Write};
use std::path::Path;

/// Current format: magic, version byte, shape, payload, CRC32 trailer.
const MAGIC_V2: &[u8; 8] = b"FCIXCKP2";
/// Legacy format (no version byte, no checksum); still readable.
const MAGIC_V1: &[u8; 8] = b"FCIXCKP1";
/// Format version written after [`MAGIC_V2`].
const VERSION: u8 = 2;
/// I/O chunk size in f64 elements (64 KiB blocks).
const CHUNK: usize = 8192;

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Write a CI vector to `path` (atomic via a temp file + rename).
///
/// Layout: `FCIXCKP2` magic, one version byte, `nrows`/`ncols` as LE
/// u64, the payload as LE f64, then a LE u32 CRC32 of the payload bytes.
/// The checksum is what lets a restart distinguish a bit-rotted
/// checkpoint from a good one instead of silently resuming from garbage.
pub fn save_ci(path: &Path, c: &DistMatrix) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = io::BufWriter::new(std::fs::File::create(&tmp)?);
        f.write_all(MAGIC_V2)?;
        f.write_all(&[VERSION])?;
        f.write_all(&(c.nrows() as u64).to_le_bytes())?;
        f.write_all(&(c.ncols() as u64).to_le_bytes())?;
        let dense = c.to_dense();
        let mut crc = Crc32::new();
        let mut block = Vec::with_capacity(CHUNK * 8);
        for chunk in dense.chunks(CHUNK) {
            block.clear();
            for v in chunk {
                block.extend_from_slice(&v.to_le_bytes());
            }
            crc.update(&block);
            f.write_all(&block)?;
        }
        f.write_all(&crc.finish().to_le_bytes())?;
        f.flush()?;
    }
    std::fs::rename(&tmp, path)
}

/// Load a CI vector from `path`, distributing it over `nproc` ranks.
///
/// Reads the current checksummed format and, behind the magic check, the
/// legacy `FCIXCKP1` layout (no version byte, no CRC). A checksum
/// mismatch, unknown version, truncation, or trailing garbage is an
/// `InvalidData` error.
pub fn load_ci(path: &Path, nproc: usize) -> io::Result<DistMatrix> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)?;
    let checksummed = match &magic {
        m if m == MAGIC_V2 => {
            let mut ver = [0u8; 1];
            f.read_exact(&mut ver)?;
            if ver[0] != VERSION {
                return Err(bad("unsupported checkpoint format version"));
            }
            true
        }
        m if m == MAGIC_V1 => false,
        _ => return Err(bad("not an fcix checkpoint")),
    };
    let mut b8 = [0u8; 8];
    f.read_exact(&mut b8)?;
    let nrows = u64::from_le_bytes(b8) as usize;
    f.read_exact(&mut b8)?;
    let ncols = u64::from_le_bytes(b8) as usize;
    let n = nrows
        .checked_mul(ncols)
        .ok_or_else(|| bad("checkpoint shape overflows"))?;
    let mut data = vec![0.0f64; n];
    let mut crc = Crc32::new();
    let mut block = vec![0u8; CHUNK * 8];
    for chunk in data.chunks_mut(CHUNK) {
        let bytes = &mut block[..chunk.len() * 8];
        f.read_exact(bytes)?;
        crc.update(bytes);
        for (v, b) in chunk.iter_mut().zip(bytes.chunks_exact(8)) {
            let mut le = [0u8; 8];
            le.copy_from_slice(b);
            *v = f64::from_le_bytes(le);
        }
    }
    if checksummed {
        let mut b4 = [0u8; 4];
        f.read_exact(&mut b4)?;
        if u32::from_le_bytes(b4) != crc.finish() {
            return Err(bad("checkpoint payload checksum mismatch (corrupted file)"));
        }
    }
    // Reject trailing garbage (truncated/corrupted files fail above).
    if f.read(&mut [0u8; 1])? != 0 {
        return Err(bad("trailing bytes in checkpoint"));
    }
    Ok(DistMatrix::from_dense(nrows, ncols, nproc, &data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detspace::DetSpace;
    use crate::diag::{diagonalize, diagonalize_from, DiagMethod, DiagOptions};
    use crate::hamiltonian::random_hamiltonian;
    use crate::sigma::{SigmaCtx, SigmaMethod};
    use crate::taskpool::PoolParams;
    use fci_ddi::{Backend, Ddi};
    use fci_xsim::MachineModel;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("fcix-ckp-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_preserves_vector() {
        let m = DistMatrix::from_dense(
            3,
            4,
            2,
            &(0..12).map(|x| x as f64 * 0.5 - 2.0).collect::<Vec<_>>(),
        );
        let path = tmpdir().join("rt.ckp");
        save_ci(&path, &m).unwrap();
        let back = load_ci(&path, 3).unwrap(); // different rank count is fine
        assert_eq!(back.to_dense(), m.to_dense());
        assert_eq!((back.nrows(), back.ncols()), (3, 4));
    }

    #[test]
    fn rejects_garbage() {
        let path = tmpdir().join("bad.ckp");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        assert!(load_ci(&path, 1).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let m = DistMatrix::from_dense(5, 5, 1, &[1.0; 25]);
        let path = tmpdir().join("trunc.ckp");
        save_ci(&path, &m).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 9]).unwrap();
        assert!(load_ci(&path, 1).is_err());
    }

    /// Byte offset of the first payload byte in the v2 layout.
    const V2_PAYLOAD: usize = 8 + 1 + 8 + 8;

    #[test]
    fn flipped_payload_byte_caught_by_crc() {
        let m = DistMatrix::from_dense(
            4,
            4,
            2,
            &(0..16).map(|x| (x as f64).cos()).collect::<Vec<_>>(),
        );
        let path = tmpdir().join("flip.ckp");
        save_ci(&path, &m).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[V2_PAYLOAD + 37] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_ci(&path, 1).unwrap_err();
        assert!(err.to_string().contains("checksum"), "wrong error: {err}");
    }

    #[test]
    fn corrupted_crc_trailer_rejected() {
        let m = DistMatrix::from_dense(2, 2, 1, &[1.0, 2.0, 3.0, 4.0]);
        let path = tmpdir().join("trailer.ckp");
        save_ci(&path, &m).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_ci(&path, 1).is_err());
    }

    #[test]
    fn unknown_version_rejected() {
        let m = DistMatrix::from_dense(2, 2, 1, &[1.0; 4]);
        let path = tmpdir().join("ver.ckp");
        save_ci(&path, &m).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 99; // version byte
        std::fs::write(&path, &bytes).unwrap();
        let err = load_ci(&path, 1).unwrap_err();
        assert!(err.to_string().contains("version"), "wrong error: {err}");
    }

    #[test]
    fn reads_legacy_v1_format() {
        // A pre-CRC checkpoint written by an older build: plain header +
        // payload, no version byte, no trailer. Must still load.
        let data: Vec<f64> = (0..6).map(|x| x as f64 * 1.5 - 4.0).collect();
        let path = tmpdir().join("legacy.ckp");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"FCIXCKP1");
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&3u64.to_le_bytes());
        for v in &data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let back = load_ci(&path, 2).unwrap();
        assert_eq!((back.nrows(), back.ncols()), (2, 3));
        assert_eq!(back.to_dense(), data);
        // The legacy reader still rejects trailing garbage.
        bytes.push(0xab);
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_ci(&path, 2).is_err());
    }

    #[test]
    #[should_panic(expected = "guess shape mismatch")]
    fn wrong_shape_resume_rejected() {
        // Resuming a solve from a checkpoint of a different CI space must
        // fail loudly at the shape check, not corrupt the iteration.
        let ham = random_hamiltonian(5, 41);
        let space = DetSpace::c1(5, 2, 2);
        let ddi = Ddi::new(2, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let path = tmpdir().join("wrong-shape.ckp");
        let wrong = DistMatrix::from_dense(3, 3, 2, &[0.5; 9]);
        save_ci(&path, &wrong).unwrap();
        let c0 = load_ci(&path, 2).unwrap();
        diagonalize_from(
            &ctx,
            SigmaMethod::Dgemm,
            DiagMethod::AutoAdjust,
            &DiagOptions::default(),
            c0,
        );
    }

    #[test]
    fn restart_resumes_convergence() {
        // Interrupt after a few iterations, checkpoint, reload, resume:
        // the combined iteration count must come out close to the
        // uninterrupted run and reach the same energy.
        let ham = random_hamiltonian(5, 41);
        let space = DetSpace::c1(5, 2, 2);
        let ddi = Ddi::new(2, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let full = diagonalize(
            &ctx,
            SigmaMethod::Dgemm,
            DiagMethod::AutoAdjust,
            &DiagOptions::default(),
        );
        assert!(full.converged);

        let partial = diagonalize(
            &ctx,
            SigmaMethod::Dgemm,
            DiagMethod::AutoAdjust,
            &DiagOptions {
                max_iter: 4,
                ..Default::default()
            },
        );
        assert!(!partial.converged);
        let path = tmpdir().join("restart.ckp");
        save_ci(&path, &partial.c).unwrap();
        let c0 = load_ci(&path, 2).unwrap();
        let resumed = diagonalize_from(
            &ctx,
            SigmaMethod::Dgemm,
            DiagMethod::AutoAdjust,
            &DiagOptions::default(),
            c0,
        );
        assert!(resumed.converged);
        assert!((resumed.e_elec - full.e_elec).abs() < 1e-8);
        // The resumed run re-estimates λ from scratch, which can cost an
        // iteration or two relative to the uninterrupted run.
        assert!(
            resumed.iterations <= full.iterations + 2,
            "restart lost progress: {} vs {}",
            resumed.iterations,
            full.iterations
        );
    }
}
