//! Glue between the DDI execution world and the xsim clocks: run one
//! parallel phase, collect per-rank clocks, and fold the communication
//! statistics into simulated time.

use fci_ddi::{CommStats, Ddi};
use fci_xsim::{Clock, MachineModel, RunReport};
use std::sync::Mutex;

/// Execute `f(rank, stats, clock)` on every rank and return the phase
/// report. Network/lock time implied by the recorded [`CommStats`] is
/// charged onto each rank's clock automatically.
///
/// `name` labels the phase in traces: if a tracer is attached to `ddi`,
/// the finished phase is emitted as per-MSP category spans (dual host /
/// simulated timestamps) followed by a barrier.
pub fn run_phase<F>(ddi: &Ddi, model: &MachineModel, name: &str, f: F) -> RunReport
where
    F: Fn(usize, &mut CommStats, &mut Clock) + Sync,
{
    let tracer = ddi.tracer();
    let host_start = tracer.now_us();
    let clocks = Mutex::new(vec![Clock::default(); ddi.nproc()]);
    let stats = ddi.run(|rank, st| {
        let mut ck = Clock::default();
        f(rank, st, &mut ck);
        clocks.lock().unwrap()[rank] = ck;
    });
    let mut clocks = clocks.into_inner().unwrap();
    for (ck, st) in clocks.iter_mut().zip(&stats) {
        charge_comm(ck, st, model);
    }
    if let Some(m) = tracer.metrics() {
        // Distribution of per-rank busy time: its spread *is* the load
        // imbalance Table 3 reports as a residual row.
        for ck in &clocks {
            m.observe("sigma.rank_busy_s", &[("phase", name)], ck.total());
        }
    }
    let report = RunReport::new(clocks);
    report.record_to(&tracer, name, host_start, tracer.now_us() - host_start);
    if let Some(m) = tracer.metrics() {
        m.observe("sigma.phase_s", &[("phase", name)], report.elapsed());
        m.observe(
            "sigma.phase_gflops",
            &[("phase", name)],
            report.gflops_per_msp(),
        );
    }
    report
}

/// Fold one rank's communication counters into its clock.
pub fn charge_comm(clock: &mut Clock, stats: &CommStats, model: &MachineModel) {
    clock.charge_net(model, stats.total_bytes(), stats.total_msgs());
    clock.charge_mutex(model, stats.mutex_acquires);
    clock.note_nxtval(stats.nxtval_msgs);
    if stats.retries > 0 || stats.backoff_ns > 0 {
        clock.charge_backoff(stats.backoff_ns, stats.retries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fci_ddi::Backend;
    use fci_obs::{RunSummary, Tracer};

    #[test]
    fn phase_collects_all_ranks() {
        let ddi = Ddi::new(4, Backend::Serial);
        let model = MachineModel::cray_x1();
        let rep = run_phase(&ddi, &model, "test", |rank, _st, ck| {
            ck.charge_daxpy(&model, (rank + 1) as f64 * 1e9);
        });
        assert_eq!(rep.nproc(), 4);
        // Slowest rank = rank 3: 4e9 flops at 2 GF/s = 2 s.
        assert!((rep.elapsed() - 2.0).abs() < 1e-12);
        assert!(rep.load_imbalance() > 0.0);
    }

    #[test]
    fn comm_is_charged() {
        let ddi = Ddi::new(2, Backend::Serial);
        let model = MachineModel::cray_x1();
        let m = fci_ddi::DistMatrix::zeros(10, 4, 2);
        let rep = run_phase(&ddi, &model, "test", |rank, st, _ck| {
            let buf = vec![1.0; 10];
            // Every rank accumulates into a column it does not own.
            let col = if rank == 0 { 3 } else { 0 };
            m.acc_col(rank, col, &buf, st);
        });
        assert!(rep.elapsed() > 0.0);
        assert!(rep.total_net_bytes() > 0.0);
        // acc moves 2× payload: 10 doubles → 160 bytes per rank.
        assert!((rep.total_net_bytes() - 320.0).abs() < 1e-9);
        // Message and lock counters surface at report level.
        assert_eq!(rep.total_net_msgs(), 2.0);
        assert_eq!(rep.total_lock_acquires(), 2.0);
    }

    #[test]
    fn traced_phase_matches_report() {
        let ddi = Ddi::new(3, Backend::Serial);
        let tracer = Tracer::in_memory();
        ddi.attach_tracer(tracer.clone());
        let model = MachineModel::cray_x1();
        let rep = run_phase(&ddi, &model, "work", |rank, _st, ck| {
            ck.charge_daxpy(&model, (rank + 1) as f64 * 1e8);
            ck.charge_io(&model, 1e6, 0.0);
        });
        let s = RunSummary::from_events(&tracer.events().unwrap());
        let direct = rep.summary();
        assert_eq!(s.nproc, 3);
        assert!((s.elapsed - direct.elapsed).abs() < 1e-12);
        assert!((s.t_daxpy - direct.t_daxpy).abs() < 1e-12);
        assert!((s.t_io - direct.t_io).abs() < 1e-12);
    }
}
