//! Slater–Condon rules: the brute-force reference Hamiltonian.
//!
//! Completely independent of the string-table machinery in `fci-strings`
//! (phases are recomputed from bit operations here), this module provides
//! the oracle the σ algorithms are validated against:
//!
//! * [`element`] — `⟨D₁|H|D₂⟩` between two determinants,
//! * [`dense_h`] — the full explicit Hamiltonian of a small [`DetSpace`],
//! * [`sigma_dense`] — σ = H·C by dense multiplication.
//!
//! It is also what the model-space preconditioner uses to build its exact
//! `H_MM` block.

use crate::detspace::DetSpace;
use crate::hamiltonian::Hamiltonian;
use fci_linalg::Matrix;

/// Phase of bringing orbital `q` out of `mask` (number of occupied
/// orbitals below q must be even for +1).
#[inline]
fn ann_phase(mask: u64, q: usize) -> f64 {
    if (mask & ((1u64 << q) - 1)).count_ones().is_multiple_of(2) {
        1.0
    } else {
        -1.0
    }
}

/// Matrix element contribution machinery for one spin channel: returns the
/// list of orbitals in `a` but not `b`, ascending.
fn diff_orbs(a: u64, b: u64) -> Vec<usize> {
    let mut v = Vec::new();
    let mut m = a & !b;
    while m != 0 {
        v.push(m.trailing_zeros() as usize);
        m &= m - 1;
    }
    v
}

/// Phase for a single excitation q→p on `mask` (q occupied, p empty).
///
/// Public because the sparse engine (`fci-sparse`) computes Slater–Condon
/// elements per connection with the excitation already identified, and
/// must agree with [`element`] bit for bit.
pub fn single_phase(mask: u64, p: usize, q: usize) -> f64 {
    let s1 = ann_phase(mask, q);
    let m1 = mask & !(1u64 << q);
    let s2 = ann_phase(m1, p); // creation phase = same counting rule
    s1 * s2
}

/// Phase for the same-spin double `q1,q2 → p1,p2` (operator
/// `a†_{p1} a†_{p2} a_{q2} a_{q1}` applied to `mask`). Public for the
/// same reason as [`single_phase`].
pub fn double_phase(mask: u64, p1: usize, p2: usize, q1: usize, q2: usize) -> f64 {
    let mut m = mask;
    let mut s = ann_phase(m, q1);
    m &= !(1u64 << q1);
    s *= ann_phase(m, q2);
    m &= !(1u64 << q2);
    s *= ann_phase(m, p2);
    m |= 1u64 << p2;
    s *= ann_phase(m, p1);
    s
}

/// `⟨(Ia, Ib)| H − E_core |(Ja, Jb)⟩` by the Slater–Condon rules.
pub fn element(ham: &Hamiltonian, ia: u64, ib: u64, ja: u64, jb: u64) -> f64 {
    let da = (ia ^ ja).count_ones() / 2;
    let db = (ib ^ jb).count_ones() / 2;
    match (da, db) {
        (0, 0) => ham.diagonal_element(ia, ib),
        (1, 0) | (0, 1) => {
            // One single excitation; identify the spin channel.
            let (m_i, m_j, other_occ) = if da == 1 { (ia, ja, ib) } else { (ib, jb, ia) };
            let p = diff_orbs(m_i, m_j)[0]; // in I, not J  (created)
            let q = diff_orbs(m_j, m_i)[0]; // in J, not I  (annihilated)
            let phase = single_phase(m_j, p, q);
            let mut v = ham.h[(p, q)];
            // Coulomb/exchange with same-spin spectators.
            let mut m = m_j & m_i;
            while m != 0 {
                let r = m.trailing_zeros() as usize;
                m &= m - 1;
                v += ham.eri.get(p, q, r, r) - ham.eri.get(p, r, r, q);
            }
            // Coulomb with opposite-spin spectators.
            let mut m = other_occ;
            while m != 0 {
                let r = m.trailing_zeros() as usize;
                m &= m - 1;
                v += ham.eri.get(p, q, r, r);
            }
            phase * v
        }
        (2, 0) | (0, 2) => {
            let (m_i, m_j) = if da == 2 { (ia, ja) } else { (ib, jb) };
            let ps = diff_orbs(m_i, m_j); // p1 < p2 created
            let qs = diff_orbs(m_j, m_i); // q1 < q2 annihilated
            let (p1, p2, q1, q2) = (ps[0], ps[1], qs[0], qs[1]);
            let phase = double_phase(m_j, p1, p2, q1, q2);
            phase * (ham.eri.get(p1, q1, p2, q2) - ham.eri.get(p1, q2, p2, q1))
        }
        (1, 1) => {
            let pa = diff_orbs(ia, ja)[0];
            let qa = diff_orbs(ja, ia)[0];
            let pb = diff_orbs(ib, jb)[0];
            let qb = diff_orbs(jb, ib)[0];
            let phase = single_phase(ja, pa, qa) * single_phase(jb, pb, qb);
            phase * ham.eri.get(pa, qa, pb, qb)
        }
        _ => 0.0,
    }
}

/// Explicit Hamiltonian matrix of a (small!) determinant space, ordered
/// with the composite index `ib + ia · nβ` (matching the column-major CI
/// matrix layout). `E_core` is *not* included.
pub fn dense_h(space: &DetSpace, ham: &Hamiltonian) -> Matrix {
    let na = space.alpha.len();
    let nb = space.beta.len();
    let dim = na * nb;
    assert!(
        dim <= 20_000,
        "dense_h is a reference path; {dim} determinants is too many"
    );
    let mut h = Matrix::zeros(dim, dim);
    for ia in 0..na {
        for ib in 0..nb {
            let i = ib + ia * nb;
            for ja in 0..na {
                // Skip impossible α excitations early.
                if (space.alpha.mask(ia) ^ space.alpha.mask(ja)).count_ones() > 4 {
                    continue;
                }
                for jb in 0..nb {
                    let j = jb + ja * nb;
                    if j > i {
                        continue;
                    }
                    let v = element(
                        ham,
                        space.alpha.mask(ia),
                        space.beta.mask(ib),
                        space.alpha.mask(ja),
                        space.beta.mask(jb),
                    );
                    h[(i, j)] = v;
                    h[(j, i)] = v;
                }
            }
        }
    }
    h
}

/// Reference σ = (H − E_core)·c on a dense coefficient vector laid out as
/// `c[ib + ia·nβ]`.
pub fn sigma_dense(space: &DetSpace, ham: &Hamiltonian, c: &[f64]) -> Vec<f64> {
    let h = dense_h(space, ham);
    let dim = c.len();
    assert_eq!(dim, space.dim());
    let mut out = vec![0.0; dim];
    for i in 0..dim {
        let mut acc = 0.0;
        for j in 0..dim {
            acc += h[(i, j)] * c[j];
        }
        out[i] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::random_hamiltonian;
    use fci_linalg::eigh;

    #[test]
    fn dense_h_is_symmetric() {
        let ham = random_hamiltonian(5, 21);
        let space = DetSpace::c1(5, 2, 2);
        let h = dense_h(&space, &ham);
        assert!(h.is_symmetric(1e-12));
    }

    #[test]
    fn two_electron_singlet_pair_matches_direct_integrals() {
        // One α + one β electron in 2 orbitals: H is 4×4 and every element
        // has a closed form.
        let ham = random_hamiltonian(2, 5);
        let space = DetSpace::c1(2, 1, 1);
        let h = dense_h(&space, &ham);
        // dets (column-major composite): (a0,b0), (a0,b1), (a1,b0), (a1,b1)
        // with index ib + ia*2 — note alpha.mask(0)=orb0.
        let e = |p: usize, q: usize, r: usize, s: usize| ham.eri.get(p, q, r, s);
        let hh = &ham.h;
        // ⟨a0 b0|H|a0 b0⟩ = h00 + h00 + (00|00)
        assert!((h[(0, 0)] - (2.0 * hh[(0, 0)] + e(0, 0, 0, 0))).abs() < 1e-14);
        // ⟨a0 b0|H|a0 b1⟩: β single 1→0 ... created 0? I=(a0,b0), J=(a0,b1):
        // p=0 (in I), q=1 (in J): phase +1, v = h01 + (01|00)
        assert!((h[(0, 1)] - (hh[(0, 1)] + e(0, 1, 0, 0))).abs() < 1e-14);
        // ⟨a0 b0|H|a1 b1⟩: α single 1→0 and β single 1→0: (01|01)
        assert!((h[(0, 3)] - e(0, 1, 0, 1)).abs() < 1e-14);
        // ⟨a0 b1|H|a1 b0⟩: α 1→0, β 0→1: phase +: (01|10)
        assert!((h[(1, 2)] - e(0, 1, 1, 0)).abs() < 1e-14);
    }

    #[test]
    fn same_spin_double_element() {
        // Two α electrons in 4 orbitals: ⟨{01}|H|{23}⟩ = (02|13) − (03|12).
        let ham = random_hamiltonian(4, 8);
        let i = 0b0011u64;
        let j = 0b1100u64;
        let v = element(&ham, i, 0, j, 0);
        // created p1=0,p2=1; annihilated q1=2,q2=3.
        // phase of a†0 a†1 a3 a2 on |{23}⟩: a2:+, a3:(below: none left)=+,
        // a†1:+, a†0:+ → +1 … verify against our helper:
        let expect = ham.eri.get(0, 2, 1, 3) - ham.eri.get(0, 3, 1, 2);
        assert!((v - expect).abs() < 1e-14, "{v} vs {expect}");
    }

    #[test]
    fn triple_excitation_is_zero() {
        let ham = random_hamiltonian(6, 2);
        assert_eq!(element(&ham, 0b000111, 0, 0b111000, 0), 0.0);
        assert_eq!(element(&ham, 0b000111, 0b000011, 0b001011, 0b001100), 0.0);
    }

    #[test]
    fn hermiticity_of_elements() {
        let ham = random_hamiltonian(5, 77);
        let space = DetSpace::c1(5, 2, 1);
        for ia in 0..space.alpha.len() {
            for ja in 0..space.alpha.len() {
                for ib in 0..space.beta.len() {
                    for jb in 0..space.beta.len() {
                        let a = element(
                            &ham,
                            space.alpha.mask(ia),
                            space.beta.mask(ib),
                            space.alpha.mask(ja),
                            space.beta.mask(jb),
                        );
                        let b = element(
                            &ham,
                            space.alpha.mask(ja),
                            space.beta.mask(jb),
                            space.alpha.mask(ia),
                            space.beta.mask(ib),
                        );
                        assert!((a - b).abs() < 1e-13);
                    }
                }
            }
        }
    }

    #[test]
    fn eigenvalues_invariant_under_alpha_beta_swap() {
        // H is symmetric under exchanging the roles of α and β when
        // Nα = Nβ: the spectra must coincide.
        let ham = random_hamiltonian(4, 31);
        let s12 = DetSpace::c1(4, 1, 2);
        let s21 = DetSpace::c1(4, 2, 1);
        let e1 = eigh(&dense_h(&s12, &ham)).eigenvalues;
        let e2 = eigh(&dense_h(&s21, &ham)).eigenvalues;
        for (a, b) in e1.iter().zip(&e2) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn sigma_dense_matches_matrix_product() {
        let ham = random_hamiltonian(4, 19);
        let space = DetSpace::c1(4, 2, 2);
        let dim = space.dim();
        let c: Vec<f64> = (0..dim)
            .map(|i| ((i * 37 + 11) % 17) as f64 / 17.0 - 0.5)
            .collect();
        let s = sigma_dense(&space, &ham, &c);
        let h = dense_h(&space, &ham);
        for i in 0..dim {
            let mut acc = 0.0;
            for j in 0..dim {
                acc += h[(i, j)] * c[j];
            }
            assert!((s[i] - acc).abs() < 1e-12);
        }
    }
}
