//! Block Davidson for several lowest roots.
//!
//! The paper solves only the lowest eigenpair; excited states are the
//! natural extension (and the reason production FCI codes keep a subspace
//! method around even when a single-vector scheme handles the ground
//! state). This block Davidson expands the subspace with one
//! preconditioned residual per *unconverged* root per iteration, and
//! seeds from the lowest model-space eigenvectors, so near-degenerate
//! roots converge together instead of root-flipping.

use crate::diag::{DiagOptions, Preconditioner};
use crate::sigma::{apply_sigma, SigmaBreakdown, SigmaCtx, SigmaMethod};
use fci_ddi::DistMatrix;
use fci_linalg::{cholesky_lower, dgemm, eigh, trsm_right_ltrans, Matrix, Trans};

/// Result of a multi-root diagonalization.
#[derive(Debug)]
pub struct MultiRootResult {
    /// Electronic energies of the computed roots, ascending.
    pub energies: Vec<f64>,
    /// CI vectors, one per root.
    pub states: Vec<DistMatrix>,
    /// σ evaluations used in total.
    pub iterations: usize,
    /// Per-root convergence flags.
    pub converged: Vec<bool>,
    /// Accumulated simulated σ cost.
    pub sigma_cost: SigmaBreakdown,
}

fn clone_dist(a: &DistMatrix) -> DistMatrix {
    let out = DistMatrix::zeros(a.nrows(), a.ncols(), a.nproc());
    out.copy_from(a);
    out
}

/// Compute the `nroots` lowest eigenpairs of `H − E_core` in the sector.
pub fn diagonalize_roots(
    ctx: &SigmaCtx,
    sigma_method: SigmaMethod,
    opts: &DiagOptions,
    nroots: usize,
) -> MultiRootResult {
    assert!(nroots >= 1);
    let space = ctx.space;
    let nproc = ctx.ddi.nproc();
    let sector = space.sector_dim();
    assert!(
        nroots <= sector,
        "asked for {nroots} roots in a {sector}-determinant sector"
    );
    let diag = space.diagonal(ctx.ham, nproc);
    // A model space at least as large as the root count keeps the seed
    // vectors linearly independent.
    let pre = Preconditioner::new(
        space,
        ctx.ham,
        &diag,
        opts.model_space.max(2 * nroots).min(sector),
    );
    let max_subspace = opts.max_subspace.max(4 * nroots);

    // Seed with the lowest model-space eigenvectors.
    let mut basis: Vec<DistMatrix> = pre.model_space_guesses(nproc, nroots).into_iter().collect();
    if basis.is_empty() {
        basis.push(space.guess(ctx.ham, nproc));
    }
    orthonormalize(&mut basis, 0);

    let mut hbasis: Vec<DistMatrix> = Vec::new();
    let mut cost = SigmaBreakdown::default();
    let mut iterations = 0;
    let mut energies = vec![0.0; nroots];
    let mut states: Vec<DistMatrix> = Vec::new();
    let mut conv = vec![false; nroots];

    while iterations < opts.max_iter * nroots {
        // σ for any basis vectors that lack one.
        while hbasis.len() < basis.len() {
            let (hb, bd) = apply_sigma(ctx, &basis[hbasis.len()], sigma_method);
            space.project_sector(&hb);
            cost.merge(&bd);
            hbasis.push(hb);
            iterations += 1;
        }
        let m = basis.len();
        let hsub = subspace_gram(&basis, &hbasis);
        let hsub = Matrix::from_fn(m, m, |i, j| 0.5 * (hsub[(i, j)] + hsub[(j, i)]));
        let es = eigh(&hsub);

        states.clear();
        let mut residuals = Vec::new();
        for k in 0..nroots.min(m) {
            let theta = es.eigenvalues[k];
            energies[k] = theta;
            let c = space.zeros_ci(nproc);
            let r = space.zeros_ci(nproc);
            for i in 0..m {
                let y = es.eigenvectors[(i, k)];
                c.axpy(y, &basis[i]);
                r.axpy(y, &hbasis[i]);
            }
            r.axpy(-theta, &c);
            let res = r.norm();
            conv[k] = res < opts.tol;
            states.push(c);
            residuals.push((k, theta, r, res));
        }
        if conv.iter().all(|&b| b) {
            break;
        }
        if iterations >= opts.max_iter * nroots {
            break;
        }

        // Collapse if the subspace is full.
        if m + nroots > max_subspace {
            basis = states.iter().map(clone_dist).collect();
            orthonormalize(&mut basis, 0);
            hbasis.clear();
            continue;
        }
        // Expand with preconditioned residuals of unconverged roots.
        let start = basis.len();
        for (k, theta, r, res) in residuals {
            if res < opts.tol {
                continue;
            }
            let _ = k;
            let t = pre.apply(&r, theta);
            basis.push(t);
        }
        let kept = orthonormalize(&mut basis, start);
        if kept == 0 {
            break; // no new directions — as converged as we can get
        }
    }

    MultiRootResult {
        energies,
        states,
        iterations,
        converged: conv,
        sigma_cost: cost,
    }
}

/// Dense copy of rank `p`'s local slab of each vector in `v`, one vector
/// per column.
fn local_block(v: &[DistMatrix], p: usize) -> Matrix {
    let m = v.len();
    let len = v[0].with_local(p, |s| s.len());
    let mut out = Matrix::zeros(len, m);
    for (i, vi) in v.iter().enumerate() {
        vi.with_local(p, |s| out.col_mut(i).copy_from_slice(s));
    }
    out
}

/// Gram matrix `XᵀY` of two lists of equal-shaped distributed vectors,
/// accumulated rank by rank with DGEMM instead of `x.len()·y.len()`
/// pairwise dot products. When `x` and `y` are the same slice, each
/// rank's block is copied once and passed to DGEMM as both operands.
pub(crate) fn subspace_gram(x: &[DistMatrix], y: &[DistMatrix]) -> Matrix {
    let mut g = Matrix::zeros(x.len(), y.len());
    if x.is_empty() || y.is_empty() {
        return g;
    }
    let same = std::ptr::eq(x.as_ptr(), y.as_ptr()) && x.len() == y.len();
    for p in 0..x[0].nproc() {
        let xp = local_block(x, p);
        if same {
            dgemm(Trans::Yes, Trans::No, 1.0, &xp, &xp, 1.0, &mut g);
        } else {
            let yp = local_block(y, p);
            dgemm(Trans::Yes, Trans::No, 1.0, &xp, &yp, 1.0, &mut g);
        }
    }
    g
}

/// One classical Gram–Schmidt projection of `t` against `basis` (assumed
/// orthonormal): `t ← t − B(Bᵀt)`, with both products done per rank by
/// DGEMM so the coefficient vector is formed once for the whole basis.
pub(crate) fn project_against(basis: &[DistMatrix], t: &DistMatrix) {
    if basis.is_empty() {
        return;
    }
    let m = basis.len();
    let nproc = t.nproc();
    let mut coeff = Matrix::zeros(m, 1);
    for p in 0..nproc {
        let bp = local_block(basis, p);
        let tp = t.with_local(p, |s| Matrix::from_fn(s.len(), 1, |i, _| s[i]));
        dgemm(Trans::Yes, Trans::No, 1.0, &bp, &tp, 1.0, &mut coeff);
    }
    for p in 0..nproc {
        let bp = local_block(basis, p);
        let mut corr = Matrix::zeros(bp.nrows(), 1);
        dgemm(Trans::No, Trans::No, 1.0, &bp, &coeff, 0.0, &mut corr);
        t.with_local(p, |s| {
            for (si, ci) in s.iter_mut().zip(corr.as_slice()) {
                *si -= ci;
            }
        });
    }
}

/// Orthonormalize `v[start..]` against the (already orthonormal) prefix
/// `v[..start]` and among themselves; drops vectors that lose their norm.
/// Returns how many new vectors survive.
///
/// Two passes of block classical Gram–Schmidt with Cholesky-QR: project
/// the block against the prefix (DGEMM), drop near-null columns, then
/// orthonormalize the block by factoring its Gram matrix and applying
/// `L⁻ᵀ` to the local slabs. A numerically singular Gram matrix (e.g.
/// duplicated expansion vectors) fails the Cholesky pivot check, and we
/// fall back to modified Gram–Schmidt, which sheds dependent vectors one
/// at a time.
fn orthonormalize(v: &mut Vec<DistMatrix>, start: usize) -> usize {
    for _pass in 0..2 {
        let mut k = start;
        while k < v.len() {
            project_against(&v[..start], &v[k]);
            if v[k].norm() < 1e-10 {
                v.remove(k);
            } else {
                k += 1;
            }
        }
        if v.len() == start {
            return 0;
        }
        let mut g = subspace_gram(&v[start..], &v[start..]);
        if cholesky_lower(&mut g).is_err() {
            return orthonormalize_mgs(v, start);
        }
        for p in 0..v[start].nproc() {
            let mut xp = local_block(&v[start..], p);
            trsm_right_ltrans(&g, &mut xp);
            for (i, vi) in v[start..].iter().enumerate() {
                vi.with_local(p, |s| s.copy_from_slice(xp.col(i)));
            }
        }
    }
    v.len() - start
}

/// Modified Gram–Schmidt fallback for rank-deficient blocks: orthogonalize
/// `v[start..]` one vector at a time against everything before it, dropping
/// vectors that lose their norm. Returns how many new vectors survive.
fn orthonormalize_mgs(v: &mut Vec<DistMatrix>, start: usize) -> usize {
    let mut k = start;
    while k < v.len() {
        for _pass in 0..2 {
            for j in 0..k {
                let (head, tail) = v.split_at_mut(k);
                let ov = head[j].dot(&tail[0]);
                tail[0].axpy(-ov, &head[j]);
            }
        }
        let n = v[k].norm();
        if n < 1e-10 {
            v.remove(k);
        } else {
            v[k].scale(1.0 / n);
            k += 1;
        }
    }
    v.len() - start
}

impl Preconditioner {
    /// The `k` lowest model-space eigenvectors embedded in the CI space.
    pub fn model_space_guesses(&self, nproc: usize, k: usize) -> Vec<DistMatrix> {
        let dets = self.model_dets();
        if dets.is_empty() {
            return Vec::new();
        }
        let es = eigh(self.model_block());
        let (nrows, ncols) = self.ci_shape();
        (0..k.min(dets.len()))
            .map(|r| {
                let c = DistMatrix::zeros(nrows, ncols, nproc);
                for (i, &(ib, ia)) in dets.iter().enumerate() {
                    c.set(ib, ia, es.eigenvectors[(i, r)]);
                }
                c
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detspace::DetSpace;
    use crate::hamiltonian::random_hamiltonian;
    use crate::slater;
    use crate::taskpool::PoolParams;
    use fci_ddi::{Backend, Ddi};
    use fci_xsim::MachineModel;

    fn setup(
        n: usize,
        na: usize,
        nb: usize,
        seed: u64,
    ) -> (DetSpace, crate::hamiltonian::Hamiltonian) {
        (DetSpace::c1(n, na, nb), random_hamiltonian(n, seed))
    }

    #[test]
    fn three_lowest_roots_match_dense() {
        let (space, ham) = setup(5, 2, 2, 17);
        let ddi = Ddi::new(2, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let r = diagonalize_roots(
            &ctx,
            SigmaMethod::Dgemm,
            &DiagOptions {
                max_iter: 80,
                ..Default::default()
            },
            3,
        );
        assert!(
            r.converged.iter().all(|&b| b),
            "roots not converged: {:?}",
            r.converged
        );
        let h = slater::dense_h(&space, &ham);
        let exact = fci_linalg::eigh(&h).eigenvalues;
        for (k, ex) in exact.iter().take(3).enumerate() {
            assert!(
                (r.energies[k] - ex).abs() < 1e-7,
                "root {k}: {} vs {}",
                r.energies[k],
                ex
            );
        }
        // Roots ascend and states are orthonormal.
        assert!(r.energies[0] <= r.energies[1] && r.energies[1] <= r.energies[2]);
        for i in 0..3 {
            for j in 0..3 {
                let ov = r.states[i].dot(&r.states[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((ov - expect).abs() < 1e-6, "⟨{i}|{j}⟩ = {ov}");
            }
        }
    }

    #[test]
    fn single_root_agrees_with_ground_solver() {
        let (space, ham) = setup(5, 3, 2, 23);
        let ddi = Ddi::new(1, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let multi = diagonalize_roots(&ctx, SigmaMethod::Dgemm, &DiagOptions::default(), 1);
        let single = crate::diag::diagonalize(
            &ctx,
            SigmaMethod::Dgemm,
            crate::diag::DiagMethod::Davidson,
            &DiagOptions::default(),
        );
        assert!(multi.converged[0] && single.converged);
        assert!((multi.energies[0] - single.e_elec).abs() < 1e-8);
    }

    /// 12-component test vector distributed as a 4×3 CI-shaped matrix.
    fn dv(data: &[f64], nproc: usize) -> DistMatrix {
        DistMatrix::from_dense(4, 3, nproc, data)
    }

    fn rand_data(seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..12)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn orthonormalize_drops_prefix_duplicates_mid_basis() {
        let nproc = 2;
        let mut v = vec![dv(&rand_data(1), nproc), dv(&rand_data(2), nproc)];
        assert_eq!(orthonormalize(&mut v, 0), 2);
        // Append an exact duplicate of a prefix vector plus one genuinely
        // new direction, then orthonormalize from mid-basis.
        let dup = clone_dist(&v[0]);
        v.push(dup);
        v.push(dv(&rand_data(3), nproc));
        let kept = orthonormalize(&mut v, 2);
        assert_eq!(kept, 1, "prefix duplicate must be dropped");
        assert_eq!(v.len(), 3);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                let ov = v[i].dot(&v[j]);
                assert!((ov - want).abs() < 1e-10, "⟨{i}|{j}⟩ = {ov}");
            }
        }
    }

    #[test]
    fn orthonormalize_rank_deficient_block_falls_back() {
        // Two identical vectors inside one block make the Gram matrix
        // singular: Cholesky must fail and the MGS fallback shed one.
        let nproc = 3;
        let a = rand_data(7);
        let mut v = vec![dv(&a, nproc), dv(&a, nproc), dv(&rand_data(8), nproc)];
        let kept = orthonormalize(&mut v, 0);
        assert_eq!(kept, 2, "in-block duplicate must be shed");
        for i in 0..2 {
            for j in 0..2 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((v[i].dot(&v[j]) - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn cholqr_and_mgs_agree_on_span() {
        let nproc = 2;
        let data: Vec<Vec<f64>> = (0..4).map(|s| rand_data(100 + s)).collect();
        let mut qr: Vec<DistMatrix> = data.iter().map(|d| dv(d, nproc)).collect();
        let mut gs: Vec<DistMatrix> = data.iter().map(|d| dv(d, nproc)).collect();
        assert_eq!(orthonormalize(&mut qr, 0), 4);
        assert_eq!(orthonormalize_mgs(&mut gs, 0), 4);
        // Both bases are orthonormal and span the same subspace: every
        // CholQR vector projects to nothing outside the MGS basis.
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((qr[i].dot(&qr[j]) - want).abs() < 1e-10);
            }
            let t = clone_dist(&qr[i]);
            project_against(&gs, &t);
            assert!(t.norm() < 1e-10, "vector {i} leaves the MGS span");
        }
    }

    #[test]
    fn near_degenerate_roots_resolve() {
        // Two α electrons in a symmetric double-well-like ladder: force
        // close-lying roots and check the block method separates them.
        let (space, ham) = setup(6, 2, 1, 5);
        let ddi = Ddi::new(3, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let r = diagonalize_roots(
            &ctx,
            SigmaMethod::Dgemm,
            &DiagOptions {
                max_iter: 100,
                ..Default::default()
            },
            4,
        );
        let h = slater::dense_h(&space, &ham);
        let exact = fci_linalg::eigh(&h).eigenvalues;
        for (k, ex) in exact.iter().take(4).enumerate() {
            assert!(r.converged[k], "root {k} NC");
            assert!((r.energies[k] - ex).abs() < 1e-7);
        }
    }
}
