//! Block Davidson for several lowest roots.
//!
//! The paper solves only the lowest eigenpair; excited states are the
//! natural extension (and the reason production FCI codes keep a subspace
//! method around even when a single-vector scheme handles the ground
//! state). This block Davidson expands the subspace with one
//! preconditioned residual per *unconverged* root per iteration, and
//! seeds from the lowest model-space eigenvectors, so near-degenerate
//! roots converge together instead of root-flipping.

use crate::diag::{DiagOptions, Preconditioner};
use crate::sigma::{apply_sigma, SigmaBreakdown, SigmaCtx, SigmaMethod};
use fci_ddi::DistMatrix;
use fci_linalg::{eigh, Matrix};

/// Result of a multi-root diagonalization.
#[derive(Debug)]
pub struct MultiRootResult {
    /// Electronic energies of the computed roots, ascending.
    pub energies: Vec<f64>,
    /// CI vectors, one per root.
    pub states: Vec<DistMatrix>,
    /// σ evaluations used in total.
    pub iterations: usize,
    /// Per-root convergence flags.
    pub converged: Vec<bool>,
    /// Accumulated simulated σ cost.
    pub sigma_cost: SigmaBreakdown,
}

fn clone_dist(a: &DistMatrix) -> DistMatrix {
    let out = DistMatrix::zeros(a.nrows(), a.ncols(), a.nproc());
    out.copy_from(a);
    out
}

/// Compute the `nroots` lowest eigenpairs of `H − E_core` in the sector.
pub fn diagonalize_roots(
    ctx: &SigmaCtx,
    sigma_method: SigmaMethod,
    opts: &DiagOptions,
    nroots: usize,
) -> MultiRootResult {
    assert!(nroots >= 1);
    let space = ctx.space;
    let nproc = ctx.ddi.nproc();
    let sector = space.sector_dim();
    assert!(
        nroots <= sector,
        "asked for {nroots} roots in a {sector}-determinant sector"
    );
    let diag = space.diagonal(ctx.ham, nproc);
    // A model space at least as large as the root count keeps the seed
    // vectors linearly independent.
    let pre = Preconditioner::new(
        space,
        ctx.ham,
        &diag,
        opts.model_space.max(2 * nroots).min(sector),
    );
    let max_subspace = opts.max_subspace.max(4 * nroots);

    // Seed with the lowest model-space eigenvectors.
    let mut basis: Vec<DistMatrix> = pre.model_space_guesses(nproc, nroots).into_iter().collect();
    if basis.is_empty() {
        basis.push(space.guess(ctx.ham, nproc));
    }
    orthonormalize(&mut basis, 0);

    let mut hbasis: Vec<DistMatrix> = Vec::new();
    let mut cost = SigmaBreakdown::default();
    let mut iterations = 0;
    let mut energies = vec![0.0; nroots];
    let mut states: Vec<DistMatrix> = Vec::new();
    let mut conv = vec![false; nroots];

    while iterations < opts.max_iter * nroots {
        // σ for any basis vectors that lack one.
        while hbasis.len() < basis.len() {
            let (hb, bd) = apply_sigma(ctx, &basis[hbasis.len()], sigma_method);
            space.project_sector(&hb);
            cost.merge(&bd);
            hbasis.push(hb);
            iterations += 1;
        }
        let m = basis.len();
        let mut hsub = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                hsub[(i, j)] = basis[i].dot(&hbasis[j]);
            }
        }
        let hsub = Matrix::from_fn(m, m, |i, j| 0.5 * (hsub[(i, j)] + hsub[(j, i)]));
        let es = eigh(&hsub);

        states.clear();
        let mut residuals = Vec::new();
        for k in 0..nroots.min(m) {
            let theta = es.eigenvalues[k];
            energies[k] = theta;
            let c = space.zeros_ci(nproc);
            let r = space.zeros_ci(nproc);
            for i in 0..m {
                let y = es.eigenvectors[(i, k)];
                c.axpy(y, &basis[i]);
                r.axpy(y, &hbasis[i]);
            }
            r.axpy(-theta, &c);
            let res = r.norm();
            conv[k] = res < opts.tol;
            states.push(c);
            residuals.push((k, theta, r, res));
        }
        if conv.iter().all(|&b| b) {
            break;
        }
        if iterations >= opts.max_iter * nroots {
            break;
        }

        // Collapse if the subspace is full.
        if m + nroots > max_subspace {
            basis = states.iter().map(clone_dist).collect();
            orthonormalize(&mut basis, 0);
            hbasis.clear();
            continue;
        }
        // Expand with preconditioned residuals of unconverged roots.
        let start = basis.len();
        for (k, theta, r, res) in residuals {
            if res < opts.tol {
                continue;
            }
            let _ = k;
            let t = pre.apply(&r, theta);
            basis.push(t);
        }
        let kept = orthonormalize(&mut basis, start);
        if kept == 0 {
            break; // no new directions — as converged as we can get
        }
    }

    MultiRootResult {
        energies,
        states,
        iterations,
        converged: conv,
        sigma_cost: cost,
    }
}

/// Modified Gram–Schmidt of `v[start..]` against everything before and
/// among themselves; drops vectors that lose their norm. Returns how many
/// new vectors survive.
fn orthonormalize(v: &mut Vec<DistMatrix>, start: usize) -> usize {
    let mut k = start;
    while k < v.len() {
        for _pass in 0..2 {
            for j in 0..k {
                let (head, tail) = v.split_at_mut(k);
                let ov = head[j].dot(&tail[0]);
                tail[0].axpy(-ov, &head[j]);
            }
        }
        let n = v[k].norm();
        if n < 1e-10 {
            v.remove(k);
        } else {
            v[k].scale(1.0 / n);
            k += 1;
        }
    }
    v.len() - start
}

impl Preconditioner {
    /// The `k` lowest model-space eigenvectors embedded in the CI space.
    pub fn model_space_guesses(&self, nproc: usize, k: usize) -> Vec<DistMatrix> {
        let dets = self.model_dets();
        if dets.is_empty() {
            return Vec::new();
        }
        let es = eigh(self.model_block());
        let (nrows, ncols) = self.ci_shape();
        (0..k.min(dets.len()))
            .map(|r| {
                let c = DistMatrix::zeros(nrows, ncols, nproc);
                for (i, &(ib, ia)) in dets.iter().enumerate() {
                    c.set(ib, ia, es.eigenvectors[(i, r)]);
                }
                c
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detspace::DetSpace;
    use crate::hamiltonian::random_hamiltonian;
    use crate::slater;
    use crate::taskpool::PoolParams;
    use fci_ddi::{Backend, Ddi};
    use fci_xsim::MachineModel;

    fn setup(
        n: usize,
        na: usize,
        nb: usize,
        seed: u64,
    ) -> (DetSpace, crate::hamiltonian::Hamiltonian) {
        (DetSpace::c1(n, na, nb), random_hamiltonian(n, seed))
    }

    #[test]
    fn three_lowest_roots_match_dense() {
        let (space, ham) = setup(5, 2, 2, 17);
        let ddi = Ddi::new(2, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let r = diagonalize_roots(
            &ctx,
            SigmaMethod::Dgemm,
            &DiagOptions {
                max_iter: 80,
                ..Default::default()
            },
            3,
        );
        assert!(
            r.converged.iter().all(|&b| b),
            "roots not converged: {:?}",
            r.converged
        );
        let h = slater::dense_h(&space, &ham);
        let exact = fci_linalg::eigh(&h).eigenvalues;
        for (k, ex) in exact.iter().take(3).enumerate() {
            assert!(
                (r.energies[k] - ex).abs() < 1e-7,
                "root {k}: {} vs {}",
                r.energies[k],
                ex
            );
        }
        // Roots ascend and states are orthonormal.
        assert!(r.energies[0] <= r.energies[1] && r.energies[1] <= r.energies[2]);
        for i in 0..3 {
            for j in 0..3 {
                let ov = r.states[i].dot(&r.states[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((ov - expect).abs() < 1e-6, "⟨{i}|{j}⟩ = {ov}");
            }
        }
    }

    #[test]
    fn single_root_agrees_with_ground_solver() {
        let (space, ham) = setup(5, 3, 2, 23);
        let ddi = Ddi::new(1, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let multi = diagonalize_roots(&ctx, SigmaMethod::Dgemm, &DiagOptions::default(), 1);
        let single = crate::diag::diagonalize(
            &ctx,
            SigmaMethod::Dgemm,
            crate::diag::DiagMethod::Davidson,
            &DiagOptions::default(),
        );
        assert!(multi.converged[0] && single.converged);
        assert!((multi.energies[0] - single.e_elec).abs() < 1e-8);
    }

    #[test]
    fn near_degenerate_roots_resolve() {
        // Two α electrons in a symmetric double-well-like ladder: force
        // close-lying roots and check the block method separates them.
        let (space, ham) = setup(6, 2, 1, 5);
        let ddi = Ddi::new(3, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let r = diagonalize_roots(
            &ctx,
            SigmaMethod::Dgemm,
            &DiagOptions {
                max_iter: 100,
                ..Default::default()
            },
            4,
        );
        let h = slater::dense_h(&space, &ham);
        let exact = fci_linalg::eigh(&h).eigenvalues;
        for (k, ex) in exact.iter().take(4).enumerate() {
            assert!(r.converged[k], "root {k} NC");
            assert!((r.energies[k] - ex).abs() < 1e-7);
        }
    }
}
