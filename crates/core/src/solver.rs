//! High-level FCI driver: MO integrals in, ground-state energy out.

use crate::detspace::DetSpace;
use crate::diag::{diagonalize, DiagMethod, DiagOptions, DiagResult};
use crate::hamiltonian::Hamiltonian;
use crate::sigma::{SigmaBreakdown, SigmaCtx, SigmaMethod};
use crate::taskpool::PoolParams;
use fci_ddi::{Backend, CheckConfig, Ddi, FaultConfig, FaultPlan};
use fci_obs::ObsConfig;
use fci_scf::MoIntegrals;
use fci_xsim::MachineModel;
use std::sync::Arc;

/// Which CI engine solves the eigenproblem.
///
/// `fci-core` only implements the dense path itself; the sparse variants
/// live in `fci-sparse` (which depends on this crate), so the enum is
/// pure configuration data here and the dispatch happens one layer up —
/// in the `fcix` facade (`fcix::solve_any`) and in `fci-serve`'s job
/// executor. Dense solvers ignore the field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverKind {
    /// Dense CI vector, GEMM-based σ (the paper's engine; the default).
    Dense,
    /// Sparse coordinate-descent FCI (CDFCI): hash-stored coefficients,
    /// largest-gradient single-coordinate updates, connection-local work.
    SparseCdfci,
    /// Selected CI: importance-screened determinant space grown
    /// adaptively, diagonalized by Davidson in the selected space.
    SparseSelected,
}

impl SolverKind {
    /// Stable lowercase name (used in job specs and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            SolverKind::Dense => "dense",
            SolverKind::SparseCdfci => "cdfci",
            SolverKind::SparseSelected => "selected",
        }
    }

    /// Parse the stable name back ([`SolverKind::name`]).
    pub fn from_name(s: &str) -> Option<SolverKind> {
        match s {
            "dense" => Some(SolverKind::Dense),
            "cdfci" => Some(SolverKind::SparseCdfci),
            "selected" => Some(SolverKind::SparseSelected),
            _ => None,
        }
    }
}

/// Everything configurable about an FCI run.
#[derive(Clone, Debug)]
pub struct FciOptions {
    /// Virtual MSP count.
    pub nproc: usize,
    /// Execution backend for the virtual machine.
    pub backend: Backend,
    /// σ algorithm.
    pub sigma: SigmaMethod,
    /// Eigensolver.
    pub method: DiagMethod,
    /// Eigensolver controls.
    pub diag: DiagOptions,
    /// Mixed-spin task pool shape.
    pub pool: PoolParams,
    /// Machine cost model.
    pub machine: MachineModel,
    /// Optional CI truncation level relative to the lowest-diagonal
    /// determinant (2 = CISD, 3 = CISDT, …; `None` = full CI).
    pub excitation_level: Option<u32>,
    /// Run telemetry: disabled by default (zero cost); enable to collect
    /// span/event traces of every solver phase.
    pub obs: ObsConfig,
    /// Correctness checking: disabled by default (zero cost); attach a
    /// recorder (e.g. `fci-check`'s race detector) to observe every DDI
    /// protocol step of the run.
    pub check: CheckConfig,
    /// Fault injection: `None` (default) runs the unchecked fast path;
    /// `Some(cfg)` attaches a seeded [`FaultPlan`] so every remote DDI
    /// op runs the checked retry/recovery path. Transient faults are
    /// recovered inside `solve`; permanent rank death needs
    /// [`crate::recovery::solve_resilient`].
    pub fault: Option<FaultConfig>,
    /// Which CI engine to run. `fci-core`'s own entry points implement
    /// only [`SolverKind::Dense`] and ignore this field; callers that can
    /// see `fci-sparse` (the `fcix` facade, `fci-serve`) dispatch on it.
    pub solver: SolverKind,
}

impl Default for FciOptions {
    fn default() -> Self {
        FciOptions {
            nproc: 1,
            backend: Backend::Serial,
            sigma: SigmaMethod::Dgemm,
            method: DiagMethod::AutoAdjust,
            diag: DiagOptions::default(),
            pool: PoolParams::default(),
            machine: MachineModel::cray_x1(),
            excitation_level: None,
            obs: ObsConfig::off(),
            check: CheckConfig::off(),
            fault: None,
            solver: SolverKind::Dense,
        }
    }
}

/// Result of an FCI run.
#[derive(Debug)]
pub struct FciResult {
    /// Total energy: electronic + core constant, hartree.
    pub energy: f64,
    /// Electronic part only.
    pub e_elec: f64,
    /// Core constant (nuclear repulsion + frozen core).
    pub e_core: f64,
    /// σ evaluations used.
    pub iterations: usize,
    /// Whether the residual threshold was met.
    pub converged: bool,
    /// Total (with `e_core`) energy after each σ evaluation.
    pub energy_history: Vec<f64>,
    /// Residual 2-norm after each σ evaluation.
    pub residual_history: Vec<f64>,
    /// Full product dimension of the stored CI matrix.
    pub dim: usize,
    /// Determinants in the symmetry sector.
    pub sector_dim: usize,
    /// Accumulated simulated cost of all σ evaluations.
    pub sigma_cost: SigmaBreakdown,
    /// The eigensolver's raw output (CI vector etc.).
    pub diag: DiagResult,
}

/// Build the determinant space of a run, honoring the configured CI
/// truncation (shared by [`solve`], `recovery::solve_resilient`, and the
/// `fci-serve` artifact cache, which builds spaces once and hands the
/// same `Arc` to every job that shares the key).
pub fn build_space(
    ham: &Hamiltonian,
    n_alpha: usize,
    n_beta: usize,
    target_irrep: u8,
    excitation_level: Option<u32>,
) -> DetSpace {
    let mut space = DetSpace::for_hamiltonian(ham, n_alpha, n_beta, target_irrep);
    if let Some(level) = excitation_level {
        // Reference = the lowest-diagonal in-sector determinant.
        let mut best = (f64::INFINITY, 0u64, 0u64);
        for ia in 0..space.alpha.len() {
            for ib in 0..space.beta.len() {
                if !space.in_sector(ib, ia) {
                    continue;
                }
                let d = ham.diagonal_element(space.alpha.mask(ia), space.beta.mask(ib));
                if d < best.0 {
                    best = (d, space.alpha.mask(ia), space.beta.mask(ib));
                }
            }
        }
        space = space.with_excitation_limit(best.1, best.2, level);
    }
    space
}

/// Solve for the lowest FCI state of the given spin/symmetry sector.
pub fn solve(
    mo: &MoIntegrals,
    n_alpha: usize,
    n_beta: usize,
    target_irrep: u8,
    opts: &FciOptions,
) -> FciResult {
    let ham = Hamiltonian::new(mo);
    let space = build_space(&ham, n_alpha, n_beta, target_irrep, opts.excitation_level);
    solve_prepared(&space, &ham, opts)
}

/// Like [`solve`], but over a prebuilt determinant space and Hamiltonian.
///
/// This is the reuse hook for callers that amortize the expensive shared
/// state across runs (the `fci-serve` artifact cache hands out `Arc`'d
/// spaces and Hamiltonians): identical `(space, ham, opts)` inputs give
/// bitwise-identical results whether the artifacts were freshly built or
/// cache hits, because the solve reads them immutably.
pub fn solve_prepared(space: &DetSpace, ham: &Hamiltonian, opts: &FciOptions) -> FciResult {
    let ddi = Ddi::new(opts.nproc, opts.backend);
    if let Some(cfg) = &opts.fault {
        ddi.attach_faults(Arc::new(FaultPlan::new(cfg.clone())));
    }
    let tracer = opts.obs.tracer().unwrap_or_else(|e| {
        eprintln!("warning: could not open trace output: {e}; tracing disabled");
        fci_obs::Tracer::disabled()
    });
    ddi.attach_tracer(tracer.clone());
    if let Some(rec) = &opts.check.recorder {
        ddi.attach_recorder(rec.clone());
    }
    tracer.instant(
        None,
        "solve_begin",
        fci_obs::Category::Other,
        &[
            ("nproc", opts.nproc as f64),
            ("dim", space.dim() as f64),
            ("sector_dim", space.sector_dim() as f64),
        ],
    );
    let ctx = SigmaCtx {
        space,
        ham,
        ddi: &ddi,
        model: &opts.machine,
        pool: opts.pool,
    };
    let d = diagonalize(&ctx, opts.sigma, opts.method, &opts.diag);
    tracer.instant(
        None,
        "solve_end",
        fci_obs::Category::Other,
        &[
            ("iterations", d.iterations as f64),
            ("converged", if d.converged { 1.0 } else { 0.0 }),
            ("e_elec", d.e_elec),
        ],
    );
    tracer.flush();
    FciResult {
        energy: d.e_elec + ham.e_core,
        e_elec: d.e_elec,
        e_core: ham.e_core,
        iterations: d.iterations,
        converged: d.converged,
        energy_history: d.energy_history.iter().map(|e| e + ham.e_core).collect(),
        residual_history: d.residual_history.clone(),
        dim: space.dim(),
        sector_dim: space.sector_dim(),
        sigma_cost: {
            let mut s = SigmaBreakdown::default();
            s.merge(&d.sigma_cost);
            s
        },
        diag: d,
    }
}

/// Result of a multi-state FCI run ([`solve_roots`]).
#[derive(Debug)]
pub struct FciRootsResult {
    /// Total energies (electronic + core), ascending by root.
    pub energies: Vec<f64>,
    /// Electronic parts only.
    pub e_elec: Vec<f64>,
    /// Core constant.
    pub e_core: f64,
    /// σ evaluations used in total.
    pub iterations: usize,
    /// Per-root convergence flags.
    pub converged: Vec<bool>,
    /// Full product dimension of the stored CI matrix.
    pub dim: usize,
    /// Determinants in the symmetry sector.
    pub sector_dim: usize,
    /// Accumulated simulated σ cost.
    pub sigma_cost: SigmaBreakdown,
}

/// Solve for the `nroots` lowest FCI states of the sector in one block
/// Davidson run (see [`crate::multiroot`]). The `opts.method` field is
/// ignored — the block method is always the subspace one; callers that
/// need a single-vector scheme should use [`solve`] per state.
pub fn solve_roots(
    mo: &MoIntegrals,
    n_alpha: usize,
    n_beta: usize,
    target_irrep: u8,
    opts: &FciOptions,
    nroots: usize,
) -> FciRootsResult {
    let ham = Hamiltonian::new(mo);
    let space = build_space(&ham, n_alpha, n_beta, target_irrep, opts.excitation_level);
    solve_roots_prepared(&space, &ham, opts, nroots)
}

/// Like [`solve_roots`], but over a prebuilt space and Hamiltonian — the
/// batching hook `fci-serve` uses to coalesce jobs that share a
/// determinant space into one multi-state solve.
pub fn solve_roots_prepared(
    space: &DetSpace,
    ham: &Hamiltonian,
    opts: &FciOptions,
    nroots: usize,
) -> FciRootsResult {
    let ddi = Ddi::new(opts.nproc, opts.backend);
    if let Some(cfg) = &opts.fault {
        ddi.attach_faults(Arc::new(FaultPlan::new(cfg.clone())));
    }
    let tracer = opts.obs.tracer().unwrap_or_else(|e| {
        eprintln!("warning: could not open trace output: {e}; tracing disabled");
        fci_obs::Tracer::disabled()
    });
    ddi.attach_tracer(tracer.clone());
    if let Some(rec) = &opts.check.recorder {
        ddi.attach_recorder(rec.clone());
    }
    tracer.instant(
        None,
        "solve_roots_begin",
        fci_obs::Category::Other,
        &[("nproc", opts.nproc as f64), ("nroots", nroots as f64)],
    );
    let ctx = SigmaCtx {
        space,
        ham,
        ddi: &ddi,
        model: &opts.machine,
        pool: opts.pool,
    };
    let m = crate::multiroot::diagonalize_roots(&ctx, opts.sigma, &opts.diag, nroots);
    tracer.instant(
        None,
        "solve_roots_end",
        fci_obs::Category::Other,
        &[("iterations", m.iterations as f64)],
    );
    tracer.flush();
    FciRootsResult {
        energies: m.energies.iter().map(|e| e + ham.e_core).collect(),
        e_elec: m.energies,
        e_core: ham.e_core,
        iterations: m.iterations,
        converged: m.converged,
        dim: space.dim(),
        sector_dim: space.sector_dim(),
        sigma_cost: m.sigma_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fci_ints::EriTensor;
    use fci_linalg::Matrix;

    /// Hubbard-style synthetic integrals: nearest-neighbour hopping −t and
    /// on-site repulsion U. An exactly solvable sanity playground.
    pub fn hubbard(n: usize, t: f64, u: f64) -> MoIntegrals {
        let mut h = Matrix::zeros(n, n);
        for i in 0..n.saturating_sub(1) {
            h[(i, i + 1)] = -t;
            h[(i + 1, i)] = -t;
        }
        let mut eri = EriTensor::zeros(n);
        for i in 0..n {
            eri.set(i, i, i, i, u);
        }
        MoIntegrals {
            n_orb: n,
            h,
            eri,
            e_core: 0.0,
            orb_sym: vec![0; n],
            n_irrep: 1,
        }
    }

    #[test]
    fn hubbard_dimer_exact() {
        // Two-site Hubbard at half filling: E0 = (U − sqrt(U² + 16t²))/2.
        let (t, u) = (1.0, 4.0);
        let mo = hubbard(2, t, u);
        // Degenerate lattice diagonal: subspace method (see diag docs).
        let opts = FciOptions {
            method: DiagMethod::Davidson,
            ..Default::default()
        };
        let r = solve(&mo, 1, 1, 0, &opts);
        let exact = 0.5 * (u - (u * u + 16.0 * t * t).sqrt());
        assert!(r.converged);
        assert!((r.energy - exact).abs() < 1e-8, "{} vs {exact}", r.energy);
    }

    #[test]
    fn noninteracting_limit_fills_band() {
        // U = 0: FCI energy = sum of the lowest Nα + Nβ one-electron
        // levels of the chain.
        let n = 6;
        let mo = hubbard(n, 1.0, 0.0);
        // U = 0 makes every determinant diagonal-degenerate; the
        // single-vector methods presume a dominant reference, so use the
        // subspace method here (see diag module docs).
        let opts = FciOptions {
            method: DiagMethod::Davidson,
            diag: crate::diag::DiagOptions {
                max_iter: 150,
                model_space: 40,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = solve(&mo, 2, 2, 0, &opts);
        let ev = fci_linalg::eigh(&mo.h).eigenvalues;
        let exact = 2.0 * (ev[0] + ev[1]);
        assert!(r.converged);
        assert!((r.energy - exact).abs() < 1e-7, "{} vs {exact}", r.energy);
    }

    #[test]
    fn sigma_methods_give_same_energy() {
        let mo = hubbard(4, 1.0, 2.5);
        let opts = |s: SigmaMethod| FciOptions {
            sigma: s,
            method: DiagMethod::Davidson,
            diag: DiagOptions {
                max_iter: 120,
                model_space: 24,
                ..Default::default()
            },
            ..Default::default()
        };
        let a = solve(&mo, 2, 2, 0, &opts(SigmaMethod::Dgemm));
        let b = solve(&mo, 2, 2, 0, &opts(SigmaMethod::Moc));
        assert!(a.converged && b.converged);
        assert!((a.energy - b.energy).abs() < 1e-9);
    }

    #[test]
    fn processor_count_does_not_change_physics() {
        let mo = hubbard(4, 1.0, 3.0);
        let opts = |p: usize| FciOptions {
            nproc: p,
            method: DiagMethod::Davidson,
            diag: crate::diag::DiagOptions {
                max_iter: 120,
                model_space: 24,
                ..Default::default()
            },
            ..Default::default()
        };
        let a = solve(&mo, 2, 1, 0, &opts(1));
        let b = solve(&mo, 2, 1, 0, &opts(6));
        assert!(a.converged && b.converged);
        assert!((a.energy - b.energy).abs() < 1e-9);
    }

    #[test]
    fn prepared_solve_is_bitwise_identical_to_plain() {
        // The serve-layer cache depends on this: handing a prebuilt
        // (space, ham) to the solver must change nothing, bit for bit.
        let mo = hubbard(4, 1.0, 2.5);
        let opts = FciOptions {
            method: DiagMethod::Davidson,
            diag: DiagOptions {
                max_iter: 120,
                model_space: 24,
                ..Default::default()
            },
            ..Default::default()
        };
        let plain = solve(&mo, 2, 2, 0, &opts);
        let ham = Hamiltonian::new(&mo);
        let space = build_space(&ham, 2, 2, 0, opts.excitation_level);
        let prep = solve_prepared(&space, &ham, &opts);
        assert_eq!(plain.energy.to_bits(), prep.energy.to_bits());
        assert_eq!(plain.iterations, prep.iterations);
    }

    #[test]
    fn solve_roots_ground_state_matches_single_root() {
        let mo = hubbard(4, 1.0, 2.5);
        let opts = FciOptions {
            method: DiagMethod::Davidson,
            diag: DiagOptions {
                max_iter: 120,
                model_space: 24,
                ..Default::default()
            },
            ..Default::default()
        };
        let single = solve(&mo, 2, 1, 0, &opts);
        let multi = solve_roots(&mo, 2, 1, 0, &opts, 3);
        assert!(multi.converged.iter().all(|&b| b), "{:?}", multi.converged);
        assert!((multi.energies[0] - single.energy).abs() < 1e-8);
        assert!(multi.energies[0] <= multi.energies[1]);
        assert!(multi.energies[1] <= multi.energies[2]);
        // Prepared variant is bitwise identical.
        let ham = Hamiltonian::new(&mo);
        let space = build_space(&ham, 2, 1, 0, None);
        let prep = solve_roots_prepared(&space, &ham, &opts, 3);
        for (a, b) in multi.energies.iter().zip(&prep.energies) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn result_records_dimensions_and_cost() {
        let mo = hubbard(4, 1.0, 1.0);
        let r = solve(
            &mo,
            2,
            2,
            0,
            &FciOptions {
                nproc: 2,
                method: DiagMethod::Davidson,
                ..Default::default()
            },
        );
        assert_eq!(r.dim, 36);
        assert_eq!(r.sector_dim, 36);
        assert!(r.sigma_cost.total().elapsed() > 0.0);
        assert_eq!(r.energy_history.len(), r.iterations);
    }
}
