//! Iterative eigensolvers for the lowest FCI eigenpair.
//!
//! Four methods, matching Table 2 of the paper:
//!
//! * [`DiagMethod::Davidson`] — the subspace method: Olsen correction
//!   vectors accumulate as basis vectors; the optimal mixing comes from
//!   the subspace eigenproblem each iteration. Memory grows with the
//!   subspace — the limitation the paper's single-vector method removes.
//! * [`DiagMethod::Olsen`] — Olsen's original single-vector scheme:
//!   `C ← normalize(C + t)`. No minimization, so convergence is not
//!   guaranteed (the paper shows it failing to converge tightly).
//! * [`DiagMethod::OlsenDamped`] — the modified scheme with a fixed step
//!   length λ (the paper uses λ = 0.7).
//! * [`DiagMethod::AutoAdjust`] — the paper's contribution (eqs. 11–15):
//!   single-vector updates `C ← S (C + λ t)` where λ is the *optimal* 2×2
//!   mixing of the **previous** iteration, reconstructed without storing
//!   `H·t` by eq. 14. One σ evaluation and O(1) vectors per iteration.
//!
//! All methods share the Olsen correction vector built on an `H₀` that is
//! exact inside a small **model space** (lowest-diagonal determinants) and
//! diagonal outside — the paper's convergence aid.

use crate::detspace::DetSpace;
use crate::hamiltonian::Hamiltonian;
use crate::multiroot::{project_against, subspace_gram};
use crate::sigma::{apply_sigma, SigmaBreakdown, SigmaCtx, SigmaMethod};
use crate::slater;
use fci_ddi::DistMatrix;
use fci_linalg::{eigh, eigh_2x2, lu_solve, Matrix};
use fci_obs::Category;

/// Which update scheme drives the iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiagMethod {
    /// Full Davidson: the subspace grows by one preconditioned residual
    /// per iteration (collapsed at `max_subspace`).
    Davidson,
    /// The paper's Table 2 "subspace" comparator: a two-vector subspace
    /// {C, t} with the *exact* optimal mixing from the 2×2 eigenproblem
    /// each iteration. Stores t and H·t — the memory doubling the
    /// auto-adjusted method exists to avoid.
    TwoVector,
    /// Olsen's original single-vector scheme (λ = 1).
    Olsen,
    /// Fixed-λ damped Olsen scheme.
    OlsenDamped,
    /// The paper's automatically adjusted single-vector method.
    AutoAdjust,
}

/// Iteration controls.
#[derive(Clone, Copy, Debug)]
pub struct DiagOptions {
    /// Maximum σ evaluations.
    pub max_iter: usize,
    /// Convergence threshold on the residual 2-norm.
    pub tol: f64,
    /// Davidson subspace limit before collapse.
    pub max_subspace: usize,
    /// Model-space size for the preconditioner (0 = pure diagonal).
    pub model_space: usize,
    /// Fixed λ for [`DiagMethod::OlsenDamped`].
    pub fixed_lambda: f64,
}

impl Default for DiagOptions {
    fn default() -> Self {
        DiagOptions {
            max_iter: 60,
            tol: 1e-9,
            max_subspace: 12,
            model_space: 20,
            fixed_lambda: 0.7,
        }
    }
}

/// Outcome of a diagonalization.
#[derive(Debug)]
pub struct DiagResult {
    /// Electronic energy (no `E_core`).
    pub e_elec: f64,
    /// σ evaluations used.
    pub iterations: usize,
    /// Whether the residual threshold was met.
    pub converged: bool,
    /// Rayleigh quotient after each σ evaluation.
    pub energy_history: Vec<f64>,
    /// Residual norm after each σ evaluation.
    pub residual_history: Vec<f64>,
    /// Converged (or last) CI vector.
    pub c: DistMatrix,
    /// Accumulated simulated cost of all σ evaluations.
    pub sigma_cost: SigmaBreakdown,
}

/// Preconditioner `(H₀ − E)⁻¹` with an exact model-space block.
pub struct Preconditioner {
    diag: DistMatrix,
    /// Model determinants as (row, col) into the CI matrix.
    dets: Vec<(usize, usize)>,
    h_mm: Matrix,
}

impl Preconditioner {
    /// Select the `model_size` lowest-diagonal in-sector determinants.
    pub fn new(space: &DetSpace, ham: &Hamiltonian, diag: &DistMatrix, model_size: usize) -> Self {
        let nb = space.beta.len();
        let dense = diag.to_dense();
        let mut order: Vec<usize> = (0..dense.len()).filter(|&i| dense[i].is_finite()).collect();
        order.sort_by(|&a, &b| dense[a].partial_cmp(&dense[b]).unwrap());
        order.truncate(model_size);
        let dets: Vec<(usize, usize)> = order.iter().map(|&i| (i % nb, i / nb)).collect();
        let m = dets.len();
        let mut h_mm = Matrix::zeros(m, m);
        for (i, &(ib, ia)) in dets.iter().enumerate() {
            for (j, &(jb, ja)) in dets.iter().enumerate() {
                h_mm[(i, j)] = slater::element(
                    ham,
                    space.alpha.mask(ia),
                    space.beta.mask(ib),
                    space.alpha.mask(ja),
                    space.beta.mask(jb),
                );
            }
        }
        Preconditioner {
            diag: clone_dist(diag),
            dets,
            h_mm,
        }
    }

    /// `x = (H₀ − E)⁻¹ v`. Out-of-sector entries (diag = ∞) map to zero.
    pub fn apply(&self, v: &DistMatrix, e: f64) -> DistMatrix {
        let out = clone_dist(v);
        {
            let d = self.diag.to_dense();
            let mut idx = 0;
            out.map_inplace(|_, _, val| {
                let den = d[idx] - e;
                idx += 1;
                if !den.is_finite() {
                    0.0
                } else if den.abs() < 1e-8 {
                    val / (1e-8 * den.signum().clamp(-1.0, 1.0))
                } else {
                    val / den
                }
            });
        }
        // Exact model-space block: solve (H_MM − E + δ) x_M = v_M. The δ
        // regularization matters: near convergence E approaches the lowest
        // eigenvalue of H_MM, the unshifted solve amplifies by ~1/gap and
        // the later ⟨C|t⟩-orthogonalization then cancels catastrophically,
        // stalling the residual just above tight thresholds.
        const MODEL_SHIFT: f64 = 1e-3;
        let m = self.dets.len();
        if m > 0 {
            let vm: Vec<f64> = self.dets.iter().map(|&(ib, ia)| v.get(ib, ia)).collect();
            let mut a = self.h_mm.clone();
            for i in 0..m {
                a[(i, i)] -= e - MODEL_SHIFT;
            }
            if let Ok(xm) = lu_solve(&a, &vm) {
                for (k, &(ib, ia)) in self.dets.iter().enumerate() {
                    out.set(ib, ia, xm[k]);
                }
            }
            // On a singular solve, keep the diagonal fallback already in
            // `out` — robustness over elegance.
        }
        out
    }
}

impl Preconditioner {
    /// The model-space determinants as (row, col) CI-matrix positions.
    pub fn model_dets(&self) -> &[(usize, usize)] {
        &self.dets
    }

    /// The exact model-space Hamiltonian block.
    pub fn model_block(&self) -> &Matrix {
        &self.h_mm
    }

    /// Shape (rows, cols) of the CI matrix this preconditioner serves.
    pub fn ci_shape(&self) -> (usize, usize) {
        (self.diag.nrows(), self.diag.ncols())
    }

    /// Ground eigenvector of the exact model-space block, embedded in the
    /// full CI space (zeros outside) — the natural starting vector when a
    /// model space is in play, and essential for multireference systems
    /// where no single determinant dominates.
    pub fn model_space_guess(&self, nproc: usize) -> Option<DistMatrix> {
        if self.dets.is_empty() {
            return None;
        }
        let es = eigh(&self.h_mm);
        let c = DistMatrix::zeros(self.diag.nrows(), self.diag.ncols(), nproc);
        for (k, &(ib, ia)) in self.dets.iter().enumerate() {
            c.set(ib, ia, es.eigenvectors[(k, 0)]);
        }
        Some(c)
    }
}

/// Emit one solver-iteration telemetry point (energy, residual) through
/// the tracer attached to the context's DDI world, if any.
fn trace_iteration(ctx: &SigmaCtx, iter: usize, e: f64, res: f64) {
    let t = ctx.ddi.tracer();
    t.instant(
        None,
        "diag_iter",
        Category::Other,
        &[("iter", iter as f64), ("energy", e), ("residual", res)],
    );
    if let Some(m) = t.metrics() {
        m.counter_incr("davidson.iters", &[]);
        m.gauge_set("davidson.residual", &[], res);
        // Simulated seconds this iteration cost: the advance of rank 0's
        // cursor since the previous `diag_iter` point, parked in a gauge
        // between calls.
        let now = t.cursor(0);
        let prev = m.value("davidson.cursor_s", &[]).unwrap_or(0.0);
        m.gauge_set("davidson.cursor_s", &[], now);
        if now > prev {
            m.observe("davidson.iter_s", &[], now - prev);
        }
    }
}

fn clone_dist(a: &DistMatrix) -> DistMatrix {
    let out = DistMatrix::zeros(a.nrows(), a.ncols(), a.nproc());
    out.copy_from(a);
    out
}

/// Olsen correction vector: `t = −[(H₀−E)⁻¹ r − Δ (H₀−E)⁻¹ C]` with Δ
/// fixing `⟨C|t⟩ = 0` (paper eqs. 11–12).
fn olsen_correction(pre: &Preconditioner, c: &DistMatrix, r: &DistMatrix, e: f64) -> DistMatrix {
    let x1 = pre.apply(r, e);
    let x2 = pre.apply(c, e);
    let num = c.dot(&x1);
    let den = c.dot(&x2);
    let delta = if den.abs() > 1e-300 { num / den } else { 0.0 };
    let t = x1;
    t.axpy(-delta, &x2);
    t.scale(-1.0);
    t
}

/// Run the chosen diagonalizer for the lowest eigenpair of `H − E_core`.
pub fn diagonalize(
    ctx: &SigmaCtx,
    sigma_method: SigmaMethod,
    method: DiagMethod,
    opts: &DiagOptions,
) -> DiagResult {
    // Default start: the ground vector of the exact model-space block
    // (falls back to the lowest-diagonal determinant without one).
    let nproc = ctx.ddi.nproc();
    let c0 = if opts.model_space > 0 {
        let diag = ctx.space.diagonal(ctx.ham, nproc);
        let pre = Preconditioner::new(ctx.space, ctx.ham, &diag, opts.model_space);
        pre.model_space_guess(nproc)
            .unwrap_or_else(|| ctx.space.guess(ctx.ham, nproc))
    } else {
        ctx.space.guess(ctx.ham, nproc)
    };
    diagonalize_from(ctx, sigma_method, method, opts, c0)
}

/// Like [`diagonalize`], but starting from a caller-supplied vector —
/// e.g. a restored checkpoint (see [`crate::checkpoint`]) or the
/// converged vector of a nearby geometry.
pub fn diagonalize_from(
    ctx: &SigmaCtx,
    sigma_method: SigmaMethod,
    method: DiagMethod,
    opts: &DiagOptions,
    c0: DistMatrix,
) -> DiagResult {
    let space = ctx.space;
    let nproc = ctx.ddi.nproc();
    assert_eq!(
        (c0.nrows(), c0.ncols()),
        (space.beta.len(), space.alpha.len()),
        "guess shape mismatch"
    );
    assert_eq!(
        c0.nproc(),
        nproc,
        "guess distributed over the wrong processor count"
    );
    space.project_sector(&c0);
    assert!(
        c0.norm() > 0.0,
        "guess vector has no component in the target symmetry sector"
    );
    let diag = space.diagonal(ctx.ham, nproc);
    let pre = Preconditioner::new(space, ctx.ham, &diag, opts.model_space);
    match method {
        DiagMethod::Davidson => davidson(ctx, sigma_method, opts, &pre, c0),
        DiagMethod::TwoVector => two_vector(ctx, sigma_method, opts, &pre, c0),
        DiagMethod::Olsen => single_vector(ctx, sigma_method, opts, &pre, c0, Lambda::Fixed(1.0)),
        DiagMethod::OlsenDamped => single_vector(
            ctx,
            sigma_method,
            opts,
            &pre,
            c0,
            Lambda::Fixed(opts.fixed_lambda),
        ),
        DiagMethod::AutoAdjust => single_vector(ctx, sigma_method, opts, &pre, c0, Lambda::Auto),
    }
}

fn davidson(
    ctx: &SigmaCtx,
    sm: SigmaMethod,
    opts: &DiagOptions,
    pre: &Preconditioner,
    c0: DistMatrix,
) -> DiagResult {
    let mut cost = SigmaBreakdown::default();
    let mut basis: Vec<DistMatrix> = Vec::new();
    let mut hbasis: Vec<DistMatrix> = Vec::new();
    let mut e_hist = Vec::new();
    let mut r_hist = Vec::new();
    c0.scale(1.0 / c0.norm());
    basis.push(c0);

    let mut iterations = 0;
    let mut converged = false;
    let (mut best_c, mut best_e) = (clone_dist(&basis[0]), 0.0);

    while iterations < opts.max_iter {
        // σ for the newest basis vector.
        let (hb, bd) = apply_sigma(ctx, basis.last().unwrap(), sm);
        ctx.space.project_sector(&hb);
        cost.merge(&bd);
        hbasis.push(hb);
        iterations += 1;

        let m = basis.len();
        let hsub = subspace_gram(&basis, &hbasis);
        // Symmetrize against accumulation noise.
        let hsub = Matrix::from_fn(m, m, |i, j| 0.5 * (hsub[(i, j)] + hsub[(j, i)]));
        let es = eigh(&hsub);
        let theta = es.eigenvalues[0];
        // Ritz vector and residual.
        let c = ctx.space.zeros_ci(ctx.ddi.nproc());
        let r = ctx.space.zeros_ci(ctx.ddi.nproc());
        for i in 0..m {
            let y = es.eigenvectors[(i, 0)];
            c.axpy(y, &basis[i]);
            r.axpy(y, &hbasis[i]);
        }
        r.axpy(-theta, &c);
        let res = r.norm();
        e_hist.push(theta);
        r_hist.push(res);
        trace_iteration(ctx, iterations, theta, res);
        best_c = clone_dist(&c);
        best_e = theta;
        if res < opts.tol {
            converged = true;
            break;
        }

        let t = olsen_correction(pre, &c, &r, theta);
        if basis.len() >= opts.max_subspace {
            // Collapse to the Ritz vector.
            basis.clear();
            hbasis.clear();
            c.scale(1.0 / c.norm());
            basis.push(c);
            // hbasis rebuilt on the next loop head (costs one extra σ —
            // the standard thick-restart tradeoff).
            continue;
        }
        // Orthonormalize t against the basis (two block-CGS passes, each
        // a pair of DGEMMs over the whole basis).
        project_against(&basis, &t);
        project_against(&basis, &t);
        let tn = t.norm();
        if tn < 1e-12 {
            converged = res < opts.tol * 10.0;
            break;
        }
        t.scale(1.0 / tn);
        basis.push(t);
    }

    DiagResult {
        e_elec: best_e,
        iterations,
        converged,
        energy_history: e_hist,
        residual_history: r_hist,
        c: best_c,
        sigma_cost: cost,
    }
}

/// The exact two-vector subspace method: per iteration one H application
/// (to the new correction vector) and the optimal 2×2 mixing; the running
/// σ vector is updated by linearity, so `C`, `σC`, `t`, `Ht` are stored.
fn two_vector(
    ctx: &SigmaCtx,
    sm: SigmaMethod,
    opts: &DiagOptions,
    pre: &Preconditioner,
    c: DistMatrix,
) -> DiagResult {
    let mut cost = SigmaBreakdown::default();
    let mut e_hist = Vec::new();
    let mut r_hist = Vec::new();
    c.scale(1.0 / c.norm());
    let (hc, bd) = apply_sigma(ctx, &c, sm);
    ctx.space.project_sector(&hc);
    cost.merge(&bd);
    let mut iterations = 1;
    let mut converged = false;
    let mut e = c.dot(&hc);

    while iterations < opts.max_iter {
        e = c.dot(&hc);
        let r = clone_dist(&hc);
        r.axpy(-e, &c);
        let res = r.norm();
        e_hist.push(e);
        r_hist.push(res);
        trace_iteration(ctx, iterations, e, res);
        if res < opts.tol {
            converged = true;
            break;
        }
        let t = olsen_correction(pre, &c, &r, e);
        let tau = t.norm();
        if tau < 1e-14 {
            break;
        }
        // One H application per iteration: H·t.
        let (ht, bd) = apply_sigma(ctx, &t, sm);
        ctx.space.project_sector(&ht);
        cost.merge(&bd);
        iterations += 1;
        // Exact 2×2 in the {C, t̂} basis (⟨C|t⟩ = 0 by construction).
        let b = c.dot(&ht);
        let tht = t.dot(&ht);
        let (_w, (x, y)) = eigh_2x2(e, b / tau, tht / (tau * tau));
        let lambda = if x.abs() > 1e-10 { (y / x) / tau } else { 1.0 };
        // C ← S (C + λ t); σC updated by linearity.
        c.axpy(lambda, &t);
        hc.axpy(lambda, &ht);
        let s = 1.0 / c.norm();
        c.scale(s);
        hc.scale(s);
    }
    // Record the final state if the loop ended on the H-application side.
    if e_hist.len() < iterations && !converged {
        e = c.dot(&hc);
        e_hist.push(e);
        let r = clone_dist(&hc);
        r.axpy(-e, &c);
        r_hist.push(r.norm());
    }

    DiagResult {
        e_elec: e,
        iterations,
        converged,
        energy_history: e_hist,
        residual_history: r_hist,
        c,
        sigma_cost: cost,
    }
}

enum Lambda {
    Fixed(f64),
    Auto,
}

fn single_vector(
    ctx: &SigmaCtx,
    sm: SigmaMethod,
    opts: &DiagOptions,
    pre: &Preconditioner,
    c: DistMatrix,
    lambda_mode: Lambda,
) -> DiagResult {
    let mut cost = SigmaBreakdown::default();
    let mut e_hist = Vec::new();
    let mut r_hist = Vec::new();
    c.scale(1.0 / c.norm());

    // State carried between iterations for the auto-adjusted λ (eq. 14/15).
    struct Prev {
        e: f64,
        b: f64,
        tau: f64,
        lambda: f64,
        s2: f64,
        res: f64,
    }
    let mut prev: Option<Prev> = None;
    let mut converged = false;
    let mut iterations = 0;
    let mut e = 0.0;
    // Trust-region factor for the auto-adjusted step: multiplies the
    // recycled λopt; shrinks when a step made the residual worse, relaxes
    // back toward 1 on success. The recycled λ is one iteration stale
    // (that is the whole trick of eqs. 14–15), which is harmless in the
    // monotone regime the paper operates in but can ping-pong on strongly
    // multireference/open-shell cases — the backoff restores robustness
    // without extra σ evaluations or stored vectors.
    let mut trust = 1.0f64;

    while iterations < opts.max_iter {
        let (sigma, bd) = apply_sigma(ctx, &c, sm);
        ctx.space.project_sector(&sigma); // P·H·P for truncated-CI spaces
        cost.merge(&bd);
        iterations += 1;
        e = c.dot(&sigma);
        let r = clone_dist(&sigma);
        r.axpy(-e, &c);
        let res = r.norm();
        e_hist.push(e);
        r_hist.push(res);
        trace_iteration(ctx, iterations, e, res);
        if res < opts.tol {
            converged = true;
            break;
        }

        let t = olsen_correction(pre, &c, &r, e);
        let tau = t.norm();
        if tau < 1e-14 {
            break;
        }
        let b = sigma.dot(&t); // ⟨C|H|t⟩ (σ = HC)

        if let Some(p) = &prev {
            if res > p.res {
                trust = (trust * 0.5).max(0.05);
            } else {
                trust = (trust * 1.3).min(1.0);
            }
        }

        let lambda = match &lambda_mode {
            Lambda::Fixed(l) => *l,
            Lambda::Auto => {
                let raw = match &prev {
                    Some(p) if p.lambda.abs() > 1e-12 => {
                        // eq. 14: reconstruct ⟨t|H|t⟩ of the previous
                        // iteration from the current Rayleigh quotient —
                        // but only while the reconstruction is numerically
                        // meaningful. Asymptotically `e/s² − e_prev` is a
                        // difference of O(|E|) numbers at O(‖t‖²) scale;
                        // once it drops under the floating-point noise
                        // floor, λopt has stabilized anyway, so freeze it.
                        let de = e / p.s2 - p.e;
                        if de.abs() < 1e3 * f64::EPSILON * e.abs().max(1.0) {
                            // Asymptotic regime: the Olsen correction is the
                            // exact first-order eigenvector update, so the
                            // proper step length is 1; recycling a stale
                            // λopt here locks in a slower contraction.
                            Some(1.0)
                        } else {
                            let tht = (de - 2.0 * p.lambda * p.b) / (p.lambda * p.lambda);
                            let (_w, (x, y)) = eigh_2x2(p.e, p.b / p.tau, tht / (p.tau * p.tau));
                            (x.abs() > 1e-8).then(|| (y / x) / p.tau)
                        }
                    }
                    _ => {
                        // First iteration: crude ⟨t|H|t⟩ from the diagonal
                        // ("more crudely estimated", §2.2).
                        let d = ctx.space.diagonal(ctx.ham, ctx.ddi.nproc());
                        let v = t.dot3(&d, &t);
                        let (_w, (x, y)) = eigh_2x2(e, b / tau, v / (tau * tau));
                        (x.abs() > 1e-8).then(|| (y / x) / tau)
                    }
                };
                match raw {
                    Some(l) if l.is_finite() => (l * trust).clamp(0.02, 2.0),
                    _ => opts.fixed_lambda * trust,
                }
            }
        };

        if std::env::var("FCIX_DIAG_TRACE").is_ok() {
            eprintln!("    it={iterations} res={res:.3e} lambda={lambda:+.4} tau={tau:.3e} trust={trust:.2}");
        }
        // C ← S (C + λ t)
        c.axpy(lambda, &t);
        let nrm = c.norm();
        let s = 1.0 / nrm;
        c.scale(s);
        prev = Some(Prev {
            e,
            b,
            tau,
            lambda,
            s2: s * s,
            res,
        });
    }

    DiagResult {
        e_elec: e,
        iterations,
        converged,
        energy_history: e_hist,
        residual_history: r_hist,
        c,
        sigma_cost: cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::random_hamiltonian;
    use crate::taskpool::PoolParams;
    use fci_ddi::{Backend, Ddi};
    use fci_xsim::MachineModel;

    fn exact_ground(space: &DetSpace, ham: &Hamiltonian) -> f64 {
        let h = slater::dense_h(space, ham);
        eigh(&h).eigenvalues[0]
    }

    fn run(
        method: DiagMethod,
        n: usize,
        na: usize,
        nb: usize,
        nproc: usize,
        seed: u64,
    ) -> (DiagResult, f64) {
        let ham = random_hamiltonian(n, seed);
        let space = DetSpace::c1(n, na, nb);
        let ddi = Ddi::new(nproc, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let exact = exact_ground(&space, &ham);
        let res = diagonalize(&ctx, SigmaMethod::Dgemm, method, &DiagOptions::default());
        (res, exact)
    }

    #[test]
    fn davidson_finds_ground_state() {
        let (r, exact) = run(DiagMethod::Davidson, 5, 2, 2, 2, 3);
        assert!(r.converged, "not converged after {} its", r.iterations);
        assert!((r.e_elec - exact).abs() < 1e-8, "{} vs {exact}", r.e_elec);
    }

    #[test]
    fn auto_adjust_finds_ground_state() {
        let (r, exact) = run(DiagMethod::AutoAdjust, 5, 2, 2, 2, 3);
        assert!(r.converged, "not converged after {} its", r.iterations);
        assert!((r.e_elec - exact).abs() < 1e-8);
    }

    #[test]
    fn damped_olsen_finds_ground_state() {
        let (r, exact) = run(DiagMethod::OlsenDamped, 4, 2, 2, 1, 7);
        assert!(r.converged);
        assert!((r.e_elec - exact).abs() < 1e-7);
    }

    #[test]
    fn methods_agree_across_processors() {
        let (r1, exact) = run(DiagMethod::AutoAdjust, 5, 3, 2, 1, 11);
        let (r5, _) = run(DiagMethod::AutoAdjust, 5, 3, 2, 5, 11);
        assert!(r1.converged && r5.converged);
        assert!((r1.e_elec - exact).abs() < 1e-8);
        assert!((r1.e_elec - r5.e_elec).abs() < 1e-9);
    }

    #[test]
    fn energy_history_variational() {
        // Rayleigh quotients never dip below the exact ground state.
        let (r, exact) = run(DiagMethod::Davidson, 5, 2, 2, 2, 19);
        for &e in &r.energy_history {
            assert!(e >= exact - 1e-10);
        }
        // Davidson energies are non-increasing.
        for w in r.energy_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-10);
        }
    }

    #[test]
    fn preconditioner_model_space_exact_block() {
        let ham = random_hamiltonian(4, 23);
        let space = DetSpace::c1(4, 2, 2);
        let diag = space.diagonal(&ham, 1);
        let pre = Preconditioner::new(&space, &ham, &diag, 6);
        // Applying (H0−E) after (H0−E)^{-1} on a model-space unit vector
        // must return the vector (within the model block behaviour).
        let v = space.zeros_ci(1);
        let (ib, ia) = pre.dets[0];
        v.set(ib, ia, 1.0);
        let e_test = -50.0; // far from any eigenvalue: well-conditioned
        let x = pre.apply(&v, e_test);
        // Compute (H_MM − E + δ) x over the model space and compare with
        // v (δ = the solver's 1e-3 regularization shift).
        let m = pre.dets.len();
        for i in 0..m {
            let mut acc = 0.0;
            for j in 0..m {
                let (jb, ja) = pre.dets[j];
                let hij = pre.h_mm[(i, j)] - if i == j { e_test - 1e-3 } else { 0.0 };
                acc += hij * x.get(jb, ja);
            }
            let (ibk, iak) = pre.dets[i];
            assert!((acc - v.get(ibk, iak)).abs() < 1e-9);
        }
    }

    #[test]
    fn model_space_speeds_up_or_matches_diagonal() {
        let ham = random_hamiltonian(5, 29);
        let space = DetSpace::c1(5, 2, 2);
        let ddi = Ddi::new(1, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let with = diagonalize(
            &ctx,
            SigmaMethod::Dgemm,
            DiagMethod::AutoAdjust,
            &DiagOptions {
                model_space: 20,
                ..Default::default()
            },
        );
        let without = diagonalize(
            &ctx,
            SigmaMethod::Dgemm,
            DiagMethod::AutoAdjust,
            &DiagOptions {
                model_space: 0,
                ..Default::default()
            },
        );
        assert!(with.converged);
        assert!((with.e_elec - without.e_elec).abs() < 1e-7 || !without.converged);
        assert!(with.iterations <= without.iterations + 2);
    }

    #[test]
    fn sector_restricted_diagonalization() {
        // With symmetry on, the solver must find the lowest state of the
        // requested irrep, matching a dense diagonalization restricted to
        // that sector.
        let sym = vec![0u8, 1, 0, 1, 1];
        let mut ham = random_hamiltonian(5, 31);
        // Zero out symmetry-violating integrals so H commutes with the
        // (artificial) symmetry: keep only totally symmetric products.
        let n = 5;
        let mut h = ham.h.clone();
        for p in 0..n {
            for q in 0..n {
                if sym[p] ^ sym[q] != 0 {
                    h[(p, q)] = 0.0;
                }
            }
        }
        let mut eri = fci_ints::EriTensor::zeros(n);
        for p in 0..n {
            for q in 0..n {
                for r in 0..n {
                    for s in 0..n {
                        if sym[p] ^ sym[q] ^ sym[r] ^ sym[s] == 0 {
                            eri.set(p, q, r, s, ham.eri.get(p, q, r, s));
                        }
                    }
                }
            }
        }
        let mo = fci_scf::MoIntegrals {
            n_orb: n,
            h,
            eri,
            e_core: 0.0,
            orb_sym: sym.clone(),
            n_irrep: 2,
        };
        ham = Hamiltonian::new(&mo);

        for g in 0..2u8 {
            let space = DetSpace::new(5, 2, 1, &sym, 2, g);
            let ddi = Ddi::new(2, Backend::Serial);
            let model = MachineModel::cray_x1();
            let ctx = SigmaCtx {
                space: &space,
                ham: &ham,
                ddi: &ddi,
                model: &model,
                pool: PoolParams::default(),
            };
            let r = diagonalize(
                &ctx,
                SigmaMethod::Dgemm,
                DiagMethod::Davidson,
                &DiagOptions::default(),
            );
            // Dense reference restricted to the sector.
            let hfull = slater::dense_h(&space, &ham);
            let nb = space.beta.len();
            let idx: Vec<usize> = (0..space.dim())
                .filter(|&i| space.in_sector(i % nb, i / nb))
                .collect();
            let hs = Matrix::from_fn(idx.len(), idx.len(), |i, j| hfull[(idx[i], idx[j])]);
            let exact = eigh(&hs).eigenvalues[0];
            assert!(r.converged, "irrep {g} did not converge");
            assert!(
                (r.e_elec - exact).abs() < 1e-8,
                "irrep {g}: {} vs {exact}",
                r.e_elec
            );
        }
    }
}
