//! The determinant (product) space and its coupling tables.
//!
//! The FCI coefficient vector is stored as a matrix `C(Iβ, Iα)` — rows
//! indexed by β strings, columns by α strings — distributed by columns
//! (paper §3.1, Fig. 1). Spatial symmetry is handled *logically*: the full
//! product space is stored, but only determinants whose combined irrep
//! equals the target irrep are populated. Because H is totally symmetric,
//! σ of an in-sector vector stays in-sector automatically, so the kernels
//! need no symmetry branches; the initial guess and the preconditioner
//! apply the sector mask. (The paper blocks the *storage* too — a memory
//! optimization our problem sizes don't need; see DESIGN.md.)

use crate::hamiltonian::Hamiltonian;
use fci_ddi::DistMatrix;
use fci_strings::{Nm1Families, Nm2Families, SinglesTable, SpinStrings};

/// Excitation-level restriction relative to a reference determinant —
/// turns the solver into truncated CI (CISD, CISDT, …) while reusing the
/// full-space σ machinery (the subspace eigenproblem is `P·H·P` with the
/// projector applied after each σ evaluation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExcitationFilter {
    /// Reference α occupation mask.
    pub ref_alpha: u64,
    /// Reference β occupation mask.
    pub ref_beta: u64,
    /// Maximum total excitation level (2 = CISD, 3 = CISDT, …).
    pub max_level: u32,
}

impl ExcitationFilter {
    /// Combined excitation degree of a determinant w.r.t. the reference.
    #[inline]
    pub fn level(&self, amask: u64, bmask: u64) -> u32 {
        ((amask ^ self.ref_alpha).count_ones() + (bmask ^ self.ref_beta).count_ones()) / 2
    }
}

/// String spaces and coupling tables for one (Nα, Nβ, irrep) FCI problem.
#[derive(Clone, Debug)]
pub struct DetSpace {
    /// α string space.
    pub alpha: SpinStrings,
    /// β string space.
    pub beta: SpinStrings,
    /// Single-excitation table over α strings.
    pub alpha_singles: SinglesTable,
    /// Single-excitation table over β strings.
    pub beta_singles: SinglesTable,
    /// Nα−1 electron intermediate families.
    pub alpha_nm1: Nm1Families,
    /// Nβ−1 electron intermediate families.
    pub beta_nm1: Nm1Families,
    /// `None` when the spin has fewer than two electrons.
    pub alpha_nm2: Option<Nm2Families>,
    /// Nβ−2 electron intermediate families (`None` below 2 electrons).
    pub beta_nm2: Option<Nm2Families>,
    /// Target spatial irrep of the state.
    pub target_irrep: u8,
    /// Optional excitation-level truncation (None = full CI).
    pub excitation: Option<ExcitationFilter>,
}

impl DetSpace {
    /// Build all string spaces and tables.
    pub fn new(
        n_orb: usize,
        n_alpha: usize,
        n_beta: usize,
        orb_sym: &[u8],
        n_irrep: usize,
        target_irrep: u8,
    ) -> Self {
        assert!(n_alpha >= 1, "need at least one alpha electron");
        assert!((target_irrep as usize) < n_irrep);
        let alpha = SpinStrings::new(n_orb, n_alpha, orb_sym, n_irrep);
        let beta = SpinStrings::new(n_orb, n_beta, orb_sym, n_irrep);
        let alpha_singles = SinglesTable::new(&alpha);
        let beta_singles = SinglesTable::new(&beta);
        let alpha_nm1 = Nm1Families::new(&alpha);
        let beta_nm1 = if n_beta >= 1 {
            Nm1Families::new(&beta)
        } else {
            // Degenerate but well-formed: zero families.
            Nm1Families::new(&SpinStrings::new(n_orb, 1, orb_sym, n_irrep))
        };
        let alpha_nm2 = (n_alpha >= 2).then(|| Nm2Families::new(&alpha));
        let beta_nm2 = (n_beta >= 2).then(|| Nm2Families::new(&beta));
        DetSpace {
            alpha,
            beta,
            alpha_singles,
            beta_singles,
            alpha_nm1,
            beta_nm1,
            alpha_nm2,
            beta_nm2,
            target_irrep,
            excitation: None,
        }
    }

    /// Restrict the space to determinants within `max_level` total
    /// excitations of the reference `(ref_alpha, ref_beta)` — truncated CI
    /// (2 = CISD, 3 = CISDT, …). The reference masks must have the right
    /// electron counts.
    pub fn with_excitation_limit(mut self, ref_alpha: u64, ref_beta: u64, max_level: u32) -> Self {
        assert_eq!(ref_alpha.count_ones() as usize, self.alpha.n_elec());
        assert_eq!(ref_beta.count_ones() as usize, self.beta.n_elec());
        self.excitation = Some(ExcitationFilter {
            ref_alpha,
            ref_beta,
            max_level,
        });
        self
    }

    /// Convenience constructor without symmetry.
    pub fn c1(n_orb: usize, n_alpha: usize, n_beta: usize) -> Self {
        Self::new(n_orb, n_alpha, n_beta, &vec![0u8; n_orb], 1, 0)
    }

    /// Build for a Hamiltonian's orbital symmetry labels.
    pub fn for_hamiltonian(
        ham: &Hamiltonian,
        n_alpha: usize,
        n_beta: usize,
        target_irrep: u8,
    ) -> Self {
        Self::new(
            ham.n,
            n_alpha,
            n_beta,
            &ham.orb_sym,
            ham.n_irrep,
            target_irrep,
        )
    }

    /// Number of orbitals.
    pub fn n_orb(&self) -> usize {
        self.alpha.n_orb()
    }

    /// Full product dimension (rows × cols of the stored CI matrix).
    pub fn dim(&self) -> usize {
        self.alpha.len() * self.beta.len()
    }

    /// Number of determinants in the (symmetry × excitation) sector.
    pub fn sector_dim(&self) -> usize {
        if self.excitation.is_none() {
            let mut d = 0;
            for ga in 0..self.alpha.n_irrep() as u8 {
                let gb = ga ^ self.target_irrep;
                d += self.alpha.block_len(ga) * self.beta.block_len(gb);
            }
            return d;
        }
        let mut d = 0;
        for ia in 0..self.alpha.len() {
            for ib in 0..self.beta.len() {
                if self.in_sector(ib, ia) {
                    d += 1;
                }
            }
        }
        d
    }

    /// Is the determinant `(row = iβ index, col = iα index)` in the sector?
    #[inline]
    pub fn in_sector(&self, ib: usize, ia: usize) -> bool {
        if self.alpha.irrep_of_index(ia) ^ self.beta.irrep_of_index(ib) != self.target_irrep {
            return false;
        }
        match &self.excitation {
            None => true,
            Some(f) => f.level(self.alpha.mask(ia), self.beta.mask(ib)) <= f.max_level,
        }
    }

    /// Allocate a zero CI vector distributed over `nproc` ranks.
    pub fn zeros_ci(&self, nproc: usize) -> DistMatrix {
        DistMatrix::zeros(self.beta.len(), self.alpha.len(), nproc)
    }

    /// The Hamiltonian diagonal (without `E_core`) as a CI-shaped matrix,
    /// with out-of-sector entries set to `f64::INFINITY` (so that
    /// `1/(d − E)` vanishes and preconditioning never leaks out of the
    /// sector).
    pub fn diagonal(&self, ham: &Hamiltonian, nproc: usize) -> DistMatrix {
        let d = self.zeros_ci(nproc);
        d.map_inplace(|ib, ia, _| {
            if self.in_sector(ib, ia) {
                ham.diagonal_element(self.alpha.mask(ia), self.beta.mask(ib))
            } else {
                f64::INFINITY
            }
        });
        d
    }

    /// Zero every out-of-sector coefficient of a CI vector.
    pub fn project_sector(&self, c: &DistMatrix) {
        c.map_inplace(|ib, ia, v| if self.in_sector(ib, ia) { v } else { 0.0 });
    }

    /// Unit guess vector on the lowest-diagonal in-sector determinant.
    pub fn guess(&self, ham: &Hamiltonian, nproc: usize) -> DistMatrix {
        let mut best = (f64::INFINITY, 0usize, 0usize);
        for ia in 0..self.alpha.len() {
            for ib in 0..self.beta.len() {
                if !self.in_sector(ib, ia) {
                    continue;
                }
                let d = ham.diagonal_element(self.alpha.mask(ia), self.beta.mask(ib));
                if d < best.0 {
                    best = (d, ib, ia);
                }
            }
        }
        assert!(
            best.0.is_finite(),
            "no determinant in the requested symmetry sector"
        );
        let c = self.zeros_ci(nproc);
        c.map_inplace(|ib, ia, _| {
            if (ib, ia) == (best.1, best.2) {
                1.0
            } else {
                0.0
            }
        });
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::random_hamiltonian;
    use fci_strings::binomial;

    #[test]
    fn dims_no_symmetry() {
        let s = DetSpace::c1(6, 3, 2);
        assert_eq!(s.dim(), binomial(6, 3) * binomial(6, 2));
        assert_eq!(s.sector_dim(), s.dim());
        assert!(s.in_sector(0, 0));
    }

    #[test]
    fn sector_partition_with_symmetry() {
        let sym = [0u8, 1, 0, 1];
        let mut total = 0;
        for g in 0..2u8 {
            let s = DetSpace::new(4, 2, 1, &sym, 2, g);
            total += s.sector_dim();
        }
        let s = DetSpace::new(4, 2, 1, &sym, 2, 0);
        assert_eq!(total, s.dim());
    }

    #[test]
    fn guess_is_unit_in_sector() {
        let ham = random_hamiltonian(5, 1);
        let s = DetSpace::c1(5, 2, 2);
        let g = s.guess(&ham, 3);
        assert!((g.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn diagonal_matches_hamiltonian() {
        let ham = random_hamiltonian(4, 9);
        let s = DetSpace::c1(4, 2, 1);
        let d = s.diagonal(&ham, 2);
        let dd = d.to_dense();
        let nb = s.beta.len();
        for ia in 0..s.alpha.len() {
            for ib in 0..nb {
                let expect = ham.diagonal_element(s.alpha.mask(ia), s.beta.mask(ib));
                assert!((dd[ib + ia * nb] - expect).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn projection_zeroes_out_of_sector() {
        let sym = [0u8, 1, 0, 1];
        let s = DetSpace::new(4, 1, 1, &sym, 2, 1);
        let c = s.zeros_ci(1);
        c.map_inplace(|_, _, _| 1.0);
        s.project_sector(&c);
        let dense = c.to_dense();
        let in_count = dense.iter().filter(|&&x| x != 0.0).count();
        assert_eq!(in_count, s.sector_dim());
        assert!(in_count < s.dim());
    }

    #[test]
    fn zero_beta_electrons_supported() {
        let s = DetSpace::c1(4, 2, 0);
        assert_eq!(s.beta.len(), 1);
        assert_eq!(s.dim(), binomial(4, 2));
        assert!(s.beta_nm2.is_none());
    }
}
