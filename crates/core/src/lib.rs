#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # fci-core — the paper's primary contribution
//!
//! A determinant-based full configuration interaction (FCI) solver in the
//! style of Gan & Harrison (SC'05): the sparse σ = H·C product is
//! reformulated as dense matrix–matrix multiplications through N−1 and
//! N−2 electron string intermediates, executed over a column-distributed
//! CI matrix with one-sided gather/accumulate communication, and the
//! eigenproblem is driven by an automatically adjusted single-vector
//! diagonalization that needs no subspace storage.
//!
//! Layers:
//!
//! * [`hamiltonian`] — integrals in kernel-ready form (the **G** and **V**
//!   coupling matrices);
//! * [`detspace`] — string spaces, coupling tables, symmetry sector;
//! * [`sigma`] — the DGEMM algorithm and the minimum-operation-count
//!   baseline, both instrumented with the `fci-xsim` Cray-X1 cost model;
//! * [`slater`] — brute-force Slater–Condon reference (test oracle and
//!   model-space preconditioner block);
//! * [`diag`] — Davidson subspace, Olsen, damped Olsen, and the paper's
//!   auto-adjusted single-vector method (eqs. 11–15);
//! * [`taskpool`] — the size-ordered aggregated task pool (Fig. 3);
//! * [`perf_model`] — the Table 1 analytic operation/communication model;
//! * [`solver`] — the high-level driver.
//!
//! ```
//! use fci_core::{solve, FciOptions};
//! # use fci_linalg::Matrix;
//! # use fci_ints::EriTensor;
//! # use fci_scf::MoIntegrals;
//! // Two-site Hubbard model at half filling.
//! let (t, u) = (1.0, 4.0);
//! let mut h = Matrix::zeros(2, 2);
//! h[(0, 1)] = -t;
//! h[(1, 0)] = -t;
//! let mut eri = EriTensor::zeros(2);
//! eri.set(0, 0, 0, 0, u);
//! eri.set(1, 1, 1, 1, u);
//! let mo = MoIntegrals { n_orb: 2, h, eri, e_core: 0.0, orb_sym: vec![0; 2], n_irrep: 1 };
//! // Lattice diagonals are degenerate: use the Davidson subspace method
//! // (molecular systems can use the default auto-adjusted single-vector
//! // scheme — see the `diag` module docs).
//! let opts = FciOptions { method: fci_core::DiagMethod::Davidson, ..Default::default() };
//! let res = solve(&mo, 1, 1, 0, &opts);
//! let exact = 0.5 * (u - (u * u + 16.0 * t * t).sqrt());
//! assert!((res.energy - exact).abs() < 1e-8);
//! ```

pub mod checkpoint;
pub mod detspace;
pub mod diag;
pub mod hamiltonian;
pub mod multiroot;
pub mod perf_model;
pub mod phase;
pub mod properties;
pub mod recovery;
pub mod sigma;
pub mod slater;
pub mod solver;
pub mod taskpool;

pub use checkpoint::{load_ci, save_ci};
pub use detspace::DetSpace;
pub use diag::{
    diagonalize, diagonalize_from, DiagMethod, DiagOptions, DiagResult, Preconditioner,
};
pub use hamiltonian::{random_hamiltonian, Hamiltonian};
pub use multiroot::{diagonalize_roots, MultiRootResult};
pub use perf_model::PerfModel;
pub use phase::run_phase;
pub use properties::{natural_occupations, one_rdm, s_squared};
pub use recovery::{solve_resilient, solve_resilient_prepared, RecoveryOptions, ResilientResult};
pub use sigma::{apply_sigma, SigmaBreakdown, SigmaCtx, SigmaMethod};
pub use solver::{
    build_space, solve, solve_prepared, solve_roots, solve_roots_prepared, FciOptions, FciResult,
    FciRootsResult, SolverKind,
};
pub use taskpool::{PoolParams, TaskPool};
