//! Wavefunction properties: total spin ⟨S²⟩ and the one-particle reduced
//! density matrix.
//!
//! These are the standard post-convergence diagnostics of a determinant
//! FCI program: ⟨S²⟩ verifies the spin purity of the converged root
//! (determinant bases are Sz eigenbases, not S² eigenbases, so a converged
//! eigenvector must come out spin-pure on its own), and the 1-RDM gives
//! natural orbitals/occupations and one-electron properties.
//!
//! Both are built from the same string coupling tables as σ; they are
//! evaluated on a gathered (dense) copy of the CI vector since they are
//! O(dim · n²) one-shot operations, not per-iteration kernels.

use crate::detspace::DetSpace;
use fci_ddi::DistMatrix;
use fci_linalg::Matrix;

/// ⟨S²⟩ of a (normalized) CI vector.
///
/// Uses `S² = S₋S₊ + Sz(Sz + 1)` with
/// `⟨S₋S₊⟩ = Nβ̄ ... ` evaluated determinantally:
/// `S₊ = Σ_p a†_{pα} a_{pβ}`, so
/// `⟨C|S₋S₊|C⟩ = Σ_{pq} ⟨C| a†_{qβ} a_{qα} a†_{pα} a_{pβ} |C⟩`.
pub fn s_squared(space: &DetSpace, c: &DistMatrix) -> f64 {
    let na = space.alpha.len();
    let nb = space.beta.len();
    let dense = c.to_dense();
    let norm2: f64 = dense.iter().map(|x| x * x).sum();
    assert!(norm2 > 0.0, "cannot take <S^2> of a zero vector");

    let n_alpha = space.alpha.n_elec() as f64;
    let n_beta = space.beta.n_elec() as f64;
    let sz = 0.5 * (n_alpha - n_beta);

    let mut s_minus_plus = 0.0;
    // Accumulate ‖S₊ C‖² properly: build S₊C as a dense vector over the
    // (Nα+1, Nβ−1) space.
    if space.beta.n_elec() >= 1 && space.alpha.n_elec() < space.n_orb() {
        let up_alpha = fci_strings::SpinStrings::new(
            space.n_orb(),
            space.alpha.n_elec() + 1,
            space.alpha.orb_sym(),
            space.alpha.n_irrep(),
        );
        let dn_beta = fci_strings::SpinStrings::new(
            space.n_orb(),
            space.beta.n_elec() - 1,
            space.beta.orb_sym(),
            space.beta.n_irrep(),
        );
        let mut splus = vec![0.0f64; up_alpha.len() * dn_beta.len()];
        let nb2 = dn_beta.len();
        for ia in 0..na {
            let am = space.alpha.mask(ia);
            for ib in 0..nb {
                let bm = space.beta.mask(ib);
                let ci = dense[ib + ia * nb];
                if ci == 0.0 {
                    continue;
                }
                let mut m = bm & !am;
                while m != 0 {
                    let p = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let (sb, bm2) = fci_strings::annihilate(bm, p).unwrap();
                    let (sa, am2) = fci_strings::create(am, p).unwrap();
                    let ja = up_alpha.index_of(am2).unwrap();
                    let jb = dn_beta.index_of(bm2).unwrap();
                    splus[jb + ja * nb2] += (sa * sb) as f64 * ci;
                }
            }
        }
        s_minus_plus = splus.iter().map(|x| x * x).sum::<f64>();
    }

    (s_minus_plus + norm2 * sz * (sz + 1.0)) / norm2
}

/// Spin-summed one-particle reduced density matrix
/// `γ_pq = ⟨C| E_pq |C⟩ / ⟨C|C⟩`.
pub fn one_rdm(space: &DetSpace, c: &DistMatrix) -> Matrix {
    let n = space.n_orb();
    let na = space.alpha.len();
    let nb = space.beta.len();
    let dense = c.to_dense();
    let norm2: f64 = dense.iter().map(|x| x * x).sum();
    assert!(norm2 > 0.0);
    let mut g = Matrix::zeros(n, n);

    // α part: E^α_pq moves columns.
    for ja in 0..na {
        for e in space.alpha_singles.of(ja) {
            let ia = e.to as usize;
            let sgn = e.sign as f64;
            let mut acc = 0.0;
            for ib in 0..nb {
                acc += dense[ib + ia * nb] * dense[ib + ja * nb];
            }
            g[(e.p as usize, e.q as usize)] += sgn * acc;
        }
    }
    // β part: E^β_pq moves rows.
    for jb in 0..nb {
        for e in space.beta_singles.of(jb) {
            let ib = e.to as usize;
            let sgn = e.sign as f64;
            let mut acc = 0.0;
            for ia in 0..na {
                acc += dense[ib + ia * nb] * dense[jb + ia * nb];
            }
            g[(e.p as usize, e.q as usize)] += sgn * acc;
        }
    }
    g.scale(1.0 / norm2);
    g
}

/// Natural occupation numbers (eigenvalues of the 1-RDM), descending.
pub fn natural_occupations(space: &DetSpace, c: &DistMatrix) -> Vec<f64> {
    let g = one_rdm(space, c);
    let mut occ = fci_linalg::eigh(&g).eigenvalues;
    occ.reverse();
    occ
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{diagonalize, DiagMethod, DiagOptions};
    use crate::hamiltonian::random_hamiltonian;
    use crate::sigma::{SigmaCtx, SigmaMethod};
    use crate::taskpool::PoolParams;
    use fci_ddi::{Backend, Ddi};
    use fci_xsim::MachineModel;

    fn ground_state(n: usize, na: usize, nb: usize, seed: u64) -> (DetSpace, DistMatrix) {
        let ham = random_hamiltonian(n, seed);
        let space = DetSpace::c1(n, na, nb);
        let ddi = Ddi::new(2, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let r = diagonalize(
            &ctx,
            SigmaMethod::Dgemm,
            DiagMethod::Davidson,
            &DiagOptions {
                max_iter: 120,
                ..Default::default()
            },
        );
        assert!(r.converged, "setup diagonalization failed");
        (space, r.c)
    }

    #[test]
    fn single_determinant_s2() {
        // A single high-spin determinant (2α, 0β) has S = 1: ⟨S²⟩ = 2.
        let space = DetSpace::c1(4, 2, 0);
        let ham = random_hamiltonian(4, 1);
        let c = space.guess(&ham, 1);
        let s2 = s_squared(&space, &c);
        assert!((s2 - 2.0).abs() < 1e-12, "s2 = {s2}");
    }

    #[test]
    fn closed_shell_determinant_s2_zero() {
        // The doubly occupied determinant |aα aβ⟩ is a singlet.
        let space = DetSpace::c1(3, 1, 1);
        let c = space.zeros_ci(1);
        c.set(0, 0, 1.0); // α in orb 0, β in orb 0
        let s2 = s_squared(&space, &c);
        assert!(s2.abs() < 1e-12, "s2 = {s2}");
    }

    #[test]
    fn open_shell_single_det_is_mixed() {
        // |0α 1β⟩ is a 50/50 singlet/triplet mixture: ⟨S²⟩ = 1.
        let space = DetSpace::c1(2, 1, 1);
        let c = space.zeros_ci(1);
        let ib = space.beta.index_of(0b10).unwrap();
        let ia = space.alpha.index_of(0b01).unwrap();
        c.set(ib, ia, 1.0);
        let s2 = s_squared(&space, &c);
        assert!((s2 - 1.0).abs() < 1e-12, "s2 = {s2}");
    }

    #[test]
    fn converged_ground_state_spin_pure() {
        // The FCI ground state of a spin-free Hamiltonian is an S²
        // eigenstate: Ms = 0 ground states here come out as singlets.
        let (space, c) = ground_state(5, 2, 2, 3);
        let s2 = s_squared(&space, &c);
        assert!(s2.abs() < 1e-7, "s2 = {s2}");
    }

    #[test]
    fn rdm_trace_is_electron_count() {
        let (space, c) = ground_state(5, 2, 2, 7);
        let g = one_rdm(&space, &c);
        let tr: f64 = (0..5).map(|p| g[(p, p)]).sum();
        assert!((tr - 4.0).abs() < 1e-9, "tr = {tr}");
        assert!(g.is_symmetric(1e-9));
    }

    #[test]
    fn rdm_energy_consistency() {
        // ⟨H⟩ recomputed from γ and the CI vector must match the Rayleigh
        // quotient: check the one-electron part Σ h_pq γ_qp = ⟨C|ĥ|C⟩.
        let ham = random_hamiltonian(4, 11);
        let space = DetSpace::c1(4, 2, 1);
        let ddi = Ddi::new(1, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let r = diagonalize(
            &ctx,
            SigmaMethod::Dgemm,
            DiagMethod::Davidson,
            &DiagOptions::default(),
        );
        let g = one_rdm(&space, &r.c);
        let e1: f64 = (0..4)
            .flat_map(|p| (0..4).map(move |q| (p, q)))
            .map(|(p, q)| ham.h[(p, q)] * g[(q, p)])
            .sum();
        // Reference: build ⟨C|ĥ|C⟩ by a σ with the two-electron part off.
        let mut ham1 = ham.clone();
        ham1.eri = fci_ints::EriTensor::zeros(4);
        ham1.v = fci_linalg::Matrix::zeros(16, 16);
        ham1.g = fci_linalg::Matrix::zeros(6, 6);
        let ctx1 = SigmaCtx {
            space: &space,
            ham: &ham1,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let (hc, _) = crate::sigma::apply_sigma(&ctx1, &r.c, SigmaMethod::Dgemm);
        let expect = r.c.dot(&hc) / r.c.dot(&r.c);
        assert!((e1 - expect).abs() < 1e-9, "{e1} vs {expect}");
    }

    #[test]
    fn natural_occupations_bounds() {
        let (space, c) = ground_state(5, 2, 2, 23);
        let occ = natural_occupations(&space, &c);
        for &o in &occ {
            assert!(o > -1e-10 && o < 2.0 + 1e-10, "occupation {o}");
        }
        // Descending order and summing to N.
        for w in occ.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        let sum: f64 = occ.iter().sum();
        assert!((sum - 4.0).abs() < 1e-9);
        // A well-behaved ground state is dominated by the reference:
        // strongest natural occupation close to 2.
        assert!(occ[0] > 1.8);
    }
}
