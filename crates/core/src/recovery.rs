//! Checkpointed, self-healing solves.
//!
//! The paper's production runs hold hundreds of MSPs for hours; the
//! recovery story there is the classic one — checkpoint the single
//! current CI vector every iteration and restart the job. This module
//! automates that loop against the `fci-fault` plane:
//!
//! * the solve runs in *chunks* of `save_every` iterations, saving the
//!   CI vector (CRC-protected, see [`crate::checkpoint`]) after every
//!   clean chunk;
//! * transient comm faults are invisible here — the checked DDI paths
//!   retry them away inside the chunk;
//! * a **permanent rank death** (fired by the plan's op-counter clock)
//!   taints the chunk in flight: its output is discarded (the dead
//!   rank's column block is gone), the world is rebuilt over the
//!   survivors — column ownership and the mixed-spin task pool
//!   redistribute automatically, since both are derived from `nproc` —
//!   and the solve resumes from the last good checkpoint;
//! * an existing checkpoint at start seeds the run (resume-on-restart
//!   after a kill).

use crate::checkpoint::{load_ci, save_ci};
use crate::detspace::DetSpace;
use crate::diag::{diagonalize_from, DiagOptions, Preconditioner};
use crate::hamiltonian::Hamiltonian;
use crate::sigma::{SigmaBreakdown, SigmaCtx};
use crate::solver::{build_space, FciOptions, FciResult};
use fci_ddi::{Ddi, DistMatrix, FaultConfig, FaultPlan, FaultStats};
use fci_scf::MoIntegrals;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// Knobs of the checkpoint/restart loop.
#[derive(Clone, Debug)]
pub struct RecoveryOptions {
    /// Checkpoint file. If it exists when the solve starts, the run
    /// resumes from it instead of the model-space guess.
    pub checkpoint: PathBuf,
    /// Iterations per chunk between checkpoints.
    pub save_every: usize,
    /// Rank deaths survived before giving up.
    pub max_restarts: usize,
}

impl RecoveryOptions {
    /// Defaults: checkpoint at `path`, save every 4 iterations, survive
    /// up to 3 rank deaths.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        RecoveryOptions {
            checkpoint: path.into(),
            save_every: 4,
            max_restarts: 3,
        }
    }

    /// Defaults with a checkpoint path namespaced per job: `dir/ckp-<job
    /// id>-<space hash>.ckp`, with the job id sanitized to filename-safe
    /// characters. Two concurrent resilient solves in one process must
    /// never share a checkpoint file — a shared path would interleave
    /// their `save_ci` renames and resume one job from the other's
    /// vector — so anything driving more than one solve (the `fci-serve`
    /// worker pool) derives paths through this constructor.
    pub fn for_job(dir: impl Into<PathBuf>, job_id: &str, space_hash: u64) -> Self {
        let safe: String = job_id
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        Self::new(dir.into().join(format!("ckp-{safe}-{space_hash:016x}.ckp")))
    }
}

/// Outcome of a resilient solve.
#[derive(Debug)]
pub struct ResilientResult {
    /// The solve outcome; `iterations` and the histories span all
    /// chunks and restarts (σ evaluations of discarded chunks are not
    /// counted — their work died with the rank).
    pub fci: FciResult,
    /// World rebuilds forced by rank death.
    pub restarts: usize,
    /// Ranks lost over the run.
    pub ranks_lost: usize,
    /// Fault-plane counters at the end of the run.
    pub fault_stats: FaultStats,
}

/// Like [`crate::solve`], but checkpointed every `save_every` iterations
/// and able to survive the fault plan's permanent rank death by
/// rebuilding the world over the survivors and resuming from the last
/// checkpoint.
///
/// Errors are I/O only (checkpoint read/write) plus exhaustion of
/// `max_restarts`.
pub fn solve_resilient(
    mo: &MoIntegrals,
    n_alpha: usize,
    n_beta: usize,
    target_irrep: u8,
    opts: &FciOptions,
    rec: &RecoveryOptions,
) -> io::Result<ResilientResult> {
    let ham = Hamiltonian::new(mo);
    let space = build_space(&ham, n_alpha, n_beta, target_irrep, opts.excitation_level);
    solve_resilient_prepared(&space, &ham, opts, rec)
}

/// Like [`solve_resilient`], but over a prebuilt determinant space and
/// Hamiltonian (the `fci-serve` cache reuse hook; see
/// [`crate::solver::solve_prepared`]).
pub fn solve_resilient_prepared(
    space: &DetSpace,
    ham: &Hamiltonian,
    opts: &FciOptions,
    rec: &RecoveryOptions,
) -> io::Result<ResilientResult> {
    assert!(rec.save_every >= 1, "save_every must be at least 1");
    // One plan for the whole run: the op counter, rng stream, and death
    // latch persist across world rebuilds.
    let plan = Arc::new(FaultPlan::new(
        opts.fault.clone().unwrap_or_else(|| FaultConfig::quiet(1)),
    ));
    let tracer = opts.obs.tracer().unwrap_or_else(|e| {
        eprintln!("warning: could not open trace output: {e}; tracing disabled");
        fci_obs::Tracer::disabled()
    });

    let mut nproc = opts.nproc;
    let mut restarts = 0usize;
    let mut ranks_lost = 0usize;
    let mut total_iters = 0usize;
    let mut energy_history: Vec<f64> = Vec::new();
    let mut residual_history: Vec<f64> = Vec::new();
    let mut sigma_cost = SigmaBreakdown::default();
    let mut have_ckp = rec.checkpoint.exists();

    'world: loop {
        let ddi = Ddi::new(nproc, opts.backend);
        ddi.attach_tracer(tracer.clone());
        if let Some(r) = &opts.check.recorder {
            ddi.attach_recorder(r.clone());
        }
        ddi.attach_faults(plan.clone());
        let ctx = SigmaCtx {
            space,
            ham,
            ddi: &ddi,
            model: &opts.machine,
            pool: opts.pool,
        };
        let mut c0 = if have_ckp {
            load_ci(&rec.checkpoint, nproc)?
        } else {
            initial_guess(&ctx, &opts.diag, nproc)
        };
        if !have_ckp {
            // Checkpoint the starting vector so a death inside the very
            // first chunk still has something to fall back to.
            save_ci(&rec.checkpoint, &c0)?;
            have_ckp = true;
        }
        loop {
            let budget = (opts.diag.max_iter - total_iters).min(rec.save_every);
            let chunk = diagonalize_from(
                &ctx,
                opts.sigma,
                opts.method,
                &DiagOptions {
                    max_iter: budget,
                    ..opts.diag
                },
                c0,
            );
            if plan.dead_rank().is_some() {
                // The chunk ran through a rank death: its data is lost
                // with the rank. Discard it, shrink the world to the
                // survivors, and resume from the last good checkpoint.
                if restarts >= rec.max_restarts {
                    return Err(io::Error::other(format!(
                        "rank died and the restart budget ({}) is exhausted",
                        rec.max_restarts
                    )));
                }
                restarts += 1;
                ranks_lost += 1;
                nproc = (nproc - 1).max(1);
                plan.acknowledge_death();
                // Simulated seconds of work the death threw away: the
                // discarded chunk's wall-clock (recomputed from the
                // checkpoint after the restart).
                let lost_s = chunk.sigma_cost.total().elapsed();
                tracer.instant(
                    None,
                    "rank_death_recovery",
                    fci_obs::Category::Other,
                    &[
                        ("survivors", nproc as f64),
                        ("restart", restarts as f64),
                        ("lost_s", lost_s),
                    ],
                );
                if let Some(m) = tracer.metrics() {
                    m.counter_incr("fault.rank_deaths", &[]);
                    m.observe("fault.rank_death_recovery_s", &[], lost_s);
                }
                continue 'world;
            }
            total_iters += chunk.iterations;
            energy_history.extend(&chunk.energy_history);
            residual_history.extend(&chunk.residual_history);
            sigma_cost.merge(&chunk.sigma_cost);
            save_ci(&rec.checkpoint, &chunk.c)?;
            if chunk.converged || total_iters >= opts.diag.max_iter {
                let mut d = chunk;
                d.iterations = total_iters;
                d.energy_history = energy_history;
                d.residual_history = residual_history;
                tracer.flush();
                return Ok(ResilientResult {
                    fci: FciResult {
                        energy: d.e_elec + ham.e_core,
                        e_elec: d.e_elec,
                        e_core: ham.e_core,
                        iterations: d.iterations,
                        converged: d.converged,
                        energy_history: d.energy_history.iter().map(|e| e + ham.e_core).collect(),
                        residual_history: d.residual_history.clone(),
                        dim: space.dim(),
                        sector_dim: space.sector_dim(),
                        sigma_cost: {
                            // `sigma_cost` already includes the final chunk.
                            let mut s = SigmaBreakdown::default();
                            s.merge(&sigma_cost);
                            s
                        },
                        diag: d,
                    },
                    restarts,
                    ranks_lost,
                    fault_stats: plan.stats(),
                });
            }
            c0 = chunk.c;
        }
    }
}

/// The same starting vector [`crate::diag::diagonalize`] uses: ground
/// vector of the exact model-space block, falling back to the
/// lowest-diagonal determinant.
fn initial_guess(ctx: &SigmaCtx, opts: &DiagOptions, nproc: usize) -> DistMatrix {
    if opts.model_space > 0 {
        let diag = ctx.space.diagonal(ctx.ham, nproc);
        let pre = Preconditioner::new(ctx.space, ctx.ham, &diag, opts.model_space);
        pre.model_space_guess(nproc)
            .unwrap_or_else(|| ctx.space.guess(ctx.ham, nproc))
    } else {
        ctx.space.guess(ctx.ham, nproc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::DiagMethod;
    use crate::solver::solve;
    use fci_ddi::RankDeath;
    use fci_ints::EriTensor;
    use fci_linalg::Matrix;
    use std::path::Path;

    fn hubbard(n: usize, t: f64, u: f64) -> MoIntegrals {
        let mut h = Matrix::zeros(n, n);
        for i in 0..n.saturating_sub(1) {
            h[(i, i + 1)] = -t;
            h[(i + 1, i)] = -t;
        }
        let mut eri = EriTensor::zeros(n);
        for i in 0..n {
            eri.set(i, i, i, i, u);
        }
        MoIntegrals {
            n_orb: n,
            h,
            eri,
            e_core: 0.0,
            orb_sym: vec![0; n],
            n_irrep: 1,
        }
    }

    fn ckp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("fcix-rec-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    fn base_opts(nproc: usize) -> FciOptions {
        FciOptions {
            nproc,
            method: DiagMethod::Davidson,
            diag: DiagOptions {
                max_iter: 120,
                model_space: 24,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn fault_free_resilient_matches_plain_solve() {
        let mo = hubbard(4, 1.0, 2.5);
        let plain = solve(&mo, 2, 2, 0, &base_opts(3));
        let r = solve_resilient(
            &mo,
            2,
            2,
            0,
            &base_opts(3),
            &RecoveryOptions::new(ckp("clean.ckp")),
        )
        .unwrap();
        assert!(r.fci.converged);
        assert_eq!(r.restarts, 0);
        assert_eq!(r.fault_stats.injected(), 0);
        assert!((r.fci.energy - plain.energy).abs() < 1e-9);
    }

    #[test]
    fn survives_rank_death_mid_solve() {
        let mo = hubbard(4, 1.0, 2.5);
        let plain = solve(&mo, 2, 2, 0, &base_opts(4));
        let mut opts = base_opts(4);
        opts.fault = Some(FaultConfig {
            seed: 11,
            rank_death: Some(RankDeath {
                rank: 2,
                after_ops: 400,
            }),
            ..FaultConfig::default()
        });
        let r =
            solve_resilient(&mo, 2, 2, 0, &opts, &RecoveryOptions::new(ckp("death.ckp"))).unwrap();
        assert!(r.fci.converged);
        assert_eq!(r.restarts, 1);
        assert_eq!(r.ranks_lost, 1);
        assert_eq!(r.fault_stats.rank_deaths, 1);
        assert!(
            (r.fci.energy - plain.energy).abs() < 1e-9,
            "recovered energy {} vs reference {}",
            r.fci.energy,
            plain.energy
        );
    }

    #[test]
    fn resumes_from_existing_checkpoint() {
        // Kill-and-restart: run a few iterations, "crash", then start a
        // fresh resilient solve pointed at the same checkpoint. It must
        // pick up the saved vector, not start over.
        let mo = hubbard(4, 1.0, 2.5);
        let path = ckp("resume.ckp");
        let mut first = base_opts(2);
        first.diag.max_iter = 6;
        let partial = solve_resilient(&mo, 2, 2, 0, &first, &RecoveryOptions::new(&path)).unwrap();
        assert!(!partial.fci.converged);
        assert!(path.exists());

        let full = solve(&mo, 2, 2, 0, &base_opts(2));
        // Baseline for iteration counting: same chunked solver, but from
        // scratch (chunking restarts the Davidson subspace, so the plain
        // solve's count is not comparable).
        let scratch = solve_resilient(
            &mo,
            2,
            2,
            0,
            &base_opts(2),
            &RecoveryOptions::new(ckp("scratch.ckp")),
        )
        .unwrap();
        let resumed =
            solve_resilient(&mo, 2, 2, 0, &base_opts(2), &RecoveryOptions::new(&path)).unwrap();
        assert!(resumed.fci.converged);
        assert!((resumed.fci.energy - full.energy).abs() < 1e-9);
        assert!(
            resumed.fci.iterations < scratch.fci.iterations,
            "resume did not reuse checkpoint progress: {} vs {}",
            resumed.fci.iterations,
            scratch.fci.iterations
        );
    }

    #[test]
    fn namespaced_checkpoint_paths_cannot_collide() {
        let a = RecoveryOptions::for_job("/tmp/d", "job-1", 0xdead);
        let b = RecoveryOptions::for_job("/tmp/d", "job-2", 0xdead);
        let c = RecoveryOptions::for_job("/tmp/d", "job-1", 0xbeef);
        assert_ne!(a.checkpoint, b.checkpoint);
        assert_ne!(a.checkpoint, c.checkpoint);
        // Hostile ids sanitize instead of escaping the directory.
        let evil = RecoveryOptions::for_job("/tmp/d", "../../etc/passwd", 1);
        let name = evil.checkpoint.file_name().unwrap().to_string_lossy();
        assert!(!name.contains('/'));
        assert_eq!(evil.checkpoint.parent().unwrap(), Path::new("/tmp/d"));
    }

    #[test]
    fn interleaved_resilient_solves_do_not_clobber_checkpoints() {
        // Two concurrent resilient solves of *different* problems in one
        // process, each checkpointing every iteration. With per-job
        // namespaced paths neither can resume from (or rename over) the
        // other's vector; both must converge to their own references.
        let dir = std::env::temp_dir().join(format!("fcix-interleave-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mo_a = hubbard(4, 1.0, 2.5);
        let mo_b = hubbard(4, 1.0, 6.0);
        let ref_a = solve(&mo_a, 2, 2, 0, &base_opts(2));
        let ref_b = solve(&mo_b, 2, 1, 0, &base_opts(2));
        let mk_rec = |job: &str, hash: u64| RecoveryOptions {
            save_every: 2, // short chunks: maximal checkpoint interleaving
            ..RecoveryOptions::for_job(&dir, job, hash)
        };
        let rec_a = mk_rec("tenant-a/job", 0x11);
        let rec_b = mk_rec("tenant-b/job", 0x22);
        assert_ne!(rec_a.checkpoint, rec_b.checkpoint);
        let (ra, rb) = std::thread::scope(|s| {
            let ha = s.spawn(|| solve_resilient(&mo_a, 2, 2, 0, &base_opts(2), &rec_a).unwrap());
            let hb = s.spawn(|| solve_resilient(&mo_b, 2, 1, 0, &base_opts(2), &rec_b).unwrap());
            (ha.join().unwrap(), hb.join().unwrap())
        });
        assert!(ra.fci.converged && rb.fci.converged);
        assert!(
            (ra.fci.energy - ref_a.energy).abs() < 1e-9,
            "job A clobbered: {} vs {}",
            ra.fci.energy,
            ref_a.energy
        );
        assert!(
            (rb.fci.energy - ref_b.energy).abs() < 1e-9,
            "job B clobbered: {} vs {}",
            rb.fci.energy,
            ref_b.energy
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_budget_exhaustion_is_an_error() {
        let mo = hubbard(4, 1.0, 2.5);
        let mut opts = base_opts(3);
        opts.fault = Some(FaultConfig {
            seed: 5,
            rank_death: Some(RankDeath {
                rank: 1,
                after_ops: 100,
            }),
            ..FaultConfig::default()
        });
        let rec = RecoveryOptions {
            max_restarts: 0,
            ..RecoveryOptions::new(ckp("budget.ckp"))
        };
        let err = solve_resilient(&mo, 2, 2, 0, &opts, &rec).unwrap_err();
        assert!(err.to_string().contains("restart budget"));
    }
}
