//! σ = H·C algorithms.
//!
//! Two complete implementations, mirroring the paper's comparison:
//!
//! * [`dgemm`](crate::sigma::same_spin)/[`mixed`](crate::sigma::mixed) —
//!   the paper's contribution: dense matrix–matrix multiply through N−2
//!   (same-spin) and dual N−1 (mixed-spin) intermediates;
//! * [`moc`](crate::sigma::moc) — the minimum-operation-count baseline:
//!   indexed multiply–add over precomputed excitation lists, with the
//!   same-spin element work replicated on every processor.
//!
//! Orchestration common to both: the β-spin part acts on rows of the
//! column-distributed CI matrix (fully local); the α-spin part reuses the
//! same kernel on the distributed transpose Cᵀ (communication counted);
//! the mixed part gathers, multiplies and remote-accumulates.

pub mod mixed;
pub mod moc;
pub mod same_spin;

use crate::detspace::DetSpace;
use crate::hamiltonian::Hamiltonian;
use crate::taskpool::PoolParams;
use fci_ddi::{Ddi, DistMatrix};
use fci_xsim::{MachineModel, RunReport};

/// Everything a σ evaluation needs besides the vector itself.
pub struct SigmaCtx<'a> {
    /// Determinant space and coupling tables.
    pub space: &'a DetSpace,
    /// Hamiltonian coupling matrices.
    pub ham: &'a Hamiltonian,
    /// Virtual processor world.
    pub ddi: &'a Ddi,
    /// Machine cost model.
    pub model: &'a MachineModel,
    /// Mixed-spin task pool shape.
    pub pool: PoolParams,
}

/// Which σ algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SigmaMethod {
    /// The paper's DGEMM-based algorithm.
    Dgemm,
    /// The minimum-operation-count baseline.
    Moc,
}

/// Per-routine simulated-time breakdown of one σ evaluation, matching the
/// rows the paper reports (Fig. 4, Table 3).
#[derive(Clone, Debug, Default)]
pub struct SigmaBreakdown {
    /// Same-spin routine on the β (row) spin — local, statically balanced.
    pub beta_beta: RunReport,
    /// Same-spin routine on the α spin (runs on the transpose).
    pub alpha_alpha: RunReport,
    /// Mixed-spin routine (gather / DGEMM / accumulate, dynamic balance).
    pub alpha_beta: RunReport,
    /// Distributed transposes used by the α-spin same-spin routine.
    pub transpose: RunReport,
}

impl SigmaBreakdown {
    /// Merge all phases into a single per-MSP report.
    pub fn total(&self) -> RunReport {
        let mut r = RunReport::default();
        r.merge(&self.beta_beta);
        r.merge(&self.alpha_alpha);
        r.merge(&self.alpha_beta);
        r.merge(&self.transpose);
        r
    }

    /// Add another evaluation's charges (e.g. summing over iterations).
    pub fn merge(&mut self, other: &SigmaBreakdown) {
        self.beta_beta.merge(&other.beta_beta);
        self.alpha_alpha.merge(&other.alpha_alpha);
        self.alpha_beta.merge(&other.alpha_beta);
        self.transpose.merge(&other.transpose);
    }
}

/// Evaluate σ = (H − E_core)·C with the chosen algorithm.
///
/// Returns the distributed σ vector and the simulated-time breakdown. The
/// numerical result is algorithm-independent (verified by the test suite
/// to ~1e-10); only the simulated cost differs.
pub fn apply_sigma(
    ctx: &SigmaCtx,
    c: &DistMatrix,
    method: SigmaMethod,
) -> (DistMatrix, SigmaBreakdown) {
    let space = ctx.space;
    let sigma = space.zeros_ci(ctx.ddi.nproc());
    // Wire both vectors into the world's tracer/recorder (no-ops when the
    // world has none attached; first attachment wins for reused `c`).
    ctx.ddi.adopt(c);
    ctx.ddi.adopt(&sigma);
    let mut bd = SigmaBreakdown::default();

    // β-spin same-spin part (one-electron + ββ doubles): local.
    if space.beta.n_elec() >= 1 {
        bd.beta_beta = match method {
            SigmaMethod::Dgemm => same_spin::half_sigma_dgemm(
                ctx,
                "beta_beta",
                c,
                &sigma,
                &space.beta_singles,
                space.beta_nm2.as_ref(),
            ),
            SigmaMethod::Moc => moc::half_sigma_moc(
                ctx,
                "beta_beta",
                c,
                &sigma,
                &space.beta_singles,
                space.beta_nm2.as_ref(),
            ),
        };
    }

    // α-spin same-spin part on the transpose.
    {
        let tracer = ctx.ddi.tracer();
        let host_t0 = tracer.now_us();
        let mut tstats = vec![fci_ddi::CommStats::default(); ctx.ddi.nproc()];
        let ct = c.transpose(&mut tstats);
        let sigma_t = DistMatrix::zeros(ct.nrows(), ct.ncols(), ctx.ddi.nproc());
        ctx.ddi.adopt(&ct);
        ctx.ddi.adopt(&sigma_t);
        let host_t1 = tracer.now_us();
        bd.alpha_alpha = match method {
            SigmaMethod::Dgemm => same_spin::half_sigma_dgemm(
                ctx,
                "alpha_alpha",
                &ct,
                &sigma_t,
                &space.alpha_singles,
                space.alpha_nm2.as_ref(),
            ),
            SigmaMethod::Moc => moc::half_sigma_moc(
                ctx,
                "alpha_alpha",
                &ct,
                &sigma_t,
                &space.alpha_singles,
                space.alpha_nm2.as_ref(),
            ),
        };
        let host_t2 = tracer.now_us();
        let sigma_tt = sigma_t.transpose(&mut tstats);
        sigma.axpy(1.0, &sigma_tt);
        // Charge the transpose traffic as its own phase. The clocks are
        // built directly from the recorded transpose statistics (no ranks
        // run here — both transposes above already moved the data).
        let mut tclocks = vec![fci_xsim::Clock::default(); ctx.ddi.nproc()];
        for (ck, st) in tclocks.iter_mut().zip(&tstats) {
            crate::phase::charge_comm(ck, st, ctx.model);
            // Local reshuffle cost of the transpose itself.
            let elems = (c.nrows() * c.ncols()) as f64 / ctx.ddi.nproc() as f64;
            ck.charge_gather(ctx.model, 2.0 * elems);
        }
        bd.transpose = RunReport::new(tclocks);
        // Host time of the transpose phase = both transpose windows.
        let host_dur = (host_t1 - host_t0) + (tracer.now_us() - host_t2);
        bd.transpose
            .record_to(&tracer, "transpose", host_t2, host_dur);
    }

    // Mixed-spin part.
    if space.beta.n_elec() >= 1 {
        bd.alpha_beta = match method {
            SigmaMethod::Dgemm => mixed::mixed_spin_dgemm(ctx, c, &sigma),
            SigmaMethod::Moc => moc::mixed_spin_moc(ctx, c, &sigma),
        };
    }

    (sigma, bd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::random_hamiltonian;
    use crate::slater::sigma_dense;
    use fci_ddi::Backend;

    fn random_ci(space: &DetSpace, nproc: usize, seed: u64) -> DistMatrix {
        let c = space.zeros_ci(nproc);
        let mut state = seed;
        c.map_inplace(|ib, ia, _| {
            state = state
                .wrapping_add((ib * 131 + ia * 7 + 13) as u64)
                .wrapping_mul(6364136223846793005);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        c
    }

    fn check_method(n: usize, na: usize, nb: usize, nproc: usize, method: SigmaMethod, seed: u64) {
        let ham = random_hamiltonian(n, seed);
        let space = DetSpace::c1(n, na, nb);
        let ddi = Ddi::new(nproc, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let c = random_ci(&space, nproc, seed * 3 + 1);
        let (sig, _bd) = apply_sigma(&ctx, &c, method);
        let reference = sigma_dense(&space, &ham, &c.to_dense());
        let got = sig.to_dense();
        let mut maxdiff = 0.0f64;
        for (a, b) in got.iter().zip(&reference) {
            maxdiff = maxdiff.max((a - b).abs());
        }
        assert!(
            maxdiff < 1e-10,
            "σ mismatch {maxdiff} for n={n} na={na} nb={nb} p={nproc} {method:?}"
        );
    }

    #[test]
    fn dgemm_matches_slater_condon_small() {
        check_method(4, 2, 2, 1, SigmaMethod::Dgemm, 11);
        check_method(5, 2, 1, 2, SigmaMethod::Dgemm, 12);
        check_method(5, 3, 2, 3, SigmaMethod::Dgemm, 13);
    }

    #[test]
    fn moc_matches_slater_condon_small() {
        check_method(4, 2, 2, 1, SigmaMethod::Moc, 21);
        check_method(5, 2, 1, 2, SigmaMethod::Moc, 22);
        check_method(5, 3, 2, 3, SigmaMethod::Moc, 23);
    }

    #[test]
    fn methods_match_open_shell_and_many_procs() {
        check_method(6, 4, 2, 7, SigmaMethod::Dgemm, 31);
        check_method(6, 4, 2, 7, SigmaMethod::Moc, 32);
        // Single β electron (no ββ doubles at all).
        check_method(5, 2, 1, 4, SigmaMethod::Dgemm, 33);
        // Single α electron.
        check_method(5, 1, 1, 2, SigmaMethod::Dgemm, 34);
        check_method(5, 1, 1, 2, SigmaMethod::Moc, 35);
    }

    #[test]
    fn dgemm_equals_moc_bitwise_structure() {
        // Both algorithms on the same vector: results agree to tight tol.
        let ham = random_hamiltonian(6, 55);
        let space = DetSpace::c1(6, 3, 3);
        let ddi = Ddi::new(4, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let c = random_ci(&space, 4, 99);
        let (s1, _) = apply_sigma(&ctx, &c, SigmaMethod::Dgemm);
        let (s2, _) = apply_sigma(&ctx, &c, SigmaMethod::Moc);
        let d1 = s1.to_dense();
        let d2 = s2.to_dense();
        for (a, b) in d1.iter().zip(&d2) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn result_independent_of_processor_count() {
        let ham = random_hamiltonian(5, 71);
        let space = DetSpace::c1(5, 2, 2);
        let model = MachineModel::cray_x1();
        let mut results = Vec::new();
        for p in [1usize, 2, 5, 13] {
            let ddi = Ddi::new(p, Backend::Serial);
            let ctx = SigmaCtx {
                space: &space,
                ham: &ham,
                ddi: &ddi,
                model: &model,
                pool: PoolParams::default(),
            };
            let c = random_ci(&space, p, 5);
            let (s, _) = apply_sigma(&ctx, &c, SigmaMethod::Dgemm);
            results.push(s.to_dense());
        }
        for r in &results[1..] {
            for (a, b) in r.iter().zip(&results[0]) {
                assert!((a - b).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn threaded_backend_matches_serial() {
        let ham = random_hamiltonian(5, 81);
        let space = DetSpace::c1(5, 2, 2);
        let model = MachineModel::cray_x1();
        let mut out = Vec::new();
        for backend in [Backend::Serial, Backend::Threads] {
            let ddi = Ddi::new(3, backend);
            let ctx = SigmaCtx {
                space: &space,
                ham: &ham,
                ddi: &ddi,
                model: &model,
                pool: PoolParams::default(),
            };
            let c = random_ci(&space, 3, 7);
            let (s, _) = apply_sigma(&ctx, &c, SigmaMethod::Dgemm);
            out.push(s.to_dense());
        }
        for (a, b) in out[0].iter().zip(&out[1]) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
