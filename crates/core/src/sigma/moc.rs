//! The minimum-operation-count (MOC) baseline σ algorithm.
//!
//! This is the historical approach the paper is calibrated against: only
//! the nonzero Hamiltonian connections are visited, and σ is updated by
//! indexed multiply–add (DAXPY-class) operations. Two properties make it
//! lose on a parallel vector machine, and both are reproduced faithfully:
//!
//! * **Same-spin replication** — the double-excitation list and its
//!   Hamiltonian elements are recomputed *on every processor* (each rank
//!   needs the full list for its local columns, and distributing the list
//!   would cost more communication than it saves). That per-rank cost does
//!   not shrink with P, so by Amdahl's law the routine stops scaling —
//!   Fig. 4's flat `beta-beta (MOC)` curve. The list walking and element
//!   evaluation are index-heavy scalar work, charged at the X1's (slow)
//!   scalar rate.
//! * **Mixed-spin communication** — every α single excitation of a local
//!   column pulls/pushes a full β-length column, `Nci·Nα·(n−Nα)` words
//!   against the DGEMM routine's `3·Nci·Nα` (Table 1).

use super::SigmaCtx;
use crate::phase::run_phase;
use fci_ddi::DistMatrix;
use fci_strings::{Nm2Families, SinglesTable};
use fci_xsim::RunReport;

/// Scalar operations charged per same-spin double-excitation element
/// (string matching, index computation, integral lookup, phase).
const ELEM_SCALAR_OPS: f64 = 12.0;

/// MOC same-spin + one-electron half for the row spin of `c`. `name`
/// labels the phase in traces ("beta_beta" / "alpha_alpha").
pub fn half_sigma_moc(
    ctx: &SigmaCtx,
    name: &str,
    c: &DistMatrix,
    sigma: &DistMatrix,
    singles: &SinglesTable,
    nm2: Option<&Nm2Families>,
) -> RunReport {
    let ham = ctx.ham;
    let model = ctx.model;
    let nrows = c.nrows();

    run_phase(ctx.ddi, model, name, |rank, _stats, clock| {
        let cols = c.local_cols(rank);
        let nloc = cols.len();
        // NOTE: no early return on nloc == 0 — the list replication cost
        // is paid by every rank regardless, which is the whole point.
        let mut cl = vec![0.0f64; nrows * nloc];
        if nloc > 0 {
            c.with_local(rank, |s| cl.copy_from_slice(s));
            clock.charge_memcpy(model, (cl.len() * 8) as f64);
        }

        sigma.with_local(rank, |sl| {
            // --- one-electron singles (local, indexed) ---
            let mut nentries = 0usize;
            for j in 0..nrows {
                for e in singles.of(j) {
                    nentries += 1;
                    let hpq = ham.h[(e.p as usize, e.q as usize)] * e.sign as f64;
                    let to = e.to as usize;
                    for k in 0..nloc {
                        sl[to + k * nrows] += hpq * cl[j + k * nrows];
                    }
                }
            }
            clock.charge_scalar(model, 3.0 * nentries as f64);
            clock.charge_daxpy(model, (2 * nentries * nloc) as f64);

            // --- same-spin doubles: replicated list + element work ---
            let Some(nm2) = nm2 else { return };
            let mut n_elems = 0u64;
            let mut n_applied = 0u64;
            for kf in 0..nm2.len() {
                let fam = nm2.of(kf);
                for e1 in fam {
                    let row1 = e1.pair_index();
                    let to = e1.to as usize;
                    for e2 in fam {
                        // This element computation happens on EVERY rank —
                        // the replicated work the paper eliminates.
                        n_elems += 1;
                        let elem = ham.g[(row1, e2.pair_index())] * (e1.sign * e2.sign) as f64;
                        if elem == 0.0 {
                            continue;
                        }
                        let from = e2.to as usize;
                        for k in 0..nloc {
                            sl[to + k * nrows] += elem * cl[from + k * nrows];
                        }
                        n_applied += 1;
                    }
                }
            }
            clock.charge_scalar(model, ELEM_SCALAR_OPS * n_elems as f64);
            clock.charge_daxpy(model, (2 * n_applied * nloc as u64) as f64);
        });
    })
}

/// MOC mixed-spin routine: indexed loops over α and β single-excitation
/// lists with per-excitation remote column traffic.
pub fn mixed_spin_moc(ctx: &SigmaCtx, c: &DistMatrix, sigma: &DistMatrix) -> RunReport {
    let space = ctx.space;
    let ham = ctx.ham;
    let model = ctx.model;
    let n = space.n_orb();
    let nbstr = space.beta.len();

    run_phase(ctx.ddi, model, "alpha_beta", |rank, stats, clock| {
        let cols = c.local_cols(rank);
        let nloc = cols.len();
        if nloc == 0 {
            return;
        }
        let mut cl = vec![0.0f64; nbstr * nloc];
        c.with_local(rank, |s| cl.copy_from_slice(s));
        clock.charge_memcpy(model, (cl.len() * 8) as f64);

        let mut u = vec![0.0f64; nbstr];
        for (k, ja) in cols.clone().enumerate() {
            let cj = &cl[k * nbstr..(k + 1) * nbstr];
            for ea in space.alpha_singles.of(ja) {
                // u(Ib) = Σ_{Jb, rs} sgn_b (p q | r s) C(Jb, Ja)
                let vrow = ea.p as usize * n + ea.q as usize;
                u.iter_mut().for_each(|x| *x = 0.0);
                let mut nb_entries = 0usize;
                for (jb, &cv) in cj.iter().enumerate() {
                    if cv == 0.0 {
                        // Still walk the list (index work) but skip math.
                        nb_entries += space.beta_singles.of(jb).len();
                        continue;
                    }
                    for eb in space.beta_singles.of(jb) {
                        nb_entries += 1;
                        u[eb.to as usize] +=
                            eb.sign as f64 * ham.v[(vrow, eb.p as usize * n + eb.q as usize)] * cv;
                    }
                }
                clock.charge_scalar(model, 2.0 * nb_entries as f64 + 4.0);
                clock.charge_daxpy(model, 2.0 * nb_entries as f64);
                // Remote accumulate into the target α column.
                let sgn = ea.sign as f64;
                if sgn != 1.0 {
                    u.iter_mut().for_each(|x| *x *= sgn);
                }
                sigma.acc_col(rank, ea.to as usize, &u, stats);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detspace::DetSpace;
    use crate::hamiltonian::random_hamiltonian;
    use crate::taskpool::PoolParams;
    use fci_ddi::{Backend, Ddi};
    use fci_xsim::MachineModel;

    #[test]
    fn moc_half_matches_dgemm_half() {
        let ham = random_hamiltonian(6, 61);
        let space = DetSpace::c1(6, 2, 3);
        let nproc = 3;
        let ddi = Ddi::new(nproc, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let c = space.zeros_ci(nproc);
        let mut s = 1u64;
        c.map_inplace(|_, _, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let s1 = space.zeros_ci(nproc);
        let s2 = space.zeros_ci(nproc);
        super::super::same_spin::half_sigma_dgemm(
            &ctx,
            "beta_beta",
            &c,
            &s1,
            &space.beta_singles,
            space.beta_nm2.as_ref(),
        );
        half_sigma_moc(
            &ctx,
            "beta_beta",
            &c,
            &s2,
            &space.beta_singles,
            space.beta_nm2.as_ref(),
        );
        for (a, b) in s1.to_dense().iter().zip(&s2.to_dense()) {
            assert!((a - b).abs() < 1e-11);
        }
    }

    #[test]
    fn moc_mixed_matches_dgemm_mixed() {
        let ham = random_hamiltonian(5, 67);
        let space = DetSpace::c1(5, 3, 2);
        let nproc = 4;
        let ddi = Ddi::new(nproc, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let c = space.zeros_ci(nproc);
        let mut s = 17u64;
        c.map_inplace(|_, _, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(3);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let s1 = space.zeros_ci(nproc);
        let s2 = space.zeros_ci(nproc);
        super::super::mixed::mixed_spin_dgemm(&ctx, &c, &s1);
        mixed_spin_moc(&ctx, &c, &s2);
        for (a, b) in s1.to_dense().iter().zip(&s2.to_dense()) {
            assert!((a - b).abs() < 1e-11);
        }
    }

    #[test]
    fn moc_same_spin_has_replicated_cost() {
        // Per-rank same-spin time must NOT drop with rank count: measure
        // the minimum per-rank busy time at P=2 and P=8; the replicated
        // element work puts a floor under it.
        let ham = random_hamiltonian(7, 5);
        let space = DetSpace::c1(7, 3, 3);
        let model = MachineModel::cray_x1();
        let mut floor = Vec::new();
        for nproc in [2usize, 8] {
            let ddi = Ddi::new(nproc, Backend::Serial);
            let ctx = SigmaCtx {
                space: &space,
                ham: &ham,
                ddi: &ddi,
                model: &model,
                pool: PoolParams::default(),
            };
            let c = space.guess(&ham, nproc);
            let sig = space.zeros_ci(nproc);
            let rep = half_sigma_moc(
                &ctx,
                "beta_beta",
                &c,
                &sig,
                &space.beta_singles,
                space.beta_nm2.as_ref(),
            );
            let min_busy = rep
                .clocks
                .iter()
                .map(|k| k.total())
                .fold(f64::INFINITY, f64::min);
            floor.push(min_busy);
        }
        // 4× more processors but the per-rank floor shrinks by < 2×.
        assert!(floor[1] > floor[0] / 2.0, "floors: {floor:?}");
    }

    #[test]
    fn moc_mixed_communicates_much_more_than_dgemm() {
        let ham = random_hamiltonian(7, 15);
        let space = DetSpace::c1(7, 3, 3);
        let nproc = 8;
        let ddi = Ddi::new(nproc, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let c = space.guess(&ham, nproc);
        let s1 = space.zeros_ci(nproc);
        let s2 = space.zeros_ci(nproc);
        let rep_moc = mixed_spin_moc(&ctx, &c, &s1);
        let rep_dg = super::super::mixed::mixed_spin_dgemm(&ctx, &c, &s2);
        let ratio = rep_moc.total_net_bytes() / rep_dg.total_net_bytes().max(1.0);
        // Table 1 ratio: 2(n−Nα)/3 = 2·4/3 ≈ 2.7 here (grows with n).
        assert!(ratio > 1.5, "MOC/DGEMM comm ratio {ratio}");
    }
}
