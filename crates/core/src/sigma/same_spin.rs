//! The DGEMM-based same-spin routine (paper eqs. 7–9, Fig. 2a).
//!
//! For the row spin of a column-distributed CI matrix everything is local:
//! the routine loops over N−2 electron intermediate strings K; for each it
//!
//! 1. **gathers** `D(qs, ·) = B^{K,J}_{qs} C(J, ·)` — a vector gather of C
//!    rows into the packed pair-indexed matrix D (multi-streamed local
//!    copy on the X1),
//! 2. multiplies `E = Ĝ · D` with the antisymmetrized integral matrix
//!    (the DGEMM — where nearly all flops land),
//! 3. **scatters** `σ(I, ·) += A^{K,I}_{pr} E(pr, ·)`.
//!
//! The one-electron part (singles with bare `h_pq`) rides along in the
//! same pass. Work is statically balanced: every rank walks all K but only
//! touches its own columns, so there is no communication at all — the
//! property the paper contrasts against the replicated-work MOC routine.

use super::SigmaCtx;
use crate::hamiltonian::Hamiltonian;
use crate::phase::run_phase;
use fci_ddi::DistMatrix;
use fci_linalg::{
    dgemm, dgemm_prepacked, gemm_prefers_packed, gemm_threads, Matrix, PackedA, Trans,
};
use fci_strings::{Nm2Families, SinglesTable};
use fci_xsim::RunReport;

thread_local! {
    /// Per-thread packed Ĝ operand, keyed by [`Hamiltonian::id`]. Ĝ is
    /// constant for a Hamiltonian and multiplies a fresh D on every N−2
    /// family of every σ application, so each worker thread packs it
    /// exactly once and replays the packed form from then on.
    static G_PACK: std::cell::RefCell<Option<(u64, PackedA)>> =
        const { std::cell::RefCell::new(None) };
}

/// Run `f` with the thread's packed Ĝ operand for `ham` — packing it on
/// first use — or with `None` when the `m×n×k` product shape sits below
/// the GEMM packing crossover (where `dgemm` would take the unpacked
/// small path and a handle could not be replayed bitwise).
fn with_g_pack<R>(
    ham: &Hamiltonian,
    m: usize,
    n: usize,
    k: usize,
    f: impl FnOnce(Option<&PackedA>) -> R,
) -> R {
    if !gemm_prefers_packed(m, n, k) {
        return f(None);
    }
    G_PACK.with(|cell| {
        let mut slot = cell.borrow_mut();
        match slot.as_ref() {
            Some((id, _)) if *id == ham.id() => {}
            _ => *slot = Some((ham.id(), PackedA::pack(Trans::No, &ham.g))),
        }
        f(slot.as_ref().map(|(_, pa)| pa))
    })
}

/// Apply the row-spin (same-spin + one-electron) half of σ for one spin
/// channel. `c` and `sigma` must have rows indexed by that spin's strings.
/// `name` labels the phase in traces ("beta_beta" / "alpha_alpha").
pub fn half_sigma_dgemm(
    ctx: &SigmaCtx,
    name: &str,
    c: &DistMatrix,
    sigma: &DistMatrix,
    singles: &SinglesTable,
    nm2: Option<&Nm2Families>,
) -> RunReport {
    let ham = ctx.ham;
    let model = ctx.model;
    let nrows = c.nrows();
    let npair = ham.npair();

    run_phase(ctx.ddi, model, name, |rank, _stats, clock| {
        let cols = c.local_cols(rank);
        let nloc = cols.len();
        if nloc == 0 {
            return;
        }
        // Local copy of the C block (the paper works on a transposed local
        // copy to vectorize the row gathers; a plain copy serves here).
        let mut cl = vec![0.0f64; nrows * nloc];
        c.with_local(rank, |s| cl.copy_from_slice(s));
        clock.charge_memcpy(model, (cl.len() * 8) as f64);

        sigma.with_local(rank, |sl| {
            // --- one-electron singles ---
            let mut n_single_entries = 0usize;
            for j in 0..nrows {
                for e in singles.of(j) {
                    let hpq = ham.h[(e.p as usize, e.q as usize)] * e.sign as f64;
                    if hpq == 0.0 {
                        continue;
                    }
                    let to = e.to as usize;
                    for k in 0..nloc {
                        sl[to + k * nrows] += hpq * cl[j + k * nrows];
                    }
                }
                n_single_entries += singles.of(j).len();
            }
            clock.charge_scalar(model, 2.0 * n_single_entries as f64);
            clock.charge_daxpy(model, (2 * n_single_entries * nloc) as f64);

            // --- same-spin doubles through N−2 intermediates ---
            let Some(nm2) = nm2 else { return };
            let mut d = Matrix::zeros(npair, nloc);
            let mut e_mat = Matrix::zeros(npair, nloc);
            // Ĝ is the same operand for every family and every σ
            // application: above the packing crossover the thread packs
            // it once and replays it (bitwise equal to the on-the-fly
            // packed path `dgemm` would take for the same shape).
            with_g_pack(ham, npair, nloc, npair, |gpack| {
                for kf in 0..nm2.len() {
                    let fam = nm2.of(kf);
                    if fam.is_empty() {
                        continue;
                    }
                    // Gather D rows (B matrix application).
                    for e in fam {
                        let row = e.pair_index();
                        let sgn = e.sign as f64;
                        let from = e.to as usize;
                        for k in 0..nloc {
                            d[(row, k)] = sgn * cl[from + k * nrows];
                        }
                    }
                    // The DGEMM: E = Ĝ · D.
                    match gpack {
                        Some(pa) => {
                            dgemm_prepacked(gemm_threads(), 1.0, pa, Trans::No, &d, 0.0, &mut e_mat)
                        }
                        None => dgemm(Trans::No, Trans::No, 1.0, &ham.g, &d, 0.0, &mut e_mat),
                    }
                    clock.charge_dgemm(model, npair, nloc, npair);
                    // Scatter (A matrix application) and clear D rows.
                    for e in fam {
                        let row = e.pair_index();
                        let sgn = e.sign as f64;
                        let to = e.to as usize;
                        for k in 0..nloc {
                            sl[to + k * nrows] += sgn * e_mat[(row, k)];
                            d[(row, k)] = 0.0;
                        }
                    }
                    clock.charge_scalar(model, 2.0 * fam.len() as f64);
                    clock.charge_gather(model, (3 * fam.len() * nloc) as f64);
                }
            });
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detspace::DetSpace;
    use crate::hamiltonian::random_hamiltonian;
    use crate::slater;
    use crate::taskpool::PoolParams;
    use fci_ddi::{Backend, Ddi};
    use fci_xsim::MachineModel;

    /// β-β + β one-electron contribution via Slater–Condon: zero the α
    /// excitations by comparing only determinant pairs with identical α.
    fn reference_half(
        space: &DetSpace,
        ham: &crate::hamiltonian::Hamiltonian,
        c: &[f64],
    ) -> Vec<f64> {
        let na = space.alpha.len();
        let nb = space.beta.len();
        let mut out = vec![0.0; na * nb];
        for ia in 0..na {
            for ib in 0..nb {
                for jb in 0..nb {
                    let mut v = slater::element(
                        ham,
                        space.alpha.mask(ia),
                        space.beta.mask(ib),
                        space.alpha.mask(ia),
                        space.beta.mask(jb),
                    );
                    if ib == jb {
                        // Keep only the pure-β pieces of the diagonal:
                        // subtract α one-electron, αα and αβ terms.
                        let aocc = fci_strings::occ_list(space.alpha.mask(ia));
                        let bocc = fci_strings::occ_list(space.beta.mask(ib));
                        for &p in &aocc {
                            v -= ham.h[(p, p)];
                        }
                        for (i, &p) in aocc.iter().enumerate() {
                            for &q in aocc.iter().skip(i + 1) {
                                v -= ham.eri.get(p, p, q, q) - ham.eri.get(p, q, q, p);
                            }
                        }
                        for &p in &aocc {
                            for &q in &bocc {
                                v -= ham.eri.get(p, p, q, q);
                            }
                        }
                    } else {
                        // β single: strip the α-spectator Coulomb part
                        // (that belongs to the mixed-spin routine).
                        let pb = {
                            let d: Vec<usize> =
                                fci_strings::occ_list(space.beta.mask(ib) & !space.beta.mask(jb));
                            if d.len() != 1 {
                                usize::MAX
                            } else {
                                d[0]
                            }
                        };
                        if pb != usize::MAX {
                            let qb =
                                fci_strings::occ_list(space.beta.mask(jb) & !space.beta.mask(ib))
                                    [0];
                            // phase recomputed as in slater::element
                            let (s1, m1) =
                                fci_strings::annihilate(space.beta.mask(jb), qb).unwrap();
                            let (s2, _) = fci_strings::create(m1, pb).unwrap();
                            let phase = (s1 * s2) as f64;
                            for &r in &fci_strings::occ_list(space.alpha.mask(ia)) {
                                v -= phase * ham.eri.get(pb, qb, r, r);
                            }
                        }
                        // β doubles need no correction.
                    }
                    out[ib + ia * nb] += v * c[jb + ia * nb];
                }
            }
        }
        out
    }

    #[test]
    fn beta_half_matches_slater_condon() {
        let ham = random_hamiltonian(5, 17);
        let space = DetSpace::c1(5, 2, 3);
        for nproc in [1usize, 3] {
            let ddi = Ddi::new(nproc, Backend::Serial);
            let model = MachineModel::cray_x1();
            let ctx = SigmaCtx {
                space: &space,
                ham: &ham,
                ddi: &ddi,
                model: &model,
                pool: PoolParams::default(),
            };
            let c = space.zeros_ci(nproc);
            let mut seed = 3u64;
            c.map_inplace(|_, _, _| {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            });
            let sigma = space.zeros_ci(nproc);
            half_sigma_dgemm(
                &ctx,
                "beta_beta",
                &c,
                &sigma,
                &space.beta_singles,
                space.beta_nm2.as_ref(),
            );
            let reference = reference_half(&space, &ham, &c.to_dense());
            let got = sigma.to_dense();
            for (a, b) in got.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-11, "{a} vs {b} (nproc={nproc})");
            }
        }
    }

    #[test]
    fn g_operand_packed_once_per_hamiltonian() {
        let ham = random_hamiltonian(6, 1);
        // Below the packing crossover: no handle.
        assert!(!with_g_pack(&ham, 4, 4, 4, |p| p.is_some()));
        // Above it: packed on first use, replayed (packs stays 1) after.
        let m = ham.npair();
        assert!(gemm_prefers_packed(m, 1000, m));
        let first = with_g_pack(&ham, m, 1000, m, |p| p.map(|pa| pa.packs()));
        let second = with_g_pack(&ham, m, 1000, m, |p| p.map(|pa| pa.packs()));
        assert_eq!((first, second), (Some(1), Some(1)));
        // A different Hamiltonian displaces the entry.
        let ham2 = random_hamiltonian(6, 2);
        assert_eq!(
            with_g_pack(&ham2, m, 1000, m, |p| p.map(|pa| pa.packs())),
            Some(1)
        );
    }

    #[test]
    fn no_communication_in_same_spin() {
        // The paper's headline property: the same-spin routine involves no
        // network communication at all.
        let ham = random_hamiltonian(5, 4);
        let space = DetSpace::c1(5, 2, 2);
        let ddi = Ddi::new(4, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let c = space.guess(&ham, 4);
        let sigma = space.zeros_ci(4);
        let rep = half_sigma_dgemm(
            &ctx,
            "beta_beta",
            &c,
            &sigma,
            &space.beta_singles,
            space.beta_nm2.as_ref(),
        );
        assert_eq!(rep.total_net_bytes(), 0.0);
    }

    #[test]
    fn flops_dominated_by_dgemm() {
        let ham = random_hamiltonian(8, 5);
        let space = DetSpace::c1(8, 3, 3);
        let ddi = Ddi::new(2, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let c = space.guess(&ham, 2);
        let sigma = space.zeros_ci(2);
        let rep = half_sigma_dgemm(
            &ctx,
            "beta_beta",
            &c,
            &sigma,
            &space.beta_singles,
            space.beta_nm2.as_ref(),
        );
        let dg: f64 = rep.clocks.iter().map(|k| k.flops_dgemm).sum();
        let dx: f64 = rep.clocks.iter().map(|k| k.flops_daxpy).sum();
        assert!(dg > 4.0 * dx, "dgemm flops {dg} vs daxpy {dx}");
    }
}
