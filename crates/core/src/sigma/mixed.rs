//! The DGEMM-based mixed-spin (α-β) routine (paper eqs. 4–6, Fig. 2b).
//!
//! Work units are Nα−1 electron α occupations Kα, claimed from the
//! dynamic task pool. For each Kα with family {(q, sgn_q, Jα)}:
//!
//! 1. **gather** the remote C columns of the family, sign-folded
//!    (`DDI_GET` — the only read communication of the whole σ),
//! 2. build `D((q̃, s), Kβ) = sgn_s · C(Jα(q̃), Jβ(s, Kβ))` by a vector
//!    gather over the β N−1 families,
//! 3. one dense multiply `E = V_K · D`, where `V_K[(p̃,r),(q̃,s)] =
//!    (p_{p̃} q_{q̃} | r s)` is the integral block restricted to the
//!    family's orbitals (the "INT" box of Fig. 2b),
//! 4. scatter `E` through the β families into the update buffer and
//!    remote-accumulate each α column of it (`DDI_ACC`, 2× bytes).
//!
//! Communication per Kα is O(family × Nβ-strings) — in total `3·Nci·Nα`
//! words versus the MOC routine's `Nci·Nα·(n−Nα)` (Table 1).
//!
//! ### Scheduling simulation
//!
//! Under the threads backend every worker claims tasks from the shared
//! counter for real. Under the (default, deterministic) serial backend the
//! ranks execute one after another, so a naive claim loop would let rank 0
//! drain the whole pool; instead the routine simulates the self-scheduling
//! exactly: the rank whose simulated clock is lowest claims the next task
//! — greedy list scheduling, which is what `SHMEM_SWAP` self-scheduling
//! produces on the real machine.

use super::SigmaCtx;
use crate::hamiltonian::Hamiltonian;
use crate::phase::charge_comm;
use crate::taskpool::TaskPool;
use fci_ddi::{Backend, CommStats, Corruption, DistMatrix, FaultPlan};
use fci_linalg::{
    dgemm, dgemm_prepacked, gemm_prefers_packed, gemm_threads, Matrix, PackedA, Trans,
};
use fci_obs::Category;
use fci_xsim::{Clock, MachineModel, RunReport};
use std::sync::{Mutex, OnceLock};

/// Receives one α-column contribution of a task: `(column, values, stats)`.
/// The default sink remote-accumulates into σ; the `fci-check` schedule
/// explorer substitutes a collecting sink to study accumulation order.
pub type ColumnSink<'s> = dyn FnMut(usize, &[f64], &mut CommStats) + 's;

/// Per-rank working storage for the mixed-spin routine (the paper's
/// "working area to store the gathered C vector coefficients and the
/// computed update coefficients", §3.1).
struct WorkBufs {
    colbuf: Vec<f64>,
    cg: Vec<f64>,
    u: Vec<f64>,
    /// Column indices of the current family (input to the aggregated
    /// [`DistMatrix::get_cols`]); capacity reserved once, reused forever.
    cols: Vec<usize>,
    d: Matrix,
    e_mat: Matrix,
    vk: Matrix,
    /// Persistent packed `V_K` operands, one per Kα, keyed by the
    /// Hamiltonian identity. Lives as long as the buffers do, so serial
    /// steady-state Davidson iterations never rebuild or repack an
    /// integral block (asserted by `vk_operands_packed_once_per_solve`).
    pack: PackedCache,
}

impl WorkBufs {
    fn new(nbstr: usize, nq: usize, n: usize, nkb: usize) -> Self {
        let nd = nq * n;
        WorkBufs {
            colbuf: vec![0.0; nbstr],
            cg: vec![0.0; nbstr * nq],
            u: vec![0.0; nbstr * nq],
            cols: Vec::with_capacity(nq),
            d: Matrix::zeros(nd, nkb),
            e_mat: Matrix::zeros(nd, nkb),
            vk: Matrix::zeros(nd, nd),
            pack: PackedCache::empty(),
        }
    }
}

/// Upper bound in bytes on one worker's packed-`V_K` cache:
/// `FCIX_PACK_CACHE_MB` (≥1, in MiB) or 256 MiB. Resolved once. When the
/// budget fills, remaining families simply keep the build-and-pack-per-call
/// path — correctness never depends on a cache hit.
fn pack_cache_budget() -> usize {
    static BUDGET: OnceLock<usize> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("FCIX_PACK_CACHE_MB")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&mb| mb >= 1)
            .unwrap_or(256)
            * (1 << 20)
    })
}

/// Cache of packed `V_K` GEMM operands, indexed by Kα.
///
/// `V_K` depends only on the Hamiltonian and the family, so once packed
/// it is valid for every σ application against that Hamiltonian. Entries
/// fill deterministically in task-claim order (which the serial backend
/// fixes) and are dropped wholesale when the Hamiltonian changes — the
/// id key makes stale replay structurally impossible.
struct PackedCache {
    ham_id: u64,
    bytes: usize,
    panels: Vec<Option<PackedA>>,
}

impl PackedCache {
    fn empty() -> Self {
        PackedCache {
            ham_id: 0,
            bytes: 0,
            panels: Vec::new(),
        }
    }

    /// Point the cache at `(ham_id, nka)`, clearing it on any change
    /// (Hamiltonian ids start at 1, so the fresh cache never matches).
    fn sync(&mut self, ham_id: u64, nka: usize) {
        if self.ham_id != ham_id || self.panels.len() != nka {
            self.ham_id = ham_id;
            self.bytes = 0;
            self.panels.clear();
            self.panels.resize_with(nka, || None);
        }
    }

    /// Store a packed operand for `ka` if it fits the budget.
    fn insert(&mut self, ka: usize, pa: PackedA) {
        if self.bytes + pa.bytes() <= pack_cache_budget() {
            self.bytes += pa.bytes();
            self.panels[ka] = Some(pa);
        }
    }

    /// `(cached entries, total pack operations across them)` — the
    /// repack-elimination test asserts both equal Nα′ after many solves.
    #[cfg(test)]
    fn pack_totals(&self) -> (usize, usize) {
        let entries = self.panels.iter().flatten().count();
        let packs: usize = self.panels.iter().flatten().map(|p| p.packs()).sum();
        (entries, packs)
    }
}

/// Cache key for [`SERIAL_BUFS`]: `(nbstr, nq, n, nkb)`.
type BufKey = (usize, usize, usize, usize);

thread_local! {
    /// Cached serial-backend working area, keyed by its dimensions.
    ///
    /// `mixed_spin_dgemm` runs once per σ application; hoisting the
    /// buffers across calls means steady-state Davidson iterations
    /// allocate nothing in the mixed-spin hot path (asserted by the
    /// counting-allocator test in `tests/alloc_hotpath.rs`). Thread
    /// workers under the threads backend keep per-thread buffers for the
    /// lifetime of their phase instead (one allocation per phase, not
    /// per task).
    static SERIAL_BUFS: std::cell::RefCell<Option<(BufKey, WorkBufs)>> =
        const { std::cell::RefCell::new(None) };
}

/// Run `f` with the cached serial working area for the given dimensions,
/// (re)allocating only when the dimensions change.
fn with_serial_bufs<R>(
    nbstr: usize,
    nq: usize,
    n: usize,
    nkb: usize,
    f: impl FnOnce(&mut WorkBufs) -> R,
) -> R {
    SERIAL_BUFS.with(|cell| {
        let mut slot = cell.borrow_mut();
        let key = (nbstr, nq, n, nkb);
        match slot.as_mut() {
            Some((k, bufs)) if *k == key => f(bufs),
            _ => {
                let (_, bufs) = slot.insert((key, WorkBufs::new(nbstr, nq, n, nkb)));
                f(bufs)
            }
        }
    })
}

/// Execute the work of one Kα family on `rank`, handing each α-column
/// update to `sink` (which normally performs the `DDI_ACC`).
#[allow(clippy::too_many_arguments)]
fn process_task_into(
    ctx: &SigmaCtx,
    c: &DistMatrix,
    ka: usize,
    rank: usize,
    bufs: &mut WorkBufs,
    stats: &mut CommStats,
    clock: &mut Clock,
    sink: &mut ColumnSink,
) {
    let space = ctx.space;
    let ham = ctx.ham;
    let model = ctx.model;
    let n = space.n_orb();
    let nbstr = space.beta.len();
    let nkb = space.beta_nm1.len();
    let fam = space.alpha_nm1.of(ka);
    let nq = fam.len();
    let nd = nq * n;

    // (1) gather the C columns of the family in ONE aggregated DDI op —
    // one latency charge (and one trace event) per remote owner-run
    // instead of one per column, the paper's size-ordered aggregated
    // gather — then fold the excitation signs in place. An in-place
    // `*v *= -1` produces the same bits as the old `sgn * v` store.
    bufs.cols.clear();
    // lint: allow(alloc) — capacity reserved once in WorkBufs::new; clear+extend never reallocates
    bufs.cols.extend(fam.iter().map(|e| e.to as usize));
    c.get_cols(rank, &bufs.cols, &mut bufs.cg[..nq * nbstr], stats);
    for (slot, e) in fam.iter().enumerate() {
        if e.sign < 0 {
            for v in &mut bufs.cg[slot * nbstr..(slot + 1) * nbstr] {
                *v = -*v;
            }
        }
    }
    clock.charge_gather(model, (nq * nbstr) as f64);

    // (2) build D through the β N−1 families.
    bufs.d.fill_zero();
    clock.charge_memcpy(model, (nd * nkb * 8) as f64);
    let mut touched = 0usize;
    for kb in 0..nkb {
        for eb in space.beta_nm1.of(kb) {
            let s = eb.p as usize;
            let sgn = eb.sign as f64;
            let jb = eb.to as usize;
            for slot in 0..nq {
                bufs.d[(slot * n + s, kb)] = sgn * bufs.cg[jb + slot * nbstr];
            }
            touched += nq;
        }
    }
    clock.charge_gather(model, touched as f64);

    // (3) the integral block and the DGEMM. `V_K` depends only on
    // (Hamiltonian, Kα), so above the GEMM packing crossover the worker
    // packs it once into its persistent cache and replays the packed
    // operand on every later σ application — Davidson iterates dozens of
    // times against the same integrals, and on a hit both the nd×nd
    // gather and the GEMM's per-call A-pack disappear. The simulated
    // clock still charges the full build either way: the cache is a
    // host-time optimization, invisible to the machine model (and hence
    // to the simulated schedule, which is driven by those charges).
    let use_pack = gemm_prefers_packed(nd, nkb, nd);
    if use_pack {
        bufs.pack.sync(ham.id(), space.alpha_nm1.len());
    }
    if !(use_pack && bufs.pack.panels[ka].is_some()) {
        fill_vk(&mut bufs.vk, ham, fam, n);
        if use_pack {
            bufs.pack.insert(ka, PackedA::pack(Trans::No, &bufs.vk));
        }
    }
    clock.charge_memcpy(model, (nd * nd * 8) as f64);
    let pa = if use_pack {
        bufs.pack.panels[ka].as_ref()
    } else {
        None
    };
    match pa {
        // Bitwise equal to the `dgemm` packed path below, which `Auto`
        // selects for every shape where `use_pack` holds.
        Some(pa) => dgemm_prepacked(
            gemm_threads(),
            1.0,
            pa,
            Trans::No,
            &bufs.d,
            0.0,
            &mut bufs.e_mat,
        ),
        None => dgemm(
            Trans::No,
            Trans::No,
            1.0,
            &bufs.vk,
            &bufs.d,
            0.0,
            &mut bufs.e_mat,
        ),
    }
    clock.charge_dgemm(model, nd, nkb, nd);

    // (4) scatter through β families and accumulate.
    bufs.u.iter_mut().for_each(|x| *x = 0.0);
    let mut scat = 0usize;
    for kb in 0..nkb {
        for eb in space.beta_nm1.of(kb) {
            let r = eb.p as usize;
            let sgn = eb.sign as f64;
            let ib = eb.to as usize;
            for pi in 0..nq {
                bufs.u[ib + pi * nbstr] += sgn * bufs.e_mat[(pi * n + r, kb)];
            }
            scat += nq;
        }
    }
    clock.charge_gather(model, scat as f64);
    for (slot, e) in fam.iter().enumerate() {
        let sgn = e.sign as f64;
        for (i, cb) in bufs.colbuf.iter_mut().enumerate() {
            *cb = sgn * bufs.u[i + slot * nbstr];
        }
        sink(e.to as usize, &bufs.colbuf, stats);
    }
    clock.charge_gather(model, (nq * nbstr) as f64);
    clock.charge_scalar(model, (2 * nq + 2 * nkb) as f64);
}

/// Fill `vk` with the family's integral block (the "INT" box of
/// Fig. 2b): `V_K[(p̃·n+r), (q̃·n+s)] = (p_{p̃} q_{q̃} | r s)`.
fn fill_vk(vk: &mut Matrix, ham: &Hamiltonian, fam: &[fci_strings::CreateEntry], n: usize) {
    for (qi, eq) in fam.iter().enumerate() {
        for (pi, ep) in fam.iter().enumerate() {
            let vrow = ep.p as usize * n + eq.p as usize;
            for r in 0..n {
                for s in 0..n {
                    vk[(pi * n + r, qi * n + s)] = ham.v[(vrow, r * n + s)];
                }
            }
        }
    }
}

/// Test hook: `(entries, total packs)` of the calling thread's cached
/// serial working area (zeros when none exists yet).
#[cfg(test)]
pub(crate) fn serial_pack_totals() -> (usize, usize) {
    SERIAL_BUFS.with(|cell| {
        cell.borrow()
            .as_ref()
            .map(|(_, bufs)| bufs.pack.pack_totals())
            .unwrap_or((0, 0))
    })
}

/// Execute the work of one Kα family on `rank`, accumulating into σ.
///
/// With a fault plan present the task runs *guarded*: updates are
/// buffered, validated finite as a whole, and only then committed — a
/// poisoned working area triggers a full task recompute instead of
/// polluting σ. Without a plan the sink accumulates directly (fast path).
#[allow(clippy::too_many_arguments)]
fn process_task(
    ctx: &SigmaCtx,
    c: &DistMatrix,
    sigma: &DistMatrix,
    ka: usize,
    rank: usize,
    bufs: &mut WorkBufs,
    stats: &mut CommStats,
    clock: &mut Clock,
    plan: Option<&FaultPlan>,
) {
    let Some(plan) = plan else {
        process_task_into(
            ctx,
            c,
            ka,
            rank,
            bufs,
            stats,
            clock,
            &mut |col, vals, st| sigma.acc_col(rank, col, vals, st),
        );
        return;
    };
    process_task_guarded(ctx, c, sigma, ka, rank, bufs, stats, clock, plan);
}

/// The guarded task path: compute into a staging buffer, inject any
/// scheduled poison, run the column guard (every value finite), and
/// either commit all accumulates or recompute the whole task. The
/// all-or-nothing commit means a detected fault never leaves a partial
/// task in σ, and the recompute's recomputed gathers/DGEMM re-charge the
/// clock naturally.
#[allow(clippy::too_many_arguments)]
fn process_task_guarded(
    ctx: &SigmaCtx,
    c: &DistMatrix,
    sigma: &DistMatrix,
    ka: usize,
    rank: usize,
    bufs: &mut WorkBufs,
    stats: &mut CommStats,
    clock: &mut Clock,
    plan: &FaultPlan,
) {
    let tracer = ctx.ddi.tracer();
    let mut attempt: u32 = 0;
    loop {
        let mut pending: Vec<(usize, Vec<f64>)> = Vec::new();
        process_task_into(
            ctx,
            c,
            ka,
            rank,
            bufs,
            stats,
            clock,
            &mut |col, vals, _st| pending.push((col, vals.to_vec())),
        );
        // An injected single-event upset strikes the working area after
        // the compute, before the commit (the plan caps attempts, so the
        // recompute loop terminates by construction).
        if plan.poison_task(attempt) {
            if let Some((_, vals)) = pending.first_mut() {
                plan.corrupt(Corruption::Nan, vals);
            }
            tracer.instant(
                Some(rank),
                "fault_injected",
                Category::Other,
                &[
                    ("kind", 5.0),
                    ("ka", ka as f64),
                    ("attempt", attempt as f64),
                ],
            );
        }
        let clean = pending
            .iter()
            .all(|(_, vals)| vals.iter().all(|v| v.is_finite()));
        if clean {
            for (col, vals) in &pending {
                sigma.acc_col(rank, *col, vals, stats);
            }
            return;
        }
        // Column guard tripped: discard the whole task and redo it.
        plan.count_recompute();
        stats.backoff_ns += plan.backoff_ns(attempt);
        tracer.instant(
            Some(rank),
            "task_recompute",
            Category::Other,
            &[("ka", ka as f64), ("attempt", attempt as f64)],
        );
        attempt += 1;
    }
}

/// A persistent mixed-spin worker: owns one rank's working buffers,
/// statistics, and simulated clock across tasks, exactly like a real
/// worker holds its scratch area for the whole phase. Used by the
/// `fci-check` schedule explorer to replay the task pool under arbitrary
/// interleavings — reusing the same buffers across tasks is what gives
/// the replay teeth against stale-buffer contamination.
pub struct MixedWorker {
    bufs: WorkBufs,
    /// Communication charged to this worker so far.
    pub stats: CommStats,
    /// Simulated time charged to this worker so far.
    pub clock: Clock,
}

impl MixedWorker {
    /// Fresh worker with buffers sized for `ctx.space`.
    pub fn new(ctx: &SigmaCtx) -> MixedWorker {
        let space = ctx.space;
        let n = space.n_orb();
        let nq = n - (space.alpha.n_elec() - 1);
        MixedWorker {
            bufs: WorkBufs::new(space.beta.len(), nq, n, space.beta_nm1.len()),
            stats: CommStats::default(),
            clock: Clock::default(),
        }
    }

    /// Run one Kα family as `rank`, handing each α-column update to
    /// `sink` instead of accumulating into a σ matrix.
    pub fn run_task(
        &mut self,
        ctx: &SigmaCtx,
        c: &DistMatrix,
        ka: usize,
        rank: usize,
        sink: &mut ColumnSink,
    ) {
        process_task_into(
            ctx,
            c,
            ka,
            rank,
            &mut self.bufs,
            &mut self.stats,
            &mut self.clock,
            sink,
        );
    }
}

/// Apply the mixed-spin contribution: `sigma += H_αβ · c`.
pub fn mixed_spin_dgemm(ctx: &SigmaCtx, c: &DistMatrix, sigma: &DistMatrix) -> RunReport {
    let space = ctx.space;
    let model = ctx.model;
    let n = space.n_orb();
    let nbstr = space.beta.len();
    let nka = space.alpha_nm1.len();
    let nkb = space.beta_nm1.len();
    let nq = n - (space.alpha.n_elec() - 1);
    let nproc = ctx.ddi.nproc();
    let plan = ctx.ddi.faults();
    let pool = TaskPool::aggregated(nka, nproc, ctx.pool);
    ctx.ddi.reset_counter();
    let tracer = ctx.ddi.tracer();
    let host_start = tracer.now_us();
    if tracer.enabled() {
        let sizes = pool.sizes();
        tracer.counter(
            None,
            "pool_shape",
            &[
                ("tasks", sizes.len() as f64),
                ("largest", sizes.iter().copied().max().unwrap_or(0) as f64),
                ("smallest", sizes.iter().copied().min().unwrap_or(0) as f64),
            ],
        );
    }

    let report = match ctx.ddi.backend() {
        Backend::Serial => with_serial_bufs(nbstr, nq, n, nkb, |bufs| {
            // Deterministic simulation of self-scheduling: the rank whose
            // clock is lowest claims the next task (greedy list schedule).
            let mut clocks = vec![Clock::default(); nproc];
            let mut stats = vec![CommStats::default(); nproc];
            for t in 0..pool.len() {
                let rank = argmin_clock(&clocks, model, &stats);
                // Claim through the real counter so traces and protocol
                // records see the same ddi_nxtval stream as the threaded
                // backend (the greedy argmin IS the claim order here, so
                // the counter hands back exactly `t`).
                let claimed = ctx.ddi.nxtval_rank(rank, &mut stats[rank]);
                debug_assert_eq!(claimed, t);
                tracer.instant(
                    Some(rank),
                    "task_grab",
                    Category::Other,
                    &[("task", t as f64), ("size", pool.task(t).len() as f64)],
                );
                for ka in pool.task(t) {
                    process_task(
                        ctx,
                        c,
                        sigma,
                        ka,
                        rank,
                        bufs,
                        &mut stats[rank],
                        &mut clocks[rank],
                        plan.as_deref(),
                    );
                }
            }
            // Every rank's terminating counter probe.
            for (rank, st) in stats.iter_mut().enumerate() {
                let t = ctx.ddi.nxtval_rank(rank, st);
                debug_assert!(t >= pool.len());
            }
            for (ck, st) in clocks.iter_mut().zip(&stats) {
                charge_comm(ck, st, model);
            }
            RunReport::new(clocks)
        }),
        Backend::Threads => {
            let clocks = Mutex::new(vec![Clock::default(); nproc]);
            let stats_out = ctx.ddi.run(|rank, stats| {
                let mut clock = Clock::default();
                let mut bufs = WorkBufs::new(nbstr, nq, n, nkb);
                loop {
                    let t = ctx.ddi.nxtval_rank(rank, stats);
                    if t >= pool.len() {
                        break;
                    }
                    tracer.instant(
                        Some(rank),
                        "task_grab",
                        Category::Other,
                        &[("task", t as f64), ("size", pool.task(t).len() as f64)],
                    );
                    for ka in pool.task(t) {
                        process_task(
                            ctx,
                            c,
                            sigma,
                            ka,
                            rank,
                            &mut bufs,
                            stats,
                            &mut clock,
                            plan.as_deref(),
                        );
                    }
                }
                clocks.lock().unwrap()[rank] = clock;
            });
            let mut clocks = clocks.into_inner().unwrap_or_else(|e| e.into_inner());
            for (ck, st) in clocks.iter_mut().zip(&stats_out) {
                charge_comm(ck, st, model);
            }
            RunReport::new(clocks)
        }
    };
    report.record_to(
        &tracer,
        "alpha_beta",
        host_start,
        tracer.now_us() - host_start,
    );
    report
}

/// Rank with the smallest simulated time so far (clock + comm implied by
/// its statistics, which have not been folded into the clock yet).
fn argmin_clock(clocks: &[Clock], model: &MachineModel, stats: &[CommStats]) -> usize {
    let mut best = 0;
    let mut bt = f64::INFINITY;
    for (r, ck) in clocks.iter().enumerate() {
        let mut trial = *ck;
        charge_comm(&mut trial, &stats[r], model);
        let t = trial.total();
        if t < bt {
            bt = t;
            best = r;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detspace::DetSpace;
    use crate::hamiltonian::random_hamiltonian;
    use crate::slater;
    use crate::taskpool::PoolParams;
    use fci_ddi::Ddi;
    use fci_xsim::MachineModel;

    /// Mixed-spin reference: Slater–Condon elements where both spins are
    /// singly excited, plus the αβ Coulomb pieces of diagonal and
    /// single-excitation elements.
    fn reference_mixed(
        space: &DetSpace,
        ham: &crate::hamiltonian::Hamiltonian,
        c: &[f64],
    ) -> Vec<f64> {
        let na = space.alpha.len();
        let nb = space.beta.len();
        let mut out = vec![0.0; na * nb];
        for ia in 0..na {
            let am = space.alpha.mask(ia);
            for ib in 0..nb {
                let bm = space.beta.mask(ib);
                for ja in 0..na {
                    let jam = space.alpha.mask(ja);
                    let da = (am ^ jam).count_ones() / 2;
                    if da > 1 {
                        continue;
                    }
                    for jb in 0..nb {
                        let jbm = space.beta.mask(jb);
                        let db = (bm ^ jbm).count_ones() / 2;
                        let v = match (da, db) {
                            (1, 1) => slater::element(ham, am, bm, jam, jbm),
                            (0, 0) if ia == ja && ib == jb => {
                                let mut acc = 0.0;
                                for &p in &fci_strings::occ_list(am) {
                                    for &q in &fci_strings::occ_list(bm) {
                                        acc += ham.eri.get(p, p, q, q);
                                    }
                                }
                                acc
                            }
                            (1, 0) if ib == jb => {
                                let p = fci_strings::occ_list(am & !jam)[0];
                                let q = fci_strings::occ_list(jam & !am)[0];
                                let (s1, m1) = fci_strings::annihilate(jam, q).unwrap();
                                let (s2, _) = fci_strings::create(m1, p).unwrap();
                                let mut acc = 0.0;
                                for &r in &fci_strings::occ_list(bm) {
                                    acc += ham.eri.get(p, q, r, r);
                                }
                                acc * (s1 * s2) as f64
                            }
                            (0, 1) if ia == ja => {
                                let p = fci_strings::occ_list(bm & !jbm)[0];
                                let q = fci_strings::occ_list(jbm & !bm)[0];
                                let (s1, m1) = fci_strings::annihilate(jbm, q).unwrap();
                                let (s2, _) = fci_strings::create(m1, p).unwrap();
                                let mut acc = 0.0;
                                for &r in &fci_strings::occ_list(am) {
                                    acc += ham.eri.get(p, q, r, r);
                                }
                                acc * (s1 * s2) as f64
                            }
                            _ => 0.0,
                        };
                        if v != 0.0 {
                            out[ib + ia * nb] += v * c[jb + ja * nb];
                        }
                    }
                }
            }
        }
        out
    }

    #[test]
    fn mixed_matches_slater_condon() {
        let ham = random_hamiltonian(5, 41);
        let space = DetSpace::c1(5, 2, 2);
        for nproc in [1usize, 4] {
            let ddi = Ddi::new(nproc, Backend::Serial);
            let model = MachineModel::cray_x1();
            let ctx = SigmaCtx {
                space: &space,
                ham: &ham,
                ddi: &ddi,
                model: &model,
                pool: PoolParams::default(),
            };
            let c = space.zeros_ci(nproc);
            let mut seed = 5u64;
            c.map_inplace(|_, _, _| {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
                ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            });
            let sigma = space.zeros_ci(nproc);
            mixed_spin_dgemm(&ctx, &c, &sigma);
            let reference = reference_mixed(&space, &ham, &c.to_dense());
            let got = sigma.to_dense();
            for (a, b) in got.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-11, "{a} vs {b} nproc={nproc}");
            }
        }
    }

    #[test]
    fn gather_acc_volume_matches_table1_model() {
        // Table 1: DGEMM α-β communication ≈ 3·Nci·Nα words (1× gather +
        // 2× accumulate), approached when nearly all columns are remote.
        let ham = random_hamiltonian(6, 3);
        let space = DetSpace::c1(6, 3, 2);
        let nproc = space.alpha.len();
        let ddi = Ddi::new(nproc, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let c = space.guess(&ham, nproc);
        let sigma = space.zeros_ci(nproc);
        let rep = mixed_spin_dgemm(&ctx, &c, &sigma);
        let nci = space.dim() as f64;
        let na = space.alpha.n_elec() as f64;
        let expect_words = 3.0 * nci * na;
        let got_words = rep.total_net_bytes() / 8.0;
        assert!(
            (got_words - expect_words).abs() < 0.2 * expect_words,
            "words {got_words} vs model {expect_words}"
        );
    }

    #[test]
    fn dynamic_schedule_balances_work() {
        // The simulated self-scheduling must spread the α-β work: no rank
        // may be idle while another holds more than two tasks' worth of
        // surplus (uniform task costs here).
        let ham = random_hamiltonian(8, 5);
        let space = DetSpace::c1(8, 3, 3);
        let p = 8;
        let ddi = Ddi::new(p, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let c = space.guess(&ham, p);
        let sigma = space.zeros_ci(p);
        let rep = mixed_spin_dgemm(&ctx, &c, &sigma);
        let times: Vec<f64> = rep.clocks.iter().map(|k| k.total()).collect();
        let max = times.iter().cloned().fold(0.0, f64::max);
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min > 0.0, "an MSP sat completely idle: {times:?}");
        assert!(max < 3.0 * min, "imbalance too large: {times:?}");
    }

    #[test]
    fn vk_operands_packed_once_per_solve_sequence() {
        // DetSpace::c1(10,3,3): nd = 80, nkb = 45, so the V_K·D product
        // sits above the packing crossover and every family's operand is
        // cached. Repeated σ applications against the same Hamiltonian
        // must leave exactly Nα′ cached operands, each packed exactly
        // once — and must reproduce σ bitwise.
        let ham = random_hamiltonian(10, 17);
        let space = DetSpace::c1(10, 3, 3);
        let nproc = 4;
        let ddi = Ddi::new(nproc, Backend::Serial);
        let model = MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        let nd = (space.n_orb() - (space.alpha.n_elec() - 1)) * space.n_orb();
        assert!(fci_linalg::gemm_prefers_packed(
            nd,
            space.beta_nm1.len(),
            nd
        ));
        let c = space.guess(&ham, nproc);
        let nka = space.alpha_nm1.len();
        let sigma1 = space.zeros_ci(nproc);
        mixed_spin_dgemm(&ctx, &c, &sigma1);
        assert_eq!(
            serial_pack_totals(),
            (nka, nka),
            "first solve fills the cache"
        );
        let sigma2 = space.zeros_ci(nproc);
        mixed_spin_dgemm(&ctx, &c, &sigma2);
        assert_eq!(
            serial_pack_totals(),
            (nka, nka),
            "second solve repacks nothing"
        );
        assert_eq!(
            sigma1.to_dense(),
            sigma2.to_dense(),
            "cached replay must be bitwise identical"
        );
        // A different Hamiltonian invalidates and refills the cache.
        let ham2 = random_hamiltonian(10, 18);
        let ctx2 = SigmaCtx {
            space: &space,
            ham: &ham2,
            ddi: &ddi,
            model: &model,
            pool: PoolParams::default(),
        };
        mixed_spin_dgemm(&ctx2, &c, &space.zeros_ci(nproc));
        assert_eq!(serial_pack_totals(), (nka, nka));
    }

    #[test]
    fn mixed_phase_scales_with_processors() {
        let ham = random_hamiltonian(8, 9);
        let space = DetSpace::c1(8, 3, 3);
        let model = MachineModel::cray_x1();
        let mut t = Vec::new();
        for p in [2usize, 8] {
            let ddi = Ddi::new(p, Backend::Serial);
            let ctx = SigmaCtx {
                space: &space,
                ham: &ham,
                ddi: &ddi,
                model: &model,
                pool: PoolParams::default(),
            };
            let c = space.guess(&ham, p);
            let sigma = space.zeros_ci(p);
            t.push(mixed_spin_dgemm(&ctx, &c, &sigma).elapsed());
        }
        assert!(t[1] < 0.5 * t[0], "mixed-spin speedup 2→8 too small: {t:?}");
    }
}
