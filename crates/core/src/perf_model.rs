//! Analytic performance model of the α-β routine — Table 1 of the paper.
//!
//! | | MOC | DGEMM |
//! |---|---|---|
//! | kernel | DAXPY / indexed multiply-add | DGEMM (+ gather/scatter) |
//! | operations | `Nci·(n−Nα)·Nα·(n−Nβ)·Nβ` | `~Nci·n²·Nα·Nβ` |
//! | communication | `Nci·Nα·(n−Nα)` words | `3·Nci·Nα` words |
//!
//! The harness binary `table1_model` prints these next to the *measured*
//! counters from instrumented runs.

/// Problem parameters for the model.
#[derive(Clone, Copy, Debug)]
pub struct PerfModel {
    /// CI dimension `Nci`.
    pub nci: f64,
    /// Number of orbitals.
    pub n: usize,
    /// α electrons.
    pub na: usize,
    /// β electrons.
    pub nb: usize,
}

impl PerfModel {
    /// Bundle the problem parameters.
    pub fn new(nci: f64, n: usize, na: usize, nb: usize) -> Self {
        PerfModel { nci, n, na, nb }
    }

    /// MOC α-β operation count (multiply+add pairs counted as 2 flops).
    pub fn moc_ops(&self) -> f64 {
        2.0 * self.nci
            * (self.n - self.na) as f64
            * self.na as f64
            * (self.n - self.nb) as f64
            * self.nb as f64
    }

    /// DGEMM α-β operation count `~2·Nci·n²·Nα·Nβ`.
    pub fn dgemm_ops(&self) -> f64 {
        2.0 * self.nci * (self.n * self.n) as f64 * self.na as f64 * self.nb as f64
    }

    /// MOC α-β communication volume in 8-byte words.
    pub fn moc_comm_words(&self) -> f64 {
        self.nci * self.na as f64 * (self.n - self.na) as f64
    }

    /// DGEMM α-β communication volume in words (1× gather + 2× acc).
    pub fn dgemm_comm_words(&self) -> f64 {
        3.0 * self.nci * self.na as f64
    }

    /// Ratio of MOC to DGEMM communication — the paper quotes ≈25× for
    /// the O-atom calculation.
    pub fn comm_ratio(&self) -> f64 {
        self.moc_comm_words() / self.dgemm_comm_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counts_close_for_small_filling() {
        // The paper: with a large basis (n ≫ Nα, Nβ) "the difference
        // between the operation counts of the two algorithms is
        // insignificant".
        let m = PerfModel::new(1e9, 80, 5, 3);
        let ratio = m.dgemm_ops() / m.moc_ops();
        assert!(ratio > 1.0 && ratio < 1.2, "ratio {ratio}");
    }

    #[test]
    fn comm_ratio_grows_with_n() {
        let small = PerfModel::new(1e6, 10, 3, 3);
        let big = PerfModel::new(1e6, 80, 3, 3);
        assert!(big.comm_ratio() > small.comm_ratio());
        // ratio = (n − Nα)/3
        assert!((big.comm_ratio() - (80.0 - 3.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn oxygen_like_ratio_near_paper_value() {
        // aug-cc-pVQZ O: n ≈ 80, 5 α / 3 β valence-ish electrons → the
        // ~25× communication saving quoted in §4.
        let m = PerfModel::new(1e9, 80, 5, 3);
        assert!(
            m.comm_ratio() > 20.0 && m.comm_ratio() < 30.0,
            "{}",
            m.comm_ratio()
        );
    }
}
