//! The dynamic load-balancing task pool (paper §3.3, Fig. 3).
//!
//! The mixed-spin routine's work units are Nα−1 electron α occupations.
//! Per-unit cost is hard to predict, so the paper uses a manager/worker
//! pool driven by `SHMEM_SWAP`. A large number of fine-grained tasks gives
//! the best balance but costs counter traffic, so fine tasks are
//! *aggregated* into larger tasks "in order of decreasing size", with "an
//! extra short tail of fine grained tasks" bounding the worst-case
//! imbalance. Three parameters control the shape, mirroring the paper's
//! `NFineTask_proc`, `NLtask_proc`, `NStask_proc`.

/// Pool shape parameters (counts are *per processor*).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolParams {
    /// Initial number of fine-grained tasks per processor.
    pub fine_per_proc: usize,
    /// Number of aggregated large tasks per processor.
    pub large_per_proc: usize,
    /// Number of fine tasks kept as the small tail, per processor.
    pub small_per_proc: usize,
}

impl Default for PoolParams {
    fn default() -> Self {
        PoolParams {
            fine_per_proc: 64,
            large_per_proc: 6,
            small_per_proc: 12,
        }
    }
}

/// A precomputed, replicated list of item ranges to be claimed via the
/// shared counter.
#[derive(Clone, Debug)]
pub struct TaskPool {
    tasks: Vec<std::ops::Range<usize>>,
}

impl TaskPool {
    /// Aggregated pool over `nitems` work items for `nproc` processors.
    ///
    /// Large tasks come first with strictly non-increasing sizes; the tail
    /// is fine-grained. Every item is covered exactly once.
    pub fn aggregated(nitems: usize, nproc: usize, p: PoolParams) -> Self {
        assert!(nproc >= 1);
        if nitems == 0 {
            return TaskPool { tasks: Vec::new() };
        }
        let n_fine = (p.fine_per_proc * nproc).clamp(1, nitems);
        let fine_size = nitems.div_ceil(n_fine);
        // Fine task boundaries.
        let mut fine: Vec<std::ops::Range<usize>> = Vec::with_capacity(n_fine);
        let mut at = 0;
        while at < nitems {
            let end = (at + fine_size).min(nitems);
            fine.push(at..end);
            at = end;
        }
        let n_small = (p.small_per_proc * nproc).min(fine.len());
        let tail = fine.split_off(fine.len() - n_small);
        let mut tasks = Vec::new();
        if !fine.is_empty() {
            let n_large = (p.large_per_proc * nproc).clamp(1, fine.len());
            // Decreasing sizes: weight (n_large − i) for large task i.
            let wsum: usize = (1..=n_large).sum();
            let nf = fine.len();
            let mut taken = 0;
            for i in 0..n_large {
                let w = n_large - i;
                let mut cnt = (nf * w).div_ceil(wsum);
                cnt = cnt.min(nf - taken);
                if i == n_large - 1 {
                    cnt = nf - taken; // everything that remains
                }
                if cnt == 0 {
                    continue;
                }
                let start = fine[taken].start;
                let end = fine[taken + cnt - 1].end;
                tasks.push(start..end);
                taken += cnt;
                if taken == nf {
                    break;
                }
            }
        }
        tasks.extend(tail);
        TaskPool { tasks }
    }

    /// Uniform (non-aggregated) pool: `ntasks` equal ranges. Ablation
    /// baseline for the aggregation scheme.
    pub fn uniform(nitems: usize, ntasks: usize) -> Self {
        assert!(ntasks >= 1);
        let mut tasks = Vec::new();
        let size = nitems.div_ceil(ntasks).max(1);
        let mut at = 0;
        while at < nitems {
            let end = (at + size).min(nitems);
            tasks.push(at..end);
            at = end;
        }
        TaskPool { tasks }
    }

    /// Number of tasks in the pool.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the pool holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The item range of task `t`.
    pub fn task(&self, t: usize) -> std::ops::Range<usize> {
        self.tasks[t].clone()
    }

    /// Size (item count) of every task, in claim order. This is the shape
    /// the aggregation scheme produced — telemetry reports it alongside
    /// the task-grab events.
    pub fn sizes(&self) -> Vec<usize> {
        self.tasks.iter().map(|r| r.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_exactly(pool: &TaskPool, nitems: usize) {
        let mut seen = vec![0usize; nitems];
        for t in 0..pool.len() {
            for i in pool.task(t) {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "every item covered exactly once"
        );
    }

    #[test]
    fn aggregated_covers_all_items() {
        for &(nitems, nproc) in &[(1000usize, 8usize), (37, 4), (5, 16), (1, 1), (220, 3)] {
            let pool = TaskPool::aggregated(nitems, nproc, PoolParams::default());
            covers_exactly(&pool, nitems);
        }
    }

    #[test]
    fn large_tasks_decrease_then_fine_tail() {
        let p = PoolParams {
            fine_per_proc: 32,
            large_per_proc: 4,
            small_per_proc: 8,
        };
        let nproc = 4;
        let pool = TaskPool::aggregated(10_000, nproc, p);
        let sizes: Vec<usize> = (0..pool.len()).map(|t| pool.task(t).len()).collect();
        let n_small = p.small_per_proc * nproc;
        assert!(pool.len() > n_small);
        let large = &sizes[..sizes.len() - n_small];
        for w in large.windows(2) {
            assert!(
                w[0] >= w[1],
                "large tasks must be non-increasing: {sizes:?}"
            );
        }
        // Tail tasks are smaller than the smallest large task.
        let tail_max = sizes[sizes.len() - n_small..].iter().max().unwrap();
        assert!(tail_max <= large.last().unwrap());
    }

    #[test]
    fn uniform_pool() {
        let pool = TaskPool::uniform(10, 3);
        covers_exactly(&pool, 10);
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn empty_items() {
        let pool = TaskPool::aggregated(0, 8, PoolParams::default());
        assert!(pool.is_empty());
    }

    #[test]
    fn more_tasks_than_items() {
        let pool = TaskPool::uniform(3, 10);
        covers_exactly(&pool, 3);
        assert!(pool.len() <= 3);
    }
}
