//! Counting-allocator proof that the σ hot path is allocation-free
//! after warm-up (PR 4 acceptance criterion).
//!
//! A `#[global_allocator]` shim counts every `alloc`/`alloc_zeroed`/
//! `realloc`. After one warm-up pass (which sizes the `MixedWorker`
//! buffers and populates the `fci-linalg` scratch-buffer pool), repeated
//! `MixedWorker::run_task` executions — gather, D build, V_K·D DGEMM,
//! scatter, accumulate — must perform **zero** heap allocations. A
//! second assertion bounds steady-state `mixed_spin_dgemm` calls (which
//! legitimately allocate per-call bookkeeping: clocks, stats, the task
//! pool, the run report) far below the warm-up call that builds the
//! working set.

use fci_core::sigma::mixed::{mixed_spin_dgemm, MixedWorker};
use fci_core::sigma::SigmaCtx;
use fci_core::{random_hamiltonian, DetSpace, PoolParams};
use fci_ddi::{Backend, Ddi};
use fci_xsim::MachineModel;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates to the `System` allocator with its
// arguments forwarded verbatim, so `System`'s guarantees carry over.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: (each method) counts the call, then forwards to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: delegating to the system allocator with the same layout.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: counts the call, then forwards to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: delegating to the system allocator with the same layout.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: counts the call, then forwards to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        // SAFETY: caller contract forwarded verbatim to the system
        // allocator.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: forwards to the `System` allocator that produced `ptr`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: delegating to the system allocator that produced `ptr`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> (usize, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// Both assertions live in one `#[test]` so no sibling test thread can
/// perturb the global counters mid-measurement.
#[test]
fn sigma_task_hot_path_is_allocation_free_after_warmup() {
    // Large enough that nd·nkb·nd crosses into the packed (arena-backed)
    // GEMM path: n=10, 3α3β → nd = 80, nkb = 45.
    let ham = random_hamiltonian(10, 17);
    let space = DetSpace::c1(10, 3, 3);
    let nproc = 4;
    let ddi = Ddi::new(nproc, Backend::Serial);
    let model = MachineModel::cray_x1();
    let ctx = SigmaCtx {
        space: &space,
        ham: &ham,
        ddi: &ddi,
        model: &model,
        pool: PoolParams::default(),
    };
    let c = space.guess(&ham, nproc);
    let sigma = space.zeros_ci(nproc);
    let nka = space.alpha_nm1.len();

    let mut worker = MixedWorker::new(&ctx);
    let run_all = |worker: &mut MixedWorker| {
        for ka in 0..nka {
            worker.run_task(&ctx, &c, ka, 0, &mut |col, vals, st| {
                sigma.acc_col(0, col, vals, st)
            });
        }
    };

    // Warm-up: sizes every buffer, fills the linalg scratch pool.
    run_all(&mut worker);

    // Steady state: the whole task loop must not touch the heap. Retry a
    // few times before failing so a one-off burst from the test harness
    // runtime (which shares the global counters) cannot produce a false
    // positive; a real hot-path allocation fires on *every* pass.
    let mut min_calls = usize::MAX;
    for _ in 0..3 {
        let (c0, _) = allocs();
        run_all(&mut worker);
        let (c1, _) = allocs();
        min_calls = min_calls.min(c1 - c0);
    }
    assert_eq!(
        min_calls, 0,
        "σ task hot path allocated {min_calls} times per pass after warm-up"
    );

    // Full-phase driver: the first call builds the hoisted serial
    // working area (V_K alone is nd² doubles); steady-state calls keep
    // only O(nproc + tasks) bookkeeping and must stay far below it.
    let sigma2 = space.zeros_ci(nproc);
    let (_, b0) = allocs();
    mixed_spin_dgemm(&ctx, &c, &sigma2);
    let (_, b1) = allocs();
    let warm_bytes = b1 - b0;
    let mut steady_bytes = u64::MAX;
    for _ in 0..3 {
        let (_, s0) = allocs();
        mixed_spin_dgemm(&ctx, &c, &sigma2);
        let (_, s1) = allocs();
        steady_bytes = steady_bytes.min(s1 - s0);
    }
    assert!(
        steady_bytes * 4 < warm_bytes,
        "steady-state mixed_spin_dgemm allocates {steady_bytes} B per call \
         vs {warm_bytes} B warm-up — WorkBufs hoisting is not effective"
    );
}
