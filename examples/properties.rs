//! Post-convergence wavefunction analysis: spin purity, natural orbitals,
//! dipole moment, and a few excited states.
//!
//! ```text
//! cargo run --release --example properties
//! ```
//!
//! Runs frozen-core FCI on water, then derives everything a chemist asks
//! for next: ⟨S²⟩ (must vanish for the singlet), natural occupation
//! numbers from the 1-RDM, the dipole moment (electronic from the RDM +
//! nuclear), and the three lowest states of the sector via block Davidson.

use fcix::core::{
    diagonalize_roots, natural_occupations, one_rdm, s_squared, solve, DetSpace, DiagOptions,
    FciOptions, Hamiltonian, PoolParams, SigmaCtx, SigmaMethod,
};
use fcix::ddi::{Backend, Ddi};
use fcix::ints::{dipole, BasisSet, Molecule};
use fcix::scf::{rhf, transform_integrals, RhfOptions};
use fcix::xsim::MachineModel;

fn main() {
    let mol = Molecule::from_symbols_bohr(
        &[
            ("O", [0.0, 0.0, 0.0]),
            ("H", [0.0, 1.4305, 1.1092]),
            ("H", [0.0, -1.4305, 1.1092]),
        ],
        0,
    );
    let basis = BasisSet::build(&mol, "sto-3g");
    let scf = rhf(&mol, &basis, &RhfOptions::default());
    assert!(scf.converged);
    let nao = basis.n_basis();
    let mo = transform_integrals(
        &scf.h_ao,
        &scf.eri_ao,
        &scf.mo_coeffs,
        mol.nuclear_repulsion(),
        1,
        6,
    );

    let r = solve(&mo, 4, 4, 0, &FciOptions::default());
    assert!(r.converged);
    println!(
        "E(FCI)            : {:+.8} Eh  (E(RHF) = {:+.8})",
        r.energy, scf.energy
    );

    let ham = Hamiltonian::new(&mo);
    let space = DetSpace::for_hamiltonian(&ham, 4, 4, 0);

    // Spin purity.
    let s2 = s_squared(&space, &r.diag.c);
    println!("<S^2>             : {s2:+.2e}  (singlet ⇒ 0)");

    // Natural occupations.
    let occ = natural_occupations(&space, &r.diag.c);
    println!(
        "natural occupations: {:?}",
        occ.iter()
            .map(|x| (x * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    // Dipole moment: nuclear + electronic (1-RDM contracted with the MO
    // dipole matrices; frozen core adds 2×(core MO) contributions).
    let d_ao = dipole(&basis, [0.0; 3]);
    let g = one_rdm(&space, &r.diag.c);
    let mut mu = [0.0f64; 3];
    for ax in 0..3 {
        // nuclear part
        for a in &mol.atoms {
            mu[ax] += a.z as f64 * a.pos[ax];
        }
        // MO dipole matrix over all MOs.
        let d_mo = scf.mo_coeffs.t_matmul(&d_ao[ax]).matmul(&scf.mo_coeffs);
        // frozen core (MO 0, doubly occupied)
        mu[ax] -= 2.0 * d_mo[(0, 0)];
        // active space (MOs 1..7)
        for p in 0..6 {
            for q in 0..6 {
                mu[ax] -= g[(p, q)] * d_mo[(1 + q, 1 + p)];
            }
        }
    }
    let norm = (mu[0] * mu[0] + mu[1] * mu[1] + mu[2] * mu[2]).sqrt();
    println!(
        "dipole moment     : ({:+.4}, {:+.4}, {:+.4}) a.u., |μ| = {:.4} a.u. = {:.3} D",
        mu[0],
        mu[1],
        mu[2],
        norm,
        norm * 2.541746
    );
    let _ = nao;

    // Excited states.
    let ddi = Ddi::new(2, Backend::Serial);
    let model = MachineModel::cray_x1();
    let ctx = SigmaCtx {
        space: &space,
        ham: &ham,
        ddi: &ddi,
        model: &model,
        pool: PoolParams::default(),
    };
    let roots = diagonalize_roots(
        &ctx,
        SigmaMethod::Dgemm,
        &DiagOptions {
            max_iter: 60,
            tol: 1e-7,
            ..Default::default()
        },
        3,
    );
    println!("\nlowest three states of the sector:");
    for k in 0..3 {
        let s2k = s_squared(&space, &roots.states[k]);
        println!(
            "  root {k}: E = {:+.8} Eh  (ΔE = {:+.4} Eh, <S^2> = {:.3}, {})",
            roots.energies[k] + ham.e_core,
            roots.energies[k] - roots.energies[0],
            s2k,
            if roots.converged[k] {
                "converged"
            } else {
                "NOT converged"
            },
        );
    }
}
