//! H2 dissociation curve: RHF vs FCI.
//!
//! ```text
//! cargo run --release --example dissociation
//! ```
//!
//! The classic demonstration of why FCI matters: restricted Hartree–Fock
//! fails catastrophically at stretched geometries (it dissociates into an
//! unphysical ionic mixture), while FCI dissociates correctly into two
//! hydrogen atoms. The growing RHF−FCI gap along the curve is exactly the
//! static correlation the paper's CN⁺ convergence case is about.

use fcix::core::{solve, FciOptions};
use fcix::ints::{BasisSet, Molecule};
use fcix::scf::{rhf, transform_integrals, RhfOptions};

fn main() {
    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "R [a0]", "E(RHF) [Eh]", "E(FCI) [Eh]", "corr [mEh]"
    );
    let mut last_fci = 0.0;
    for i in 0..12 {
        let r = 1.0 + 0.5 * i as f64;
        let mol = Molecule::from_symbols_bohr(&[("H", [0.0, 0.0, 0.0]), ("H", [0.0, 0.0, r])], 0);
        let basis = BasisSet::build(&mol, "sto-3g");
        let scf = rhf(&mol, &basis, &RhfOptions::default());
        let mo = transform_integrals(
            &scf.h_ao,
            &scf.eri_ao,
            &scf.mo_coeffs,
            mol.nuclear_repulsion(),
            0,
            basis.n_basis(),
        );
        let fci = solve(&mo, 1, 1, 0, &FciOptions::default());
        assert!(fci.converged, "FCI failed at R = {r}");
        println!(
            "{r:>8.2} {:>14.8} {:>14.8} {:>12.3}",
            scf.energy,
            fci.energy,
            (fci.energy - scf.energy) * 1e3
        );
        last_fci = fci.energy;
    }
    // At dissociation, FCI(H2/STO-3G) → 2 × E(H/STO-3G) = 2 × −0.46658…
    let h_atom = -0.466_58;
    println!(
        "\nFCI at R = 6.5 a0: {last_fci:.5} Eh; 2 × E(H atom/STO-3G) = {:.5} Eh",
        2.0 * h_atom
    );
    assert!(
        (last_fci - 2.0 * h_atom).abs() < 5e-3,
        "FCI must dissociate to two H atoms"
    );
}
