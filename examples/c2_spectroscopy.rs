//! Spectroscopic constants of C2 from an FCI potential curve.
//!
//! ```text
//! cargo run --release --example c2_spectroscopy
//! ```
//!
//! The paper's headline calculation is the C2 X¹Σg⁺ ground state — the
//! benchmark lineage goes back to Leininger et al.'s "benchmark
//! configuration interaction spectroscopic constants" (the paper's
//! ref. 22). This example runs the same kind of analysis at reproduction
//! scale: scan the bond length, fit a parabola around the minimum, and
//! extract the equilibrium distance rₑ and harmonic frequency ωₑ.

use fcix::core::{solve, DiagMethod, DiagOptions, FciOptions};
use fcix::ints::{detect_point_group, overlap, BasisSet, Molecule};
use fcix::scf::{core_orbitals, rhf, symmetry_adapt, transform_integrals, RhfOptions};

/// FCI(8,8) energy of C2 at bond length `r` (bohr), frozen 1s cores.
fn e_c2(r: f64) -> f64 {
    let mol = Molecule::from_symbols_bohr(
        &[("C", [0.0, 0.0, -r / 2.0]), ("C", [0.0, 0.0, r / 2.0])],
        0,
    );
    let basis = BasisSet::build(&mol, "sto-3g");
    let scf = rhf(&mol, &basis, &RhfOptions::default());
    // C2 is multireference: fall back to core orbitals if SCF struggles.
    let (c, h_ao, eri_ao) = if scf.converged {
        (scf.mo_coeffs, scf.h_ao, scf.eri_ao)
    } else {
        let (c, _) = core_orbitals(&basis, &mol);
        (c, scf.h_ao, scf.eri_ao)
    };
    let pg = detect_point_group(&mol);
    let s = overlap(&basis);
    let (cad, irreps) = symmetry_adapt(&pg, &basis, &s, &c);
    let n_act = basis.n_basis() - 2;
    let mo = transform_integrals(&h_ao, &eri_ao, &cad, mol.nuclear_repulsion(), 2, n_act)
        .with_symmetry(irreps[2..2 + n_act].to_vec(), pg.n_irrep());
    let opts = FciOptions {
        method: DiagMethod::Davidson,
        diag: DiagOptions {
            max_iter: 100,
            tol: 1e-8,
            model_space: 60,
            ..Default::default()
        },
        ..Default::default()
    };
    let res = solve(&mo, 4, 4, 0, &opts);
    assert!(res.converged, "FCI failed at r = {r}");
    res.energy
}

fn main() {
    // Coarse scan, then refine around the minimum.
    println!("{:>8} {:>16}", "r [a0]", "E(FCI) [Eh]");
    let mut pts: Vec<(f64, f64)> = Vec::new();
    let mut r = 2.10;
    while r <= 2.70 + 1e-9 {
        let e = e_c2(r);
        println!("{r:>8.3} {e:>16.8}");
        pts.push((r, e));
        r += 0.10;
    }
    // Parabolic fit through the three lowest points.
    pts.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let mut low3 = pts[..3].to_vec();
    low3.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let ((x0, y0), (x1, y1), (x2, y2)) = (low3[0], low3[1], low3[2]);
    // Lagrange-derived quadratic coefficients.
    let d0 = y0 / ((x0 - x1) * (x0 - x2));
    let d1 = y1 / ((x1 - x0) * (x1 - x2));
    let d2 = y2 / ((x2 - x0) * (x2 - x1));
    let a = d0 + d1 + d2;
    let b = -(d0 * (x1 + x2) + d1 * (x0 + x2) + d2 * (x0 + x1));
    let re = -b / (2.0 * a);
    let k = 2.0 * a; // d²E/dr² in Eh/a0²
                     // ω = sqrt(k/μ); μ(C2) = 6 amu = 6×1822.888 m_e.
    let mu = 6.0 * 1822.888486;
    let omega_au = (k / mu).sqrt();
    let omega_cm = omega_au * 219_474.631; // Eh → cm⁻¹

    println!("\nparabolic fit through the three lowest points:");
    println!(
        "  r_e     = {re:.4} a0 = {:.4} Å",
        re / fcix::ints::ANGSTROM_TO_BOHR
    );
    println!("  k       = {k:.4} Eh/a0²");
    println!("  omega_e = {omega_cm:.0} cm⁻¹");
    println!("\n(experimental C2 X¹Σg⁺: r_e = 1.243 Å, ωₑ = 1855 cm⁻¹ — a minimal");
    println!("basis lands in the right neighbourhood, not on the literature digits.)");
    assert!(re > 2.0 && re < 2.8, "r_e out of physical range");
    assert!(
        omega_cm > 1000.0 && omega_cm < 3000.0,
        "omega_e out of physical range"
    );
}
