//! Quick start for the sparse/selected CI engines.
//!
//! ```text
//! cargo run --release --example sparse_ci -- [sites]
//! ```
//!
//! The dense engine stores every CI coefficient — C(n,k)² of them — so
//! its memory wall arrives fast. The sparse engines store only the
//! determinants that matter: CDFCI relaxes one coordinate at a time
//! under a hard store bound, and selected CI grows an importance-screened
//! variational space. This example solves a half-filled Hubbard chain
//! three ways and compares energies, support sizes, and the selected-CI
//! growth curve. At the default 8 sites all three agree to micro-Hartrees
//! while the sparse engines touch a fraction of the 4,900 determinants.

use fcix::core::{solve, DetSpace, DiagMethod, DiagOptions, FciOptions, Hamiltonian, SolverKind};
use fcix::ints::EriTensor;
use fcix::linalg::Matrix;
use fcix::scf::MoIntegrals;
use fcix::sparse::{solve_sparse, SparseOptions};

fn hubbard(n: usize, t: f64, u: f64) -> MoIntegrals {
    let mut h = Matrix::zeros(n, n);
    for i in 0..n - 1 {
        h[(i, i + 1)] = -t;
        h[(i + 1, i)] = -t;
    }
    let mut eri = EriTensor::zeros(n);
    for i in 0..n {
        eri.set(i, i, i, i, u);
    }
    MoIntegrals {
        n_orb: n,
        h,
        eri,
        e_core: 0.0,
        orb_sym: vec![0; n],
        n_irrep: 1,
    }
}

fn main() {
    let sites: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let ne = sites / 2;
    let mo = hubbard(sites, 1.0, 4.0);
    let ham = Hamiltonian::new(&mo);
    let space = DetSpace::for_hamiltonian(&ham, ne, ne, 0);
    println!(
        "half-filled {sites}-site Hubbard chain (U/t = 4): {} determinants\n",
        space.sector_dim()
    );

    // Dense reference (Davidson — lattice diagonals are degenerate).
    let dense = solve(
        &mo,
        ne,
        ne,
        0,
        &FciOptions {
            method: DiagMethod::Davidson,
            diag: DiagOptions {
                max_iter: 200,
                model_space: 50,
                ..Default::default()
            },
            ..FciOptions::default()
        },
    );
    assert!(dense.converged);
    println!("dense FCI      E = {:.9}  (full vector)", dense.energy);

    // CDFCI: coordinate descent on the energy, support grows on demand.
    let cd = solve_sparse(
        &space,
        &ham,
        SolverKind::SparseCdfci,
        &SparseOptions {
            tol: 1e-10,
            ..SparseOptions::default()
        },
    );
    println!(
        "CDFCI          E = {:.9}  err {:.2e} Ha  support {} ({:.0}%)",
        cd.energy(),
        (cd.energy() - dense.energy).abs(),
        cd.support,
        100.0 * cd.support as f64 / space.sector_dim() as f64
    );

    // Selected CI: importance-screened growth, truncated Davidson inner.
    let sel = solve_sparse(
        &space,
        &ham,
        SolverKind::SparseSelected,
        &SparseOptions {
            eps: 1e-4,
            tol: 1e-9,
            ..SparseOptions::default()
        },
    );
    println!(
        "selected CI    E = {:.9}  err {:.2e} Ha  support {} ({:.0}%)",
        sel.energy(),
        (sel.energy() - dense.energy).abs(),
        sel.support,
        100.0 * sel.support as f64 / space.sector_dim() as f64
    );
    println!("\nselected-CI growth (round, support, energy):");
    for s in &sel.history {
        println!("  {:>3}  {:>7}  {:.9}", s.sweep, s.support, s.energy);
    }
    assert!((cd.energy() - dense.energy).abs() < 1e-6);
    assert!((sel.energy() - dense.energy).abs() < 1.6e-3);
}
