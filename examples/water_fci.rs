//! Frozen-core FCI of water with symmetry blocking and the full
//! diagonalizer menu.
//!
//! ```text
//! cargo run --release --example water_fci
//! ```
//!
//! Demonstrates the complete pipeline on a polyatomic: point-group
//! detection (C2v), symmetry-adapted orbitals, frozen-core transformation,
//! and a comparison of all four iterative eigensolvers from the paper's
//! Table 2 on the same Hamiltonian.

use fcix::core::{solve, DiagMethod, DiagOptions, FciOptions};
use fcix::ints::{detect_point_group, overlap, BasisSet, Molecule};
use fcix::scf::{rhf, symmetry_adapt, transform_integrals, RhfOptions};

fn main() {
    let mol = Molecule::from_symbols_bohr(
        &[
            ("O", [0.0, 0.0, 0.0]),
            ("H", [0.0, 1.4305, 1.1092]),
            ("H", [0.0, -1.4305, 1.1092]),
        ],
        0,
    );
    let basis = BasisSet::build(&mol, "sto-3g");
    let pg = detect_point_group(&mol);
    println!(
        "point group       : {} ({} irreps)",
        pg.name(),
        pg.n_irrep()
    );

    let scf = rhf(&mol, &basis, &RhfOptions::default());
    assert!(scf.converged);
    println!("RHF energy        : {:+.8} Eh", scf.energy);

    let s = overlap(&basis);
    let (c_adapted, irreps) = symmetry_adapt(&pg, &basis, &s, &scf.mo_coeffs);
    println!("orbital irreps    : {irreps:?}");

    // Freeze the O 1s core; keep the remaining 6 orbitals active.
    let mo = transform_integrals(
        &scf.h_ao,
        &scf.eri_ao,
        &c_adapted,
        mol.nuclear_repulsion(),
        1,
        6,
    )
    .with_symmetry(irreps[1..7].to_vec(), pg.n_irrep());

    println!(
        "\n{:>14} {:>7} {:>11} {:>16}",
        "method", "iters", "converged", "E(FCI) [Eh]"
    );
    for (name, method) in [
        ("Davidson", DiagMethod::Davidson),
        ("Olsen", DiagMethod::Olsen),
        ("Olsen(0.7)", DiagMethod::OlsenDamped),
        ("AutoAdjust", DiagMethod::AutoAdjust),
    ] {
        let opts = FciOptions {
            method,
            diag: DiagOptions {
                tol: 1e-9,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = solve(&mo, 4, 4, 0, &opts);
        println!(
            "{name:>14} {:>7} {:>11} {:>16.8}",
            r.iterations, r.converged, r.energy
        );
        if method == DiagMethod::AutoAdjust {
            assert!(r.converged);
            println!("\ncorrelation energy: {:+.6} Eh", r.energy - scf.energy);
            println!("CI dimension      : {} (sector {})", r.dim, r.sector_dim);
        }
    }
}
