//! FCI as a lattice-model solver: the 1-D Hubbard chain.
//!
//! ```text
//! cargo run --release --example hubbard_chain -- [sites] [U]
//! ```
//!
//! The FCI machinery is basis-agnostic — any `MoIntegrals` works. Here we
//! build nearest-neighbour hopping + on-site repulsion integrals directly
//! and sweep the interaction strength, watching the crossover from the
//! tight-binding band limit (U = 0, exactly summable) toward the
//! Heisenberg limit.

use fcix::core::{solve, DiagMethod, DiagOptions, FciOptions};
use fcix::ints::EriTensor;
use fcix::linalg::{eigh, Matrix};
use fcix::scf::MoIntegrals;

fn hubbard(n: usize, t: f64, u: f64) -> MoIntegrals {
    let mut h = Matrix::zeros(n, n);
    for i in 0..n - 1 {
        h[(i, i + 1)] = -t;
        h[(i + 1, i)] = -t;
    }
    let mut eri = EriTensor::zeros(n);
    for i in 0..n {
        eri.set(i, i, i, i, u);
    }
    MoIntegrals {
        n_orb: n,
        h,
        eri,
        e_core: 0.0,
        orb_sym: vec![0; n],
        n_irrep: 1,
    }
}

fn main() {
    let sites: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let umax: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8.0);
    let ne = sites / 2; // quarter-ish filling per spin -> half filling total
    println!("1-D Hubbard chain, {sites} sites, {ne}α + {ne}β electrons (open boundary)\n");
    println!("{:>8} {:>16} {:>14}", "U/t", "E0 [t]", "E0/site [t]");

    // U = 0 reference: fill the lowest single-particle levels twice.
    let mo0 = hubbard(sites, 1.0, 0.0);
    let band = eigh(&mo0.h).eigenvalues;
    let e_band: f64 = 2.0 * band[..ne].iter().sum::<f64>();

    let mut u = 0.0;
    while u <= umax + 1e-9 {
        let mo = hubbard(sites, 1.0, u);
        // Lattice diagonals are highly degenerate: use the Davidson
        // subspace method (the single-vector schemes presume a dominant
        // reference determinant — fine for molecules, not for lattices).
        let opts = FciOptions {
            method: DiagMethod::Davidson,
            diag: DiagOptions {
                max_iter: 200,
                model_space: 50,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = solve(&mo, ne, ne, 0, &opts);
        assert!(r.converged, "U = {u} failed to converge");
        println!(
            "{u:>8.1} {:>16.8} {:>14.6}",
            r.energy,
            r.energy / sites as f64
        );
        if u == 0.0 {
            assert!(
                (r.energy - e_band).abs() < 1e-6,
                "U=0 must reproduce the band sum"
            );
        }
        u += 2.0;
    }
    println!("\nU = 0 band-theory check: Σ 2ε_i = {e_band:.8} t ✓");
    println!("CI dimension: {}", {
        let nc = fcix::strings::binomial(sites, ne);
        nc * nc
    });
}
