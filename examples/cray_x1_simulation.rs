//! Driving the simulated Cray-X1 directly: one σ evaluation of each
//! algorithm on a chosen virtual MSP count, with the full per-routine
//! simulated-time and communication breakdown.
//!
//! ```text
//! cargo run --release --example cray_x1_simulation -- [msps] [--trace out.jsonl]
//! ```
//!
//! With `--trace`, every σ phase is recorded as per-MSP spans in JSONL;
//! inspect the file with `fcix-trace summarize` / `to-chrome`.

use fcix::core::{apply_sigma, random_hamiltonian, DetSpace, PoolParams, SigmaCtx, SigmaMethod};
use fcix::ddi::{Backend, Ddi};
use fcix::obs::ObsConfig;
use fcix::xsim::MachineModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let msps: usize = args.iter().find_map(|a| a.parse().ok()).unwrap_or(64);
    // A synthetic 12-orbital, 4α+4β problem (245 025 determinants).
    let ham = random_hamiltonian(12, 2024);
    let space = DetSpace::c1(12, 4, 4);
    let ddi = Ddi::new(msps, Backend::Serial);
    let model = MachineModel::cray_x1();
    let obs = match &trace_path {
        Some(p) => ObsConfig::to_file(p),
        None => ObsConfig::off(),
    };
    let tracer = obs.tracer().expect("cannot open trace output");
    ddi.attach_tracer(tracer.clone());
    let ctx = SigmaCtx {
        space: &space,
        ham: &ham,
        ddi: &ddi,
        model: &model,
        pool: PoolParams::default(),
    };
    let c = space.guess(&ham, msps);

    println!(
        "σ = H·C on {} determinants over {msps} virtual Cray-X1 MSPs\n",
        space.dim()
    );
    for (name, method) in [
        ("DGEMM (paper)", SigmaMethod::Dgemm),
        ("MOC (baseline)", SigmaMethod::Moc),
    ] {
        // lint: allow(wallclock) — example compares host time to simulated time
        let t0 = std::time::Instant::now();
        let (_sigma, bd) = apply_sigma(&ctx, &c, method);
        let host = t0.elapsed().as_secs_f64();
        let total = bd.total();
        println!("{name}");
        println!(
            "  beta-beta   : {:>9.4} s  ({:.2} GF/MSP)",
            bd.beta_beta.elapsed(),
            bd.beta_beta.gflops_per_msp()
        );
        println!(
            "  alpha-alpha : {:>9.4} s  ({:.2} GF/MSP)",
            bd.alpha_alpha.elapsed(),
            bd.alpha_alpha.gflops_per_msp()
        );
        println!(
            "  alpha-beta  : {:>9.4} s  ({:.2} GF/MSP)",
            bd.alpha_beta.elapsed(),
            bd.alpha_beta.gflops_per_msp()
        );
        println!("  transpose   : {:>9.4} s", bd.transpose.elapsed());
        println!(
            "  TOTAL       : {:>9.4} s simulated, {:.2} GF/MSP, {:.3} TF aggregate",
            total.elapsed(),
            total.gflops_per_msp(),
            total.tflops()
        );
        println!(
            "  network     : {:.2} MB moved, load imbalance {:.4} s",
            total.total_net_bytes() / 1e6,
            bd.alpha_beta.load_imbalance()
        );
        println!("  (host wall-clock for the real computation: {host:.2} s)\n");
    }
    println!("note: both algorithms produce bitwise-equivalent σ vectors; only the");
    println!("kernel shapes — and therefore the simulated X1 cost — differ.");
    tracer.flush();
    if let Some(p) = trace_path {
        println!("\ntrace written to {p} — try: fcix-trace summarize {p}");
    }
}
