//! Quickstart: full configuration interaction on H2 in a minimal basis.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the molecule, runs restricted Hartree–Fock, transforms the
//! integrals to the MO basis, and solves the FCI eigenproblem with the
//! paper's DGEMM-based σ algorithm and automatically adjusted
//! single-vector diagonalizer.

use fcix::core::{solve, FciOptions};
use fcix::ints::{BasisSet, Molecule};
use fcix::scf::{rhf, transform_integrals, RhfOptions};

fn main() {
    // H2 at its near-equilibrium bond length of 1.4 bohr.
    let mol = Molecule::from_symbols_bohr(&[("H", [0.0, 0.0, 0.0]), ("H", [0.0, 0.0, 1.4])], 0);
    let basis = BasisSet::build(&mol, "sto-3g");

    // Hartree–Fock reference.
    let scf = rhf(&mol, &basis, &RhfOptions::default());
    assert!(scf.converged);
    println!(
        "RHF/STO-3G energy : {:+.8} Eh ({} iterations)",
        scf.energy, scf.iterations
    );

    // MO integrals (no frozen core, all orbitals active).
    let mo = transform_integrals(
        &scf.h_ao,
        &scf.eri_ao,
        &scf.mo_coeffs,
        mol.nuclear_repulsion(),
        0,
        basis.n_basis(),
    );

    // FCI: 1 α + 1 β electron in 2 orbitals.
    let fci = solve(&mo, 1, 1, 0, &FciOptions::default());
    println!(
        "FCI/STO-3G energy : {:+.8} Eh ({} iterations, converged = {})",
        fci.energy, fci.iterations, fci.converged
    );
    println!("correlation energy: {:+.8} Eh", fci.energy - scf.energy);
    println!("CI dimension      : {}", fci.dim);
    assert!(fci.converged);
    assert!(
        fci.energy < scf.energy,
        "FCI must lower the variational energy"
    );
}
