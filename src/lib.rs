#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Facade crate re-exporting the whole fcix workspace under one roof —
//! see the README for the architecture and the per-crate docs for detail.

pub use fci_check as check;
pub use fci_core as core;
pub use fci_ddi as ddi;
pub use fci_fault as fault;
pub use fci_ints as ints;
pub use fci_linalg as linalg;
pub use fci_obs as obs;
pub use fci_scf as scf;
pub use fci_serve as serve;
pub use fci_strings as strings;
pub use fci_xsim as xsim;
