#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Facade crate re-exporting the whole fcix workspace under one roof —
//! see the README for the architecture and the per-crate docs for detail.

pub use fci_check as check;
pub use fci_core as core;
pub use fci_ddi as ddi;
pub use fci_fault as fault;
pub use fci_ints as ints;
pub use fci_linalg as linalg;
pub use fci_obs as obs;
pub use fci_scf as scf;
pub use fci_serve as serve;
pub use fci_sparse as sparse;
pub use fci_strings as strings;
pub use fci_xsim as xsim;

/// Dispatch a ground-state solve on [`fci_core::FciOptions::solver`]:
/// the dense DGEMM engine for [`fci_core::SolverKind::Dense`], otherwise
/// the sparse engines from [`fci_sparse`]. Sparse runs derive their knobs
/// from `opts` (`nproc` → threads) and `sparse` (everything else) and are
/// reported through the same scalar-energy shape.
pub fn solve_any(
    mo: &fci_scf::MoIntegrals,
    na: usize,
    nb: usize,
    irrep: u8,
    opts: &fci_core::FciOptions,
    sparse_opts: &fci_sparse::SparseOptions,
) -> (f64, bool) {
    match opts.solver {
        fci_core::SolverKind::Dense => {
            let res = fci_core::solve(mo, na, nb, irrep, opts);
            (res.energy, res.converged)
        }
        kind => {
            let ham = fci_core::Hamiltonian::new(mo);
            let space = fci_core::DetSpace::for_hamiltonian(&ham, na, nb, irrep);
            let mut so = sparse_opts.clone();
            so.threads = opts.nproc.max(1);
            let res = fci_sparse::solve_sparse(&space, &ham, kind, &so);
            (res.energy(), res.converged)
        }
    }
}
