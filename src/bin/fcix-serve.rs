//! `fcix-serve` — run a batch of FCI jobs through the `fci-serve`
//! multi-tenant scheduler.
//!
//! ```text
//! fcix-serve [options] <jobs.jsonl | ->
//!
//!   -w, --workers N          worker threads (default 2)
//!   -o, --out FILE           per-job JSONL results (default stdout)
//!       --no-batching        disable same-space multi-root coalescing
//!       --cache-bytes N      artifact-cache budget (default 256 MiB; 0 = off)
//!       --mem-bytes N        admission memory budget (default 1 GiB)
//!       --queue-cap N        queue capacity (default 1024)
//!       --ckpt-dir DIR       resilient-solve checkpoint directory
//!       --trace FILE         server lifecycle trace (JSONL, fcix-trace readable)
//!       --metrics-out FILE   metrics-plane text exposition, refreshed every
//!                            250 ms while the queue drains (atomic replace —
//!                            a scraper/tailer never sees a torn file) and
//!                            finalized at exit
//!       --job-trace-dir DIR  one solver trace file per job
//!       --verify FILE        JSONL of {"id","energy"} refs; fail if any
//!                            completed job deviates by > 1e-9
//!       --require-cache-hits fail unless the artifact cache hit at least once
//! ```
//!
//! Jobs come one JSON object per line (`-` reads stdin); see
//! `examples/serve_jobs6.jsonl` and DESIGN.md §12 for the schema. Exit
//! status: 0 all jobs done (and verified), 1 any failure, 2 bad usage.

use std::collections::HashMap;
use std::process::ExitCode;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fcix::obs::{JsonValue, MetricsRegistry, ObsConfig};
use fcix::serve::{serve, JobSpec, JobStatus, ServeConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: fcix-serve [options] <jobs.jsonl | ->\n\
         see `fcix-serve --help` (or the bin docs) for options"
    );
    ExitCode::from(2)
}

struct Cli {
    cfg: ServeConfig,
    jobs_path: String,
    out: Option<String>,
    verify: Option<String>,
    require_cache_hits: bool,
    metrics_out: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        cfg: ServeConfig::default(),
        jobs_path: String::new(),
        out: None,
        verify: None,
        require_cache_hits: false,
        metrics_out: None,
    };
    let mut it = args.iter();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-w" | "--workers" => cli.cfg.workers = parse_num(&value(arg)?)?,
            "-o" | "--out" => cli.out = Some(value(arg)?),
            "--no-batching" => cli.cfg.batching = false,
            "--cache-bytes" => cli.cfg.cache_budget = parse_num(&value(arg)?)?,
            "--mem-bytes" => cli.cfg.mem_budget = parse_num(&value(arg)?)?,
            "--queue-cap" => cli.cfg.queue_cap = parse_num(&value(arg)?)?,
            "--ckpt-dir" => cli.cfg.checkpoint_dir = value(arg)?.into(),
            "--trace" => cli.cfg.obs = ObsConfig::to_file(value(arg)?),
            "--metrics-out" => cli.metrics_out = Some(value(arg)?),
            "--job-trace-dir" => cli.cfg.job_trace_dir = Some(value(arg)?.into()),
            "--verify" => cli.verify = Some(value(arg)?),
            "--require-cache-hits" => cli.require_cache_hits = true,
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown option {other}"));
            }
            other => positional.push(other.to_string()),
        }
    }
    match positional.as_slice() {
        [path] => cli.jobs_path = path.clone(),
        _ => return Err("expected exactly one jobs file (or `-`)".into()),
    }
    Ok(cli)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("bad number `{s}`"))
}

fn read_jobs(path: &str) -> Result<Vec<JobSpec>, String> {
    let text = if path == "-" {
        std::io::read_to_string(std::io::stdin()).map_err(|e| format!("stdin: {e}"))?
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    let mut jobs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v = JsonValue::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        jobs.push(JobSpec::from_json(&v).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?);
    }
    if jobs.is_empty() {
        return Err(format!("{path}: no jobs"));
    }
    Ok(jobs)
}

fn read_refs(path: &str) -> Result<HashMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut refs = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v = JsonValue::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let id = v
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{path}:{}: ref needs `id`", lineno + 1))?;
        let energy = v
            .get_f64("energy")
            .ok_or_else(|| format!("{path}:{}: ref needs `energy`", lineno + 1))?;
        refs.insert(id.to_string(), energy);
    }
    Ok(refs)
}

/// Write the metrics exposition atomically: tmp file + rename, so a
/// concurrent reader (tailer, future TCP /metrics endpoint serving the
/// file) never observes a torn snapshot.
fn write_metrics(path: &str, reg: &MetricsRegistry) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, reg.render_text()).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot replace {path}: {e}"))
}

fn run(mut cli: Cli) -> Result<bool, String> {
    let jobs = read_jobs(&cli.jobs_path)?;
    let n_jobs = jobs.len();
    let refs = match &cli.verify {
        Some(path) => Some(read_refs(path)?),
        None => None,
    };
    // Metrics plane: a caller-owned registry shared with the server, so
    // the snapshot thread can render it live while workers record.
    let metrics = cli.metrics_out.as_ref().map(|_| MetricsRegistry::new());
    if let Some(reg) = &metrics {
        cli.cfg.obs = cli.cfg.obs.with_metrics(reg.clone());
        let greg = reg.clone();
        fcix::linalg::probe::install(Arc::new(move |m, n, k, secs| {
            let gf = 2.0 * (m as f64) * (n as f64) * (k as f64) / secs.max(1e-12) / 1e9;
            let shape = format!("{m}x{n}x{k}");
            greg.observe("linalg.gemm_gflops", &[("shape", &shape)], gf);
            greg.observe("linalg.gemm_s", &[("shape", &shape)], secs);
        }));
        fcix::linalg::probe::set_enabled(true);
        let ereg = reg.clone();
        fcix::linalg::probe::install_eigh(Arc::new(move |n, secs| {
            // Nominal 4n³ flops: tridiagonal reduction (4/3 n³) plus the
            // implicit-QL eigenvector accumulation (~3n³ rotations).
            let gf = 4.0 * (n as f64).powi(3) / secs.max(1e-12) / 1e9;
            let dim = n.to_string();
            ereg.observe("linalg.eigh_gflops", &[("n", &dim)], gf);
            ereg.observe("linalg.eigh_s", &[("n", &dim)], secs);
        }));
        fcix::linalg::probe::set_eigh_enabled(true);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let snapshotter = match (&cli.metrics_out, &metrics) {
        (Some(path), Some(reg)) => {
            let (path, reg, stop) = (path.clone(), reg.clone(), stop.clone());
            Some(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if let Err(e) = write_metrics(&path, &reg) {
                        eprintln!("fcix-serve: metrics snapshot: {e}");
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(250));
                }
            }))
        }
        _ => None,
    };
    let report = serve(cli.cfg, jobs);
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = snapshotter {
        let _ = h.join();
    }
    if let (Some(path), Some(reg)) = (&cli.metrics_out, &metrics) {
        // Final snapshot after the queue drained: the complete exposition.
        write_metrics(path, reg)?;
        eprintln!("wrote {path}");
    }

    let mut lines = String::new();
    for r in &report.results {
        lines.push_str(&r.to_json().to_string());
        lines.push('\n');
    }
    for (id, why) in &report.rejected {
        // Structured reject: machine-readable reason code plus the
        // backoff hint a resubmitting client should honor.
        let mut pairs = vec![
            ("id", JsonValue::Str(id.clone())),
            ("status", JsonValue::Str("rejected".into())),
            ("reason", JsonValue::Str(why.code().into())),
            ("error", JsonValue::Str(why.to_string())),
        ];
        if let Some(ms) = why.retry_after_ms() {
            pairs.push(("retry_after_ms", JsonValue::Num(ms as f64)));
        }
        lines.push_str(&JsonValue::obj(pairs).to_string());
        lines.push('\n');
    }
    match &cli.out {
        Some(path) => {
            std::fs::write(path, &lines).map_err(|e| format!("cannot write {path}: {e}"))?
        }
        None => print!("{lines}"),
    }
    eprintln!("{}", report.summary.render());

    let mut ok = report.summary.jobs_done == n_jobs;
    if !ok {
        eprintln!(
            "error: {} of {n_jobs} jobs did not complete",
            n_jobs - report.summary.jobs_done
        );
    }
    // Admission refusals are an error exit, never a silent drop: each
    // one gets a structured stderr line and fails the run.
    for (id, why) in &report.rejected {
        eprintln!("reject: {id}: {}: {why}", why.code());
        ok = false;
    }
    if let Some(refs) = refs {
        for (id, want) in &refs {
            match report.result(id) {
                Some(r) if r.status == JobStatus::Done => {
                    let err = (r.energy - want).abs();
                    if err > 1e-9 {
                        eprintln!(
                            "verify: {id}: energy {:.12} differs from reference {want:.12} \
                             by {err:.3e}",
                            r.energy
                        );
                        ok = false;
                    }
                }
                _ => {
                    eprintln!("verify: {id}: no completed result");
                    ok = false;
                }
            }
        }
    }
    if cli.require_cache_hits && report.summary.cache.hits == 0 {
        eprintln!("error: artifact cache never hit (--require-cache-hits)");
        ok = false;
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") || args.is_empty() {
        return usage();
    }
    match parse_args(&args).and_then(run) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("fcix-serve: {e}");
            usage()
        }
    }
}
