//! `fcix-chaos` — run the solver under seeded fault schedules and check
//! that it heals.
//!
//! ```text
//! fcix-chaos [--schedules N] [--seed S] [--nproc P] [--json out.json]
//! ```
//!
//! Each schedule derives a deterministic [`FaultConfig`] from the base
//! seed (cycling through transient comm faults, data corruption,
//! poisoned σ tasks, rank death, and a mixed storm), runs a full
//! small-molecule solve through `solve_resilient` with the race detector
//! online, and checks the recovery invariants: converged, energy within
//! 1e-9 of the fault-free reference, zero races. Exit status is nonzero
//! if any schedule breaks one. `--json` writes a machine-readable report
//! (one object per schedule) for CI artifacts.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use fcix::check::RaceDetector;
use fcix::core::{solve, solve_resilient, FciOptions, RecoveryOptions};
use fcix::ddi::{Backend, CheckConfig, FaultConfig, RankDeath};
use fcix::fault::Xorshift64;
use fcix::ints::EriTensor;
use fcix::linalg::Matrix;
use fcix::scf::MoIntegrals;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fcix-chaos [options]\n\n\
         options:\n\
         \x20 --schedules N   fault schedules to run (default 10)\n\
         \x20 --seed S        base seed the schedules derive from (default 1)\n\
         \x20 --nproc P       virtual MSPs (default 4)\n\
         \x20 --json FILE     also write a JSON report"
    );
    ExitCode::from(2)
}

fn hubbard(n: usize, t: f64, u: f64) -> MoIntegrals {
    let mut h = Matrix::zeros(n, n);
    for i in 0..n.saturating_sub(1) {
        h[(i, i + 1)] = -t;
        h[(i + 1, i)] = -t;
    }
    let mut eri = EriTensor::zeros(n);
    for i in 0..n {
        eri.set(i, i, i, i, u);
    }
    MoIntegrals {
        n_orb: n,
        h,
        eri,
        e_core: 0.0,
        orb_sym: vec![0; n],
        n_irrep: 1,
    }
}

/// The schedule categories, cycled over by index.
const CATEGORIES: [&str; 5] = ["drops", "dups+stalls", "corrupt", "poison", "rank-death"];

/// Derive schedule `i`'s fault config from the base seed.
fn schedule(i: usize, base_seed: u64, nproc: usize) -> (String, FaultConfig) {
    let mut rng = Xorshift64::new(base_seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9));
    let seed = rng.next_u64();
    let jitter = |rng: &mut Xorshift64| 0.02 + 0.08 * rng.next_f64();
    let quiet = FaultConfig::quiet(seed);
    let category = CATEGORIES[i % CATEGORIES.len()];
    let cfg = match category {
        "drops" => FaultConfig {
            p_drop: jitter(&mut rng),
            ..quiet
        },
        "dups+stalls" => FaultConfig {
            p_duplicate: jitter(&mut rng),
            p_stall: 0.03,
            p_fence_delay: 0.03,
            ..quiet
        },
        "corrupt" => FaultConfig {
            p_corrupt: jitter(&mut rng),
            ..quiet
        },
        "poison" => FaultConfig {
            p_poison: 0.02 + 0.03 * rng.next_f64(),
            ..quiet
        },
        _ => FaultConfig {
            // Death in a storm: every transient class plus a killed rank.
            p_drop: 0.03,
            p_duplicate: 0.03,
            p_corrupt: 0.03,
            rank_death: Some(RankDeath {
                rank: (rng.next_u64() as usize) % nproc,
                after_ops: 300 + (rng.next_u64() % 900),
            }),
            ..quiet
        },
    };
    (category.to_string(), cfg)
}

struct Row {
    name: String,
    seed: u64,
    injected: u64,
    retries: u64,
    recomputes: u64,
    restarts: usize,
    err: f64,
    races: usize,
    ms: f64,
    ok: bool,
}

fn run(n_schedules: usize, base_seed: u64, nproc: usize) -> Vec<Row> {
    let mo = hubbard(4, 1.0, 2.5);
    let opts = |p: usize| FciOptions {
        nproc: p,
        method: fcix::core::DiagMethod::Davidson,
        diag: fcix::core::DiagOptions {
            max_iter: 150,
            model_space: 24,
            ..Default::default()
        },
        ..Default::default()
    };
    let reference = solve(&mo, 2, 2, 0, &opts(nproc));
    assert!(reference.converged, "fault-free reference did not converge");
    let dir = std::env::temp_dir().join(format!("fcix-chaos-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);

    (0..n_schedules)
        .map(|i| {
            let (category, cfg) = schedule(i, base_seed, nproc);
            let seed = cfg.seed;
            let name = format!("{i:02}-{category}");
            let detector = Arc::new(RaceDetector::new());
            let mut o = opts(nproc);
            o.backend = Backend::Threads;
            o.fault = Some(cfg);
            o.check = CheckConfig::online(detector.clone());
            let ckp = dir.join(format!("{name}.ckp"));
            let _ = std::fs::remove_file(&ckp);
            // lint: allow(wallclock) — host-side harness timing, not simulated time
            let t0 = Instant::now();
            let result = solve_resilient(&mo, 2, 2, 0, &o, &RecoveryOptions::new(&ckp));
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            match result {
                Ok(r) => {
                    let err = (r.fci.energy - reference.energy).abs();
                    let races = detector.races().len();
                    let ok = r.fci.converged && err <= 1e-9 && races == 0;
                    Row {
                        name,
                        seed,
                        injected: r.fault_stats.injected(),
                        retries: r.fault_stats.retries,
                        recomputes: r.fault_stats.recomputes,
                        restarts: r.restarts,
                        err,
                        races,
                        ms,
                        ok,
                    }
                }
                Err(e) => {
                    eprintln!("fcix-chaos: schedule {name}: {e}");
                    Row {
                        name,
                        seed,
                        injected: 0,
                        retries: 0,
                        recomputes: 0,
                        restarts: 0,
                        err: f64::INFINITY,
                        races: 0,
                        ms,
                        ok: false,
                    }
                }
            }
        })
        .collect()
}

fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "schedule          seed                 inj  retry  recomp  restart  |dE|       races  ms      verdict\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16}  {:<20} {:>4}  {:>5}  {:>6}  {:>7}  {:<9.2e}  {:>5}  {:>6.1}  {}\n",
            r.name,
            r.seed,
            r.injected,
            r.retries,
            r.recomputes,
            r.restarts,
            r.err,
            r.races,
            r.ms,
            if r.ok { "healed" } else { "FAILED" },
        ));
    }
    out
}

fn to_json(rows: &[Row]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"schedule\":\"{}\",\"seed\":{},\"faults_injected\":{},\"retries\":{},\
                 \"recomputes\":{},\"restarts\":{},\"energy_err\":{:e},\"races\":{},\
                 \"ms\":{:.3},\"healed\":{}}}",
                r.name,
                r.seed,
                r.injected,
                r.retries,
                r.recomputes,
                r.restarts,
                r.err,
                r.races,
                r.ms,
                r.ok
            )
        })
        .collect();
    format!("[\n  {}\n]\n", items.join(",\n  "))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut n_schedules = 10usize;
    let mut seed = 1u64;
    let mut nproc = 4usize;
    let mut json: Option<String> = None;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        let mut val = |what: &str| -> Result<String, ExitCode> {
            it.next().cloned().ok_or_else(|| {
                eprintln!("fcix-chaos: {what} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--schedules" => match val("--schedules").map(|v| v.parse()) {
                Ok(Ok(n)) => n_schedules = n,
                _ => return usage(),
            },
            "--seed" => match val("--seed").map(|v| v.parse()) {
                Ok(Ok(s)) => seed = s,
                _ => return usage(),
            },
            "--nproc" => match val("--nproc").map(|v| v.parse()) {
                Ok(Ok(p)) if p > 0 => nproc = p,
                _ => return usage(),
            },
            "--json" => match val("--json") {
                Ok(p) => json = Some(p),
                Err(code) => return code,
            },
            _ => return usage(),
        }
    }

    let rows = run(n_schedules, seed, nproc);
    print!("{}", render(&rows));
    let healed = rows.iter().filter(|r| r.ok).count();
    println!("{healed}/{} schedules healed", rows.len());
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, to_json(&rows)) {
            eprintln!("fcix-chaos: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if healed == rows.len() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
