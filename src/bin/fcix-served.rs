//! `fcix-served` — the durable network front-end to the `fci-serve`
//! scheduler: a TCP/JSONL server with a write-ahead job log, plus a
//! small client mode that drives it (the CI smoke test's tool).
//!
//! ```text
//! server:  fcix-served --listen ADDR --wal FILE [options]
//!
//!   --listen ADDR        bind address (use 127.0.0.1:0 for a free port;
//!                        the bound address is printed as "LISTENING <addr>")
//!   --wal FILE           write-ahead job log (replayed + compacted on start)
//!   --wal-sync           fdatasync per append (power-loss durability)
//!   -w, --workers N      worker threads (default 2)
//!   --no-batching        disable same-space multi-root coalescing (makes
//!                        every energy a pure function of its spec — the
//!                        bitwise-reproducibility mode the durability
//!                        tests pin; coalescing is load-dependent, so a
//!                        crash can legally re-partition a batch)
//!   --queue-cap N        queue capacity (default 1024)
//!   --mem-bytes N        admission memory budget
//!   --cache-bytes N      artifact-cache budget
//!   --ckpt-dir DIR       resilient-solve checkpoint directory
//!   --rate N             per-tenant submissions/second (0 = unlimited)
//!   --burst N            token-bucket burst size (default 8)
//!   --max-inflight N     outstanding jobs per tenant (0 = unlimited)
//!   --max-conns N        concurrent connections (default 64)
//!   --read-timeout-ms N  per-connection read timeout (default 30000)
//!   --metrics-out FILE   write the metrics exposition at exit
//!
//! client:  fcix-served --client ADDR --jobs FILE [options]
//!
//!   --jobs FILE          JSONL job specs to submit (idempotently: a
//!                        duplicate-id reject counts as accepted)
//!   -o, --out FILE       per-job JSONL results (default stdout)
//!   --verify FILE        JSONL {"id","energy"} refs, checked to --tol
//!   --tol X              verification tolerance (default 1e-9)
//!   --timeout-ms N       overall per-job result deadline (default 120000)
//!   --reconnect-ms N     keep reconnecting this long if the server goes
//!                        away mid-run (default 30000) — the crash-restart
//!                        window the smoke test exercises
//!   --drain              after all results arrive, drain + stop the server
//! ```
//!
//! The server exits cleanly when a client sends `drain` (every accepted
//! job completes first). A `kill -9` at any point is recoverable: restart
//! with the same `--wal` and accepted jobs resume exactly once.
//!
//! Exit status: 0 success, 1 failure, 2 bad usage.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

use fcix::obs::JsonValue;
use fcix::serve::{JobSpec, NetClient, NetConfig, NetServer, ServeConfig, Server};

fn usage() -> ExitCode {
    eprintln!(
        "usage: fcix-served --listen ADDR --wal FILE [options]\n\
         \x20      fcix-served --client ADDR --jobs FILE [options]\n\
         see the bin docs for the full option list"
    );
    ExitCode::from(2)
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number `{s}`"))
}

fn read_jsonl(path: &str) -> Result<Vec<JsonValue>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(JsonValue::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?);
    }
    Ok(out)
}

fn read_jobs(path: &str) -> Result<Vec<JobSpec>, String> {
    let jobs: Result<Vec<JobSpec>, String> =
        read_jsonl(path)?.iter().map(JobSpec::from_json).collect();
    let jobs = jobs?;
    if jobs.is_empty() {
        return Err(format!("{path}: no jobs"));
    }
    Ok(jobs)
}

fn read_refs(path: &str) -> Result<HashMap<String, f64>, String> {
    let mut refs = HashMap::new();
    for v in read_jsonl(path)? {
        let id = v
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{path}: ref needs `id`"))?;
        let energy = v
            .get_f64("energy")
            .ok_or_else(|| format!("{path}: ref needs `energy`"))?;
        refs.insert(id.to_string(), energy);
    }
    Ok(refs)
}

// ---------------------------------------------------------------- server

struct ServerCli {
    cfg: ServeConfig,
    net: NetConfig,
    workers: usize,
    metrics_out: Option<String>,
}

fn run_server(mut cli: ServerCli) -> Result<bool, String> {
    if cli.metrics_out.is_some() {
        cli.cfg.obs = cli.cfg.obs.with_metrics(fcix::obs::MetricsRegistry::new());
    }
    let (server, replay) = Server::recover(cli.cfg).map_err(|e| format!("WAL recovery: {e}"))?;
    for w in &replay.warnings {
        eprintln!("fcix-served: WAL recovery: {w}");
    }
    if replay.records > 0 {
        eprintln!(
            "fcix-served: replayed {} WAL records: {} completed, {} re-enqueued",
            replay.records,
            replay.completed.len(),
            replay.pending.len()
        );
    }
    let server = Arc::new(server);
    let net = NetServer::bind(server.clone(), cli.net).map_err(|e| format!("bind: {e}"))?;
    let addr = net.local_addr().map_err(|e| format!("local_addr: {e}"))?;
    // The handshake line a supervisor (or the smoke test) waits for.
    println!("LISTENING {addr}");
    use std::io::Write;
    let _ = std::io::stdout().flush();
    let workers = cli.workers;
    std::thread::scope(|s| {
        let srv = server.clone();
        s.spawn(move || srv.run(workers));
        net.run();
        // `drain` already closed the queue; make close unconditional so
        // the worker pool always winds down.
        server.close();
    });
    if let Some(path) = &cli.metrics_out {
        if let Some(reg) = server.metrics() {
            std::fs::write(path, reg.render_text())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
    }
    let st = server.stats();
    eprintln!(
        "fcix-served: stopped: {} completed, {} rejected, WAL {} bytes",
        st.completed, st.rejected, st.wal_bytes
    );
    Ok(true)
}

// ---------------------------------------------------------------- client

struct ClientCli {
    addr: String,
    jobs_path: String,
    out: Option<String>,
    verify: Option<String>,
    tol: f64,
    timeout_ms: u64,
    reconnect_ms: u64,
    drain: bool,
}

/// Connect, retrying while the server may be restarting.
fn connect_patiently(addr: &str, budget_ms: u64) -> Result<NetClient, String> {
    let mut waited = 0u64;
    loop {
        match NetClient::connect(addr, 15_000) {
            Ok(c) => return Ok(c),
            Err(e) if waited < budget_ms => {
                let _ = e;
                std::thread::sleep(std::time::Duration::from_millis(100));
                waited += 100;
            }
            Err(e) => return Err(format!("cannot connect to {addr}: {e}")),
        }
    }
}

fn run_client(cli: ClientCli) -> Result<bool, String> {
    let jobs = read_jobs(&cli.jobs_path)?;
    let refs = match &cli.verify {
        Some(path) => Some(read_refs(path)?),
        None => None,
    };
    let mut client = connect_patiently(&cli.addr, cli.reconnect_ms)?;

    // Submit at-least-once: a reconnect + duplicate_id reject proves the
    // first attempt's WAL record survived. Backpressure rejects honor
    // the server's retry_after_ms hint.
    for job in &jobs {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match client.submit(job) {
                Ok(resp) => {
                    let ok = resp.get("ok") == Some(&JsonValue::Bool(true));
                    let reason = resp.get("reason").and_then(JsonValue::as_str).unwrap_or("");
                    if ok || reason == "duplicate_id" {
                        break;
                    }
                    let retry = resp.get_f64("retry_after_ms");
                    match retry {
                        Some(ms) if attempts < 200 => {
                            std::thread::sleep(std::time::Duration::from_millis(ms.max(1.0) as u64))
                        }
                        _ => {
                            return Err(format!(
                                "job {} rejected: {}: {}",
                                job.id,
                                reason,
                                resp.get("detail").and_then(JsonValue::as_str).unwrap_or("")
                            ))
                        }
                    }
                }
                Err(_) => {
                    // Server went away (crash window): reconnect and
                    // resubmit; durability makes the retry idempotent.
                    client = connect_patiently(&cli.addr, cli.reconnect_ms)?;
                }
            }
        }
    }

    // Collect every result, riding out server restarts.
    let mut lines = String::new();
    let mut ok = true;
    let mut got = 0usize;
    let mut verified = 0usize;
    for job in &jobs {
        let mut waited = 0u64;
        let result = loop {
            match client.wait(&job.id, 5_000) {
                Ok(resp) if resp.get("ok") == Some(&JsonValue::Bool(true)) => {
                    break resp.get("result").cloned()
                }
                Ok(_) => {
                    waited += 5_000;
                    if waited >= cli.timeout_ms {
                        break None;
                    }
                }
                Err(_) => {
                    client = connect_patiently(&cli.addr, cli.reconnect_ms)?;
                }
            }
        };
        match result {
            Some(r) => {
                lines.push_str(&r.to_string());
                lines.push('\n');
                got += 1;
                let status = r.get("status").and_then(JsonValue::as_str).unwrap_or("");
                if status != "done" {
                    eprintln!("error: job {} finished as `{status}`", job.id);
                    ok = false;
                } else if let Some(refs) = &refs {
                    if let Some(want) = refs.get(&job.id) {
                        let energy = r.get_f64("energy").unwrap_or(f64::NAN);
                        let err = (energy - want).abs();
                        if err <= cli.tol {
                            verified += 1;
                        } else {
                            eprintln!(
                                "verify: {}: energy {energy:.12} differs from reference \
                                 {want:.12} by {err:.3e}",
                                job.id
                            );
                            ok = false;
                        }
                    }
                }
            }
            None => {
                eprintln!(
                    "error: job {} produced no result in {} ms",
                    job.id, cli.timeout_ms
                );
                ok = false;
            }
        }
    }
    match &cli.out {
        Some(path) => {
            std::fs::write(path, &lines).map_err(|e| format!("cannot write {path}: {e}"))?
        }
        None => print!("{lines}"),
    }
    if cli.drain {
        let resp = client.drain().map_err(|e| format!("drain: {e}"))?;
        if resp.get("ok") != Some(&JsonValue::Bool(true)) {
            eprintln!("error: drain refused: {resp}");
            ok = false;
        }
    }
    match refs {
        Some(_) => eprintln!(
            "fcix-served: {got}/{} results, {verified} verified to {:.0e}",
            jobs.len(),
            cli.tol
        ),
        None => eprintln!("fcix-served: {got}/{} results", jobs.len()),
    }
    Ok(ok)
}

// ---------------------------------------------------------------- main

fn parse(args: &[String]) -> Result<Result<ServerCli, ClientCli>, String> {
    let mut listen = None;
    let mut client = None;
    let mut cfg = ServeConfig::default();
    let mut net = NetConfig::default();
    let mut workers = 2usize;
    let mut metrics_out = None;
    let mut jobs_path = None;
    let mut out = None;
    let mut verify = None;
    let mut tol = 1e-9f64;
    let mut timeout_ms = 120_000u64;
    let mut reconnect_ms = 30_000u64;
    let mut drain = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--listen" => listen = Some(value(arg)?),
            "--client" => client = Some(value(arg)?),
            "--wal" => cfg.wal_path = Some(value(arg)?.into()),
            "--wal-sync" => cfg.wal_sync = true,
            "-w" | "--workers" => workers = parse_num(&value(arg)?)?,
            "--no-batching" => cfg.batching = false,
            "--queue-cap" => cfg.queue_cap = parse_num(&value(arg)?)?,
            "--mem-bytes" => cfg.mem_budget = parse_num(&value(arg)?)?,
            "--cache-bytes" => cfg.cache_budget = parse_num(&value(arg)?)?,
            "--ckpt-dir" => cfg.checkpoint_dir = value(arg)?.into(),
            "--rate" => net.rate_per_s = parse_num(&value(arg)?)?,
            "--burst" => net.burst = parse_num(&value(arg)?)?,
            "--max-inflight" => net.max_inflight = parse_num(&value(arg)?)?,
            "--max-conns" => net.max_conns = parse_num(&value(arg)?)?,
            "--read-timeout-ms" => net.read_timeout_ms = parse_num(&value(arg)?)?,
            "--metrics-out" => metrics_out = Some(value(arg)?),
            "--jobs" => jobs_path = Some(value(arg)?),
            "-o" | "--out" => out = Some(value(arg)?),
            "--verify" => verify = Some(value(arg)?),
            "--tol" => tol = parse_num(&value(arg)?)?,
            "--timeout-ms" => timeout_ms = parse_num(&value(arg)?)?,
            "--reconnect-ms" => reconnect_ms = parse_num(&value(arg)?)?,
            "--drain" => drain = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    match (listen, client) {
        (Some(addr), None) => {
            net.addr = addr;
            Ok(Ok(ServerCli {
                cfg,
                net,
                workers,
                metrics_out,
            }))
        }
        (None, Some(addr)) => Ok(Err(ClientCli {
            addr,
            jobs_path: jobs_path.ok_or("--client needs --jobs FILE")?,
            out,
            verify,
            tol,
            timeout_ms,
            reconnect_ms,
            drain,
        })),
        _ => Err("need exactly one of --listen ADDR or --client ADDR".into()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") || args.is_empty() {
        return usage();
    }
    let run = parse(&args).and_then(|mode| match mode {
        Ok(server) => run_server(server),
        Err(client) => run_client(client),
    });
    match run {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("fcix-served: {e}");
            usage()
        }
    }
}
