//! `fcix-trace` — inspect JSONL traces written by the `fci-obs` tracer.
//!
//! ```text
//! fcix-trace summarize <trace.jsonl>            Table-3-style run summary
//! fcix-trace to-chrome <trace.jsonl> [out.json] Chrome Trace Event Format
//! fcix-trace flame <trace.jsonl> [out.folded]   collapsed stacks (flamegraph)
//! fcix-trace metrics <trace.jsonl>              metrics-plane text exposition
//! fcix-trace diff <a.jsonl> <b.jsonl>           side-by-side summary diff
//! ```
//!
//! Traces are produced by running the solver with
//! `FciOptions { obs: ObsConfig::to_file("trace.jsonl"), .. }` (or by
//! attaching a tracer to a `Ddi` directly; see DESIGN.md §Observability).
//! The Chrome output loads in `chrome://tracing` / Perfetto with one lane
//! per virtual MSP; the `flame` output feeds any collapsed-stack consumer
//! (`flamegraph.pl`, speedscope, inferno).
//!
//! A truncated final line (crashed run) is tolerated with a warning;
//! corruption anywhere else, and traces with no parsable events at all,
//! are diagnosed without panicking.

use std::process::ExitCode;

use fcix::obs::{
    parse_jsonl_lenient, to_chrome, to_collapsed, Event, MetricsRegistry, RunSummary, TimeBase,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: fcix-trace <command> ...\n\n\
         commands:\n\
         \x20 summarize <trace.jsonl>             print a Table-3-style run summary\n\
         \x20 to-chrome <trace.jsonl> [out.json]  convert to Chrome Trace Event Format\n\
         \x20 flame [--host] <trace.jsonl> [out]  fold span stacks to collapsed-stack lines\n\
         \x20                                     (simulated time by default, --host for\n\
         \x20                                     host wall-clock weights)\n\
         \x20 metrics <trace.jsonl>               replay the trace through the metrics\n\
         \x20                                     plane and print the text exposition\n\
         \x20 diff <a.jsonl> <b.jsonl>            compare two runs' summaries"
    );
    ExitCode::from(2)
}

/// Read and parse a trace, tolerating a truncated final record. An
/// unreadable file, mid-file corruption, or a trace with zero parsable
/// events is a diagnosed error, never a panic.
fn load(path: &str) -> Result<Vec<Event>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (events, warning) = parse_jsonl_lenient(&text).map_err(|e| format!("{path}: {e}"))?;
    if let Some(w) = warning {
        eprintln!("fcix-trace: warning: {path}: {w}");
    }
    if events.is_empty() {
        return Err(format!(
            "{path}: no trace events (empty or fully truncated trace)"
        ));
    }
    Ok(events)
}

/// Print to stdout or write to a file when a destination is given.
fn emit(out: String, dest: Option<&String>) -> Result<(), String> {
    match dest {
        Some(dest) => std::fs::write(dest, out)
            .map(|()| eprintln!("wrote {dest}"))
            .map_err(|e| format!("cannot write {dest}: {e}")),
        None => {
            print!("{out}");
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let result = match args.get(1).map(String::as_str) {
        Some("summarize") => {
            let Some(path) = args.get(2) else {
                return usage();
            };
            load(path).map(|events| {
                let summary = RunSummary::from_events(&events);
                print!("{}", summary.render(path));
            })
        }
        Some("to-chrome") => {
            let Some(path) = args.get(2) else {
                return usage();
            };
            load(path).and_then(|events| {
                let out = to_chrome(&events);
                match args.get(3) {
                    Some(dest) => emit(out, Some(dest)),
                    None => {
                        println!("{out}");
                        Ok(())
                    }
                }
            })
        }
        Some("flame") => {
            let mut rest: Vec<&String> = args[2..].iter().collect();
            let base = if let Some(pos) = rest.iter().position(|a| a.as_str() == "--host") {
                rest.remove(pos);
                TimeBase::Host
            } else {
                rest.retain(|a| a.as_str() != "--sim");
                TimeBase::Sim
            };
            let Some(path) = rest.first() else {
                return usage();
            };
            load(path).and_then(|events| {
                let folded = to_collapsed(&events, base);
                if folded.is_empty() {
                    return Err(format!("{path}: no spans to fold (instants-only trace)"));
                }
                emit(folded, rest.get(1).copied())
            })
        }
        Some("metrics") => {
            let Some(path) = args.get(2) else {
                return usage();
            };
            load(path).map(|events| {
                let reg = MetricsRegistry::from_events(&events);
                print!("{}", reg.render_text());
            })
        }
        Some("diff") => {
            let (Some(a), Some(b)) = (args.get(2), args.get(3)) else {
                return usage();
            };
            load(a).and_then(|ea| {
                load(b).map(|eb| {
                    let sa = RunSummary::from_events(&ea);
                    let sb = RunSummary::from_events(&eb);
                    print!("{}", sa.render_diff(&sb));
                })
            })
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fcix-trace: {e}");
            ExitCode::FAILURE
        }
    }
}
