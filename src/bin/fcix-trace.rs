//! `fcix-trace` — inspect JSONL traces written by the `fci-obs` tracer.
//!
//! ```text
//! fcix-trace summarize <trace.jsonl>            Table-3-style run summary
//! fcix-trace to-chrome <trace.jsonl> [out.json] Chrome Trace Event Format
//! fcix-trace diff <a.jsonl> <b.jsonl>           side-by-side summary diff
//! ```
//!
//! Traces are produced by running the solver with
//! `FciOptions { obs: ObsConfig::to_file("trace.jsonl"), .. }` (or by
//! attaching a tracer to a `Ddi` directly; see DESIGN.md §Observability).
//! The Chrome output loads in `chrome://tracing` / Perfetto with one lane
//! per virtual MSP.

use std::process::ExitCode;

use fcix::obs::{parse_jsonl, to_chrome, Event, RunSummary};

fn usage() -> ExitCode {
    eprintln!(
        "usage: fcix-trace <command> ...\n\n\
         commands:\n\
         \x20 summarize <trace.jsonl>             print a Table-3-style run summary\n\
         \x20 to-chrome <trace.jsonl> [out.json]  convert to Chrome Trace Event Format\n\
         \x20 diff <a.jsonl> <b.jsonl>            compare two runs' summaries"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Vec<Event>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let result = match args.get(1).map(String::as_str) {
        Some("summarize") => {
            let Some(path) = args.get(2) else {
                return usage();
            };
            load(path).map(|events| {
                let summary = RunSummary::from_events(&events);
                print!("{}", summary.render(path));
            })
        }
        Some("to-chrome") => {
            let Some(path) = args.get(2) else {
                return usage();
            };
            load(path).and_then(|events| {
                let out = to_chrome(&events);
                match args.get(3) {
                    Some(dest) => std::fs::write(dest, out)
                        .map(|()| eprintln!("wrote {dest}"))
                        .map_err(|e| format!("cannot write {dest}: {e}")),
                    None => {
                        println!("{out}");
                        Ok(())
                    }
                }
            })
        }
        Some("diff") => {
            let (Some(a), Some(b)) = (args.get(2), args.get(3)) else {
                return usage();
            };
            load(a).and_then(|ea| {
                load(b).map(|eb| {
                    let sa = RunSummary::from_events(&ea);
                    let sb = RunSummary::from_events(&eb);
                    print!("{}", sa.render_diff(&sb));
                })
            })
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fcix-trace: {e}");
            ExitCode::FAILURE
        }
    }
}
