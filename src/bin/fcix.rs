//! `fcix` — command-line FCI driver.
//!
//! ```text
//! fcix INPUT_FILE
//! fcix --demo          # built-in water demo input
//! ```
//!
//! Input format (one directive per line, `#` comments):
//!
//! ```text
//! # water, frozen-core FCI
//! charge 0
//! basis sto-3g            # sto-3g | svp
//! unit bohr               # bohr | angstrom
//! atom O 0.0  0.0    0.0
//! atom H 0.0  1.4305 1.1092
//! atom H 0.0 -1.4305 1.1092
//! frozen 1                # doubly occupied orbitals folded into the core
//! active 6                # active orbitals (omit for all)
//! alpha 4                 # active-space alpha electrons
//! beta 4
//! method auto             # auto | davidson | olsen | olsen-damped
//! sigma dgemm             # dgemm | moc
//! symmetry on             # on | off
//! msps 16                 # virtual Cray-X1 MSP count
//! tol 1e-9                # residual convergence threshold
//! maxiter 60
//! ci full                 # full | cis | cisd | cisdt | cisdtq
//! roots 1                 # lowest states to compute (block Davidson if > 1)
//! checkpoint water.ckp    # optional: save the converged CI vector
//! ```

use fcix::core::{save_ci, solve, DiagMethod, DiagOptions, FciOptions, SigmaMethod};
use fcix::ints::{detect_point_group, overlap, BasisSet, Molecule};
use fcix::scf::{core_orbitals, rhf, symmetry_adapt, transform_integrals, RhfOptions};
use std::process::ExitCode;

const DEMO: &str = "\
charge 0
basis sto-3g
unit bohr
atom O 0.0  0.0    0.0
atom H 0.0  1.4305 1.1092
atom H 0.0 -1.4305 1.1092
frozen 1
active 6
alpha 4
beta 4
method auto
symmetry on
msps 8
tol 1e-9
";

struct Input {
    charge: i32,
    basis: String,
    unit: String,
    atoms: Vec<(String, [f64; 3])>,
    frozen: usize,
    active: Option<usize>,
    alpha: Option<usize>,
    beta: Option<usize>,
    method: DiagMethod,
    sigma: SigmaMethod,
    symmetry: bool,
    msps: usize,
    tol: f64,
    maxiter: usize,
    excitation: Option<u32>,
    roots: usize,
    checkpoint: Option<String>,
}

fn parse(text: &str) -> Result<Input, String> {
    let mut inp = Input {
        charge: 0,
        basis: "sto-3g".into(),
        unit: "bohr".into(),
        atoms: Vec::new(),
        frozen: 0,
        active: None,
        alpha: None,
        beta: None,
        method: DiagMethod::AutoAdjust,
        sigma: SigmaMethod::Dgemm,
        symmetry: true,
        msps: 1,
        tol: 1e-9,
        maxiter: 60,
        excitation: None,
        roots: 1,
        checkpoint: None,
    };
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap().trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let key = it.next().unwrap().to_ascii_lowercase();
        let rest: Vec<&str> = it.collect();
        let one = |r: &[&str]| -> Result<String, String> {
            if r.len() == 1 {
                Ok(r[0].to_string())
            } else {
                Err(format!("line {}: expected one value for {key}", lineno + 1))
            }
        };
        match key.as_str() {
            "charge" => inp.charge = one(&rest)?.parse().map_err(|e| format!("charge: {e}"))?,
            "basis" => inp.basis = one(&rest)?,
            "unit" => inp.unit = one(&rest)?.to_ascii_lowercase(),
            "atom" => {
                if rest.len() != 4 {
                    return Err(format!("line {}: atom SYMBOL X Y Z", lineno + 1));
                }
                let xyz: Result<Vec<f64>, _> = rest[1..].iter().map(|s| s.parse()).collect();
                let xyz = xyz.map_err(|e| format!("line {}: {e}", lineno + 1))?;
                inp.atoms
                    .push((rest[0].to_string(), [xyz[0], xyz[1], xyz[2]]));
            }
            "frozen" => inp.frozen = one(&rest)?.parse().map_err(|e| format!("frozen: {e}"))?,
            "active" => inp.active = Some(one(&rest)?.parse().map_err(|e| format!("active: {e}"))?),
            "alpha" => inp.alpha = Some(one(&rest)?.parse().map_err(|e| format!("alpha: {e}"))?),
            "beta" => inp.beta = Some(one(&rest)?.parse().map_err(|e| format!("beta: {e}"))?),
            "method" => {
                inp.method = match one(&rest)?.as_str() {
                    "auto" => DiagMethod::AutoAdjust,
                    "davidson" => DiagMethod::Davidson,
                    "olsen" => DiagMethod::Olsen,
                    "olsen-damped" => DiagMethod::OlsenDamped,
                    other => return Err(format!("unknown method {other}")),
                }
            }
            "sigma" => {
                inp.sigma = match one(&rest)?.as_str() {
                    "dgemm" => SigmaMethod::Dgemm,
                    "moc" => SigmaMethod::Moc,
                    other => return Err(format!("unknown sigma algorithm {other}")),
                }
            }
            "symmetry" => inp.symmetry = matches!(one(&rest)?.as_str(), "on" | "true" | "yes"),
            "msps" => inp.msps = one(&rest)?.parse().map_err(|e| format!("msps: {e}"))?,
            "tol" => inp.tol = one(&rest)?.parse().map_err(|e| format!("tol: {e}"))?,
            "maxiter" => inp.maxiter = one(&rest)?.parse().map_err(|e| format!("maxiter: {e}"))?,
            "ci" => {
                inp.excitation = match one(&rest)?.as_str() {
                    "full" | "fci" => None,
                    "cis" => Some(1),
                    "cisd" => Some(2),
                    "cisdt" => Some(3),
                    "cisdtq" => Some(4),
                    other => return Err(format!("unknown CI level {other}")),
                }
            }
            "roots" => inp.roots = one(&rest)?.parse().map_err(|e| format!("roots: {e}"))?,
            "checkpoint" => inp.checkpoint = Some(one(&rest)?),
            other => return Err(format!("line {}: unknown directive {other}", lineno + 1)),
        }
    }
    if inp.atoms.is_empty() {
        return Err("no atoms given".into());
    }
    Ok(inp)
}

fn run(inp: &Input) -> Result<(), String> {
    let atoms: Vec<(&str, [f64; 3])> = inp.atoms.iter().map(|(s, p)| (s.as_str(), *p)).collect();
    let mol = match inp.unit.as_str() {
        "bohr" => Molecule::from_symbols_bohr(&atoms, inp.charge),
        "angstrom" => Molecule::from_symbols_angstrom(&atoms, inp.charge),
        other => return Err(format!("unknown unit {other}")),
    };
    let basis = BasisSet::build(&mol, &inp.basis);
    println!(
        "molecule          : {} atoms, charge {}, {} electrons",
        mol.atoms.len(),
        inp.charge,
        mol.n_electrons()
    );
    println!(
        "basis             : {} ({} Cartesian AOs)",
        inp.basis,
        basis.n_basis()
    );

    // Orbitals: RHF for even electron counts, core orbitals otherwise.
    let nelec = mol.n_electrons();
    let (c, e_scf, h_ao, eri_ao) = if nelec % 2 == 0 {
        let r = rhf(&mol, &basis, &RhfOptions::default());
        if r.converged {
            println!(
                "RHF energy        : {:+.8} Eh ({} iterations)",
                r.energy, r.iterations
            );
            (r.mo_coeffs, Some(r.energy), r.h_ao, r.eri_ao)
        } else {
            println!(
                "RHF did not converge; falling back to core orbitals (FCI is orbital-invariant)"
            );
            let (c, _) = core_orbitals(&basis, &mol);
            (c, None, r.h_ao, r.eri_ao)
        }
    } else {
        println!("odd electron count: using core-Hamiltonian orbitals");
        let (c, _) = core_orbitals(&basis, &mol);
        let h = {
            let mut t = fcix::ints::kinetic(&basis);
            t.axpy(1.0, &fcix::ints::nuclear_attraction(&basis, &mol));
            t
        };
        (c, None, h, fcix::ints::eri_tensor(&basis))
    };

    let (c, irreps, n_irrep, group) = if inp.symmetry {
        let pg = detect_point_group(&mol);
        let s = overlap(&basis);
        let (cad, irr) = symmetry_adapt(&pg, &basis, &s, &c);
        println!(
            "point group       : {} ({} irreps)",
            pg.name(),
            pg.n_irrep()
        );
        (cad, irr, pg.n_irrep(), pg.name().to_string())
    } else {
        (c, vec![0u8; basis.n_basis()], 1, "C1".into())
    };
    let _ = group;

    let n_active = inp.active.unwrap_or(basis.n_basis() - inp.frozen);
    let mo = transform_integrals(
        &h_ao,
        &eri_ao,
        &c,
        mol.nuclear_repulsion(),
        inp.frozen,
        n_active,
    )
    .with_symmetry(irreps[inp.frozen..inp.frozen + n_active].to_vec(), n_irrep);
    let n_act_elec = nelec - 2 * inp.frozen;
    let na = inp.alpha.unwrap_or(n_act_elec.div_ceil(2));
    let nb = inp.beta.unwrap_or(n_act_elec - na);
    println!("active space      : {n_act_elec} electrons ({na}α, {nb}β) in {n_active} orbitals");

    let opts = FciOptions {
        nproc: inp.msps,
        sigma: inp.sigma,
        method: inp.method,
        diag: DiagOptions {
            tol: inp.tol,
            max_iter: inp.maxiter,
            ..Default::default()
        },
        excitation_level: inp.excitation,
        ..Default::default()
    };
    let irrep = fci_best_irrep(&mo, na, nb);
    let r = solve(&mo, na, nb, irrep, &opts);
    println!("CI dimension      : {} (sector {})", r.dim, r.sector_dim);
    println!(
        "iterations        : {} (converged = {})",
        r.iterations, r.converged
    );
    println!("E(FCI)            : {:+.10} Eh", r.energy);
    if let Some(e) = e_scf {
        println!("correlation energy: {:+.8} Eh", r.energy - e);
    }
    let total = r.sigma_cost.total();
    println!(
        "simulated X1 cost : {:.3} s over {} MSPs ({:.2} GF/MSP, {:.3} TF aggregate)",
        total.elapsed(),
        inp.msps,
        total.gflops_per_msp(),
        total.tflops()
    );
    if inp.roots > 1 {
        use fcix::core::{diagonalize_roots, DetSpace, Hamiltonian, PoolParams, SigmaCtx};
        use fcix::ddi::{Backend, Ddi};
        let ham = Hamiltonian::new(&mo);
        let space = DetSpace::for_hamiltonian(&ham, na, nb, irrep);
        let ddi = Ddi::new(inp.msps, Backend::Serial);
        let machine = fcix::xsim::MachineModel::cray_x1();
        let ctx = SigmaCtx {
            space: &space,
            ham: &ham,
            ddi: &ddi,
            model: &machine,
            pool: PoolParams::default(),
        };
        let roots = diagonalize_roots(
            &ctx,
            inp.sigma,
            &DiagOptions {
                tol: inp.tol.max(1e-7),
                max_iter: inp.maxiter,
                ..Default::default()
            },
            inp.roots,
        );
        println!("\nlowest {} states (block Davidson):", inp.roots);
        for k in 0..inp.roots {
            let s2 = fcix::core::s_squared(&space, &roots.states[k]);
            println!(
                "  root {k}: E = {:+.10} Eh  (ΔE = {:+.6}, <S^2> = {:.3}, {})",
                roots.energies[k] + ham.e_core,
                roots.energies[k] - roots.energies[0],
                s2,
                if roots.converged[k] {
                    "converged"
                } else {
                    "NOT converged"
                }
            );
        }
    }
    if let Some(path) = &inp.checkpoint {
        save_ci(std::path::Path::new(path), &r.diag.c).map_err(|e| format!("checkpoint: {e}"))?;
        println!("checkpoint        : wrote {path}");
    }
    if !r.converged {
        return Err("FCI did not converge".into());
    }
    Ok(())
}

/// Irrep of the lowest-diagonal determinant (the state the run targets).
fn fci_best_irrep(mo: &fcix::scf::MoIntegrals, na: usize, nb: usize) -> u8 {
    use fcix::core::{DetSpace, Hamiltonian};
    let ham = Hamiltonian::new(mo);
    let space = DetSpace::new(ham.n, na, nb, &ham.orb_sym, ham.n_irrep, 0);
    let mut best = (f64::INFINITY, 0u8);
    for ia in 0..space.alpha.len() {
        for ib in 0..space.beta.len() {
            let d = ham.diagonal_element(space.alpha.mask(ia), space.beta.mask(ib));
            if d < best.0 {
                best = (
                    d,
                    space.alpha.irrep_of_index(ia) ^ space.beta.irrep_of_index(ib),
                );
            }
        }
    }
    best.1
}

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    let text = match arg.as_deref() {
        Some("--demo") | None => {
            println!("(no input file given — running the built-in water demo)\n");
            DEMO.to_string()
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    match parse(&text).and_then(|inp| run(&inp)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
